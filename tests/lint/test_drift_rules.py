"""Self-tests for the drift rule family, including deliberate desync.

The ``drift_bad`` fixture tree stages every drift direction at once;
``drift_good`` is the same tree with the contracts in agreement.  The
desync tests then take the *real* ``daemon.py`` and a doctored
``docs/protocol.md`` and prove the rules catch live divergence — the
acceptance scenario for the whole family.
"""

from __future__ import annotations

import shutil

from repro.lint import lint_project

from tests.lint.conftest import FIXTURES, REPO_ROOT


def _drift_findings(root, rule):
    report = lint_project(root)
    return [f for f in report.findings if f.rule == rule]


class TestDriftBadTree:
    def test_protocol_ops_both_directions(self):
        findings = _drift_findings(FIXTURES / "drift_bad", "drift-protocol-ops")
        messages = "\n".join(f.message for f in findings)
        assert len(findings) == 2
        assert "'flush'" in messages and "does not document" in messages
        assert "'halt'" in messages and "does not handle" in messages
        paths = {f.path for f in findings}
        assert paths == {"src/repro/service/daemon.py", "docs/protocol.md"}

    def test_cache_protocol_ops_both_directions(self):
        findings = _drift_findings(
            FIXTURES / "drift_bad", "drift-cache-protocol-ops"
        )
        messages = "\n".join(f.message for f in findings)
        assert len(findings) == 2
        assert "'evict'" in messages and "does not document" in messages
        assert "'purge'" in messages and "does not handle" in messages
        paths = {f.path for f in findings}
        assert paths == {
            "src/repro/cachenet/server.py", "docs/remote-cache.md"
        }

    def test_event_fields_all_three_shapes(self):
        findings = _drift_findings(FIXTURES / "drift_bad", "drift-event-fields")
        messages = "\n".join(f.message for f in findings)
        assert len(findings) == 3
        # a drifted row, an undocumented event, and a phantom doc row
        assert "TaskDone" in messages and "missing record" in messages
        assert "listing unknown error" in messages
        assert "TaskSkipped is not documented" in messages
        assert "TaskGone" in messages and "no event class" in messages

    def test_config_digest_both_directions(self):
        findings = _drift_findings(FIXTURES / "drift_bad", "drift-config-digest")
        messages = "\n".join(f.message for f in findings)
        assert len(findings) == 2
        assert "'probe_count'" in messages and "does not mention" in messages
        assert "'max_queries'" in messages and "no such field" in messages

    def test_readme_flags_all_three_shapes(self):
        findings = _drift_findings(FIXTURES / "drift_bad", "drift-readme-flags")
        messages = "\n".join(f.message for f in findings)
        assert len(findings) == 3
        assert "--turbo" in messages
        assert "`repro vanish`" in messages
        assert "`repro ghost`" in messages and "never shows" in messages


class TestDriftGoodTree:
    def test_no_drift_findings_at_all(self):
        report = lint_project(FIXTURES / "drift_good")
        assert [f for f in report.findings if f.rule.startswith("drift-")] == []


class TestDeliberateDesyncAgainstRealCode:
    """Doctor the real contracts and prove the rules notice."""

    def _stage(self, tmp_path):
        service = tmp_path / "src" / "repro" / "service"
        service.mkdir(parents=True)
        docs = tmp_path / "docs"
        docs.mkdir()
        shutil.copy(
            REPO_ROOT / "src" / "repro" / "service" / "daemon.py",
            service / "daemon.py",
        )
        return docs / "protocol.md"

    def test_real_daemon_against_doctored_protocol_doc(self, tmp_path):
        doc = self._stage(tmp_path)
        original = (REPO_ROOT / "docs" / "protocol.md").read_text(
            encoding="utf-8"
        )
        # Drop `stats` from the table and document a phantom `reboot`.
        doctored = original.replace(
            "| `stats` |", "| `reboot` |", 1
        )
        assert doctored != original
        doc.write_text(doctored, encoding="utf-8")
        findings = _drift_findings(tmp_path, "drift-protocol-ops")
        messages = "\n".join(f.message for f in findings)
        assert "'stats'" in messages and "does not document" in messages
        assert "'reboot'" in messages and "does not handle" in messages

    def test_real_daemon_against_the_real_protocol_doc_is_clean(self, tmp_path):
        doc = self._stage(tmp_path)
        shutil.copy(REPO_ROOT / "docs" / "protocol.md", doc)
        assert _drift_findings(tmp_path, "drift-protocol-ops") == []

    def test_markdown_suppression_silences_a_doc_side_finding(self, tmp_path):
        doc = self._stage(tmp_path)
        original = (REPO_ROOT / "docs" / "protocol.md").read_text(
            encoding="utf-8"
        )
        doctored = original.replace(
            "| `stats` |",
            "<!-- repro: allow[drift-protocol-ops] -->\n| `reboot` |",
            1,
        )
        doc.write_text(doctored, encoding="utf-8")
        findings = _drift_findings(tmp_path, "drift-protocol-ops")
        messages = "\n".join(f.message for f in findings)
        # The doc-side phantom is suppressed; the code-side gap remains.
        assert "'reboot'" not in messages
        assert "'stats'" in messages

    def _stage_cachenet(self, tmp_path):
        cachenet = tmp_path / "src" / "repro" / "cachenet"
        cachenet.mkdir(parents=True)
        docs = tmp_path / "docs"
        docs.mkdir()
        shutil.copy(
            REPO_ROOT / "src" / "repro" / "cachenet" / "server.py",
            cachenet / "server.py",
        )
        return docs / "remote-cache.md"

    def test_real_cache_server_against_doctored_doc(self, tmp_path):
        doc = self._stage_cachenet(tmp_path)
        original = (REPO_ROOT / "docs" / "remote-cache.md").read_text(
            encoding="utf-8"
        )
        # Drop `stats` from the table and document a phantom `reboot`.
        doctored = original.replace("| `stats` |", "| `reboot` |", 1)
        assert doctored != original
        doc.write_text(doctored, encoding="utf-8")
        findings = _drift_findings(tmp_path, "drift-cache-protocol-ops")
        messages = "\n".join(f.message for f in findings)
        assert "'stats'" in messages and "does not document" in messages
        assert "'reboot'" in messages and "does not handle" in messages

    def test_real_cache_server_against_the_real_doc_is_clean(self, tmp_path):
        doc = self._stage_cachenet(tmp_path)
        shutil.copy(REPO_ROOT / "docs" / "remote-cache.md", doc)
        assert _drift_findings(tmp_path, "drift-cache-protocol-ops") == []

    def test_rules_skip_when_their_module_is_absent(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        module = tmp_path / "src" / "repro" / "other.py"
        module.write_text("VALUE = 1\n", encoding="utf-8")
        report = lint_project(tmp_path)
        assert report.findings == []
