"""Shared helpers for the lint self-tests.

Bad fixtures annotate every line a rule must flag with an
``# expect[rule-id]`` marker, so the fire tests assert the exact
(line, rule) set — a rule that fires on the wrong line, or on a good
fixture, fails loudly.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import lint_project

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]

_EXPECT = re.compile(r"#\s*expect\[([a-z0-9-]+)\]")


def expected_findings(path: Path) -> set[tuple[int, str]]:
    """The ``(line, rule)`` pairs a bad fixture declares it must trigger."""
    expected = set()
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        for match in _EXPECT.finditer(line):
            expected.add((lineno, match.group(1)))
    return expected


def lint_fixture(path: Path, **kwargs):
    """Lint one fixture file against the stock registry."""
    return lint_project(FIXTURES, paths=[path], **kwargs)


@pytest.fixture
def fixtures_dir() -> Path:
    return FIXTURES


@pytest.fixture
def repo_root() -> Path:
    return REPO_ROOT
