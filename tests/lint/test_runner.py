"""Runner, registry, baseline, CLI — and the repo's own cleanliness.

The last test here is the PR's acceptance gate made permanent:
``repro lint`` must run clean (zero non-baselined findings) on the
checked-in tree, so tier-1 fails the moment a change reintroduces a
determinism, lock-coverage or drift violation.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exceptions import LintError
from repro.lint import (
    Finding,
    LintRegistry,
    default_registry,
    lint_project,
    load_baseline,
    render_json,
    write_baseline,
)
from repro.lint.findings import suppressed_rules
from repro.lint.runner import collect_files

from tests.lint.conftest import FIXTURES, REPO_ROOT


class TestRegistry:
    def test_stock_registry_has_all_three_families(self):
        registry = default_registry()
        ids = [rule.rule_id for rule in registry.rules]
        assert len(ids) >= 8
        assert any(i.startswith("det-") for i in ids)
        assert any(i.startswith("lock-") for i in ids)
        assert any(i.startswith("drift-") for i in ids)
        assert ids == sorted(ids)

    def test_duplicate_rule_id_is_rejected(self):
        registry = default_registry()
        rule = registry.rule("det-id-key")
        with pytest.raises(LintError, match="duplicate"):
            registry.register(rule)

    def test_unknown_rule_id_raises(self):
        with pytest.raises(LintError, match="unknown lint rule"):
            default_registry().rule("no-such-rule")

    def test_every_rule_has_id_and_summary(self):
        for rule in default_registry().rules:
            assert rule.rule_id and rule.summary


class TestSuppressions:
    def test_same_line_marker(self):
        lines = ["x = 1  # repro: allow[det-id-key]"]
        assert suppressed_rules(lines, 1) == {"det-id-key"}

    def test_preceding_line_marker(self):
        lines = ["# repro: allow[det-id-key, det-wallclock]", "x = 1"]
        assert suppressed_rules(lines, 2) == {"det-id-key", "det-wallclock"}

    def test_marker_does_not_leak_to_other_lines(self):
        lines = ["x = 1  # repro: allow[det-id-key]", "y = 2", "z = 3"]
        assert suppressed_rules(lines, 3) == frozenset()


class TestBaseline:
    def test_round_trip_silences_grandfathered_findings(self, tmp_path):
        report = lint_project(FIXTURES / "drift_bad")
        assert report.new_findings and report.exit_code == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, report.findings)
        baseline = load_baseline(baseline_path)
        again = lint_project(FIXTURES / "drift_bad", baseline=baseline)
        assert again.new_findings == []
        assert len(again.baselined_findings) == len(report.findings)
        assert again.exit_code == 0

    def test_fingerprints_survive_line_shifts(self):
        a = Finding(rule="r", path="p.py", line=3, message="m")
        b = Finding(rule="r", path="p.py", line=30, message="m")
        assert a.fingerprint == b.fingerprint

    def test_malformed_baseline_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(LintError, match="baseline"):
            load_baseline(path)

    def test_missing_source_tree_raises(self, tmp_path):
        with pytest.raises(LintError, match="no src"):
            collect_files(tmp_path)


class TestCli:
    def test_json_report_shape_and_exit_code(self, capsys):
        code = main(["lint", "--root", str(FIXTURES / "drift_bad"),
                     "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["format"] == "repro-lint/v1"
        assert payload["new"] == len(payload["findings"]) > 0
        assert {"rule", "path", "line", "message", "baselined"} <= set(
            payload["findings"][0]
        )

    def test_clean_tree_exits_zero(self, capsys):
        code = main(["lint", "--root", str(FIXTURES / "drift_good")])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 new findings" in out

    def test_output_file_is_the_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "lint-report.json"
        code = main(["lint", "--root", str(FIXTURES / "drift_good"),
                     "--format", "json", "--output", str(artifact)])
        assert code == 0
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-lint/v1"
        assert "0 new findings" in capsys.readouterr().out

    def test_write_baseline_then_gate_passes(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        code = main(["lint", "--root", str(FIXTURES / "drift_bad"),
                     "--baseline", str(baseline), "--write-baseline"])
        assert code == 0 and baseline.exists()
        capsys.readouterr()
        code = main(["lint", "--root", str(FIXTURES / "drift_bad"),
                     "--baseline", str(baseline)])
        assert code == 0
        assert "0 new findings" in capsys.readouterr().out

    def test_no_baseline_reaudits_everything(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main(["lint", "--root", str(FIXTURES / "drift_bad"),
              "--baseline", str(baseline), "--write-baseline"])
        capsys.readouterr()
        code = main(["lint", "--root", str(FIXTURES / "drift_bad"),
                     "--baseline", str(baseline), "--no-baseline"])
        assert code == 1


class TestRepositoryIsClean:
    """The acceptance criterion, kept honest forever after."""

    def test_repo_lints_clean_against_its_baseline(self):
        baseline_path = REPO_ROOT / "lint-baseline.json"
        baseline = (
            load_baseline(baseline_path) if baseline_path.exists()
            else frozenset()
        )
        report = lint_project(REPO_ROOT, baseline=baseline)
        assert report.new_findings == [], (
            "new lint findings:\n" + "\n".join(
                f"{f.location()}: {f.rule}: {f.message}"
                for f in report.new_findings
            )
        )

    def test_the_baseline_is_small_and_current(self):
        baseline_path = REPO_ROOT / "lint-baseline.json"
        baseline = load_baseline(baseline_path)
        # Grandfathered debt should shrink, not accumulate silently.
        assert len(baseline) <= 5
        report = lint_project(REPO_ROOT, baseline=baseline)
        live = {f.fingerprint for f in report.baselined_findings}
        assert live == baseline, (
            "baseline entries no longer observed; re-run "
            "`repro lint --write-baseline` to drop stale debt"
        )

    def test_registry_is_pluggable_with_a_custom_rule(self, tmp_path):
        from repro.lint.rules import ModuleRule

        class NoTodoRule(ModuleRule):
            rule_id = "x-no-todo"
            summary = "fixture rule"

            def check(self, ctx):
                return [
                    self.finding(ctx.relpath, i, "todo found")
                    for i, line in enumerate(ctx.lines, start=1)
                    if "TODO" in line
                ]

        module = tmp_path / "mod.py"
        module.write_text("# TODO: later\nVALUE = 1\n", encoding="utf-8")
        registry = LintRegistry((NoTodoRule(),))
        report = lint_project(tmp_path, registry=registry, paths=[module])
        assert [f.rule for f in report.findings] == ["x-no-todo"]
        assert render_json(report)["rules"] == 1
