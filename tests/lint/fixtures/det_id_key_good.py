# repro-lint: scope=determinism
"""Good: keys derive from content, never from object identity."""

import hashlib


def cache_key(oracle):
    digest = hashlib.sha256(repr(oracle).encode("utf-8")).hexdigest()
    return f"oracle-{digest}"


def memo_slot(circuit, table, key):
    table[key] = circuit
    return table
