"""Fixture engine: MatchingConfig and the doc coverage list agree."""


class MatchingConfig:
    epsilon: float = 1e-3
    probe_count: int = 64
