"""Fixture daemon: dispatch and the protocol doc agree exactly."""


class MatchingDaemon:
    def _dispatch(self, frame):
        op = frame.get("op")
        if op == "ping":
            return {"ok": True}
        if op == "flush":
            return {"ok": True, "flushed": True}
        return {"ok": False, "error": f"unknown op {op!r}"}
