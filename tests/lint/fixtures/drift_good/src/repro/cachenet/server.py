"""Fixture cache server in agreement with its protocol doc."""


class CacheServer:
    def _dispatch(self, frame):
        op = frame.get("op")
        if op == "ping":
            return {"ok": True}
        if op == "get":
            return {"ok": True, "record": None}
        return {"ok": False, "error": f"unknown op {op!r}"}
