# repro-lint: scope=determinism
"""Bad: digest-feeding code drawing from ambient entropy."""

import random
import random as rnd
from random import Random, SystemRandom, randrange


def salt():
    return random.random()  # expect[det-unseeded-random]


def probe_bits():
    return rnd.getrandbits(16)  # expect[det-unseeded-random]


def pick(items):
    return randrange(len(items))  # expect[det-unseeded-random]


def fresh_rng():
    return Random()  # expect[det-unseeded-random]


def strong_rng():
    return SystemRandom()  # expect[det-unseeded-random]
