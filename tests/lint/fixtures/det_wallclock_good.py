# repro-lint: scope=determinism
"""Good: timestamps are threaded through; uuid5 is content-derived."""

import uuid


def stamp(recorded):
    return float(recorded)


def token(namespace, name):
    return uuid.uuid5(namespace, name)
