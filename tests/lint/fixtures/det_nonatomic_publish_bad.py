# repro-lint: scope=publish
"""Bad: files published in place — a crash leaves a torn file."""

import json


def save_manifest(path, payload):
    with open(path, "w", encoding="utf-8") as handle:  # expect[det-nonatomic-publish]
        json.dump(payload, handle)


def save_note(path, text):
    path.write_text(text)  # expect[det-nonatomic-publish]
