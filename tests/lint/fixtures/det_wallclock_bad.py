# repro-lint: scope=determinism
"""Bad: digest-feeding code reading wall clocks and host identity."""

import datetime
import time
import uuid
from datetime import datetime as dt
from time import perf_counter


def stamp():
    return time.time()  # expect[det-wallclock]


def tick():
    return perf_counter()  # expect[det-wallclock]


def when():
    return datetime.datetime.now()  # expect[det-wallclock]


def midnight():
    return dt.utcnow()  # expect[det-wallclock]


def token():
    return uuid.uuid4()  # expect[det-wallclock]
