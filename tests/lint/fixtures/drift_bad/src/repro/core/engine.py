"""Fixture engine: a MatchingConfig the doc coverage list drifted from."""


class MatchingConfig:
    epsilon: float = 1e-3
    probe_count: int = 64
