"""Fixture cache server: dispatches `evict`, which the doc omits."""


class CacheServer:
    def _dispatch(self, frame):
        op = frame.get("op")
        if op == "ping":
            return {"ok": True}
        if op == "get":
            return {"ok": True, "record": None}
        if op == "evict":
            return {"ok": True, "evicted": 1}
        return {"ok": False, "error": f"unknown op {op!r}"}
