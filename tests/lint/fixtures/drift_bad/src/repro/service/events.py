"""Fixture events: wire fields drifted from the catalogue table."""


class TaskDone:
    kind = "TaskDone"

    def to_dict(self):
        return {"event": self.kind, "index": 0, "record": {}}


class TaskSkipped:
    kind = "TaskSkipped"

    def to_dict(self):
        return {"event": self.kind, "index": 0}
