"""Fixture CLI: registers `ghost`, which the README never shows."""

import argparse


def build_parser():
    parser = argparse.ArgumentParser(prog="repro")
    subparsers = parser.add_subparsers()
    runner = subparsers.add_parser("run")
    runner.add_argument("--seed", type=int)
    ghost = subparsers.add_parser("ghost")
    ghost.add_argument("--haunt")
    return parser
