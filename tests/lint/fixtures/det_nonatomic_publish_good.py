# repro-lint: scope=publish
"""Good: write a tmp file, then os.replace it into place."""

import json
import os


def save_manifest(path, payload):
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)


def save_note(path, text):
    tmp = path.with_suffix(".tmp")
    tmp.write_text(text)
    tmp.replace(path)


def load_manifest(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
