# repro-lint: scope=determinism
"""Bad: a cache key derived from process-local object identity."""


def cache_key(oracle):
    return f"oracle-{id(oracle)}"  # expect[det-id-key]


def memo_slot(circuit, table):
    table[id(circuit)] = circuit  # expect[det-id-key]
    return table
