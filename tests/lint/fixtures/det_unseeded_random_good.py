# repro-lint: scope=determinism
"""Good: every random draw flows from an explicit, recorded seed."""

import random
from random import Random


def rng(seed):
    return Random(seed)


def draw(seed):
    return random.Random(seed).random()


def derived(seed, index):
    return random.Random((seed, index)).getrandbits(32)
