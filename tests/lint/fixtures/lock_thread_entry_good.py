"""Good: thread-entry mutations hold the lock (or go through queues)."""

import queue
import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._results = []
        self._pending = queue.Queue()
        self._thread = threading.Thread(target=self._loop)

    def _loop(self):
        self._drain()

    def _drain(self):
        with self._lock:
            self._results.append(1)
        self._pending.put(len(self._results))


class Relay:
    def __init__(self):
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._pump)

    def _pump(self, job=None):
        with job._lock:
            job.state = "done"
