# repro-lint: scope=determinism
"""Bad: directory listings consumed in filesystem order."""

import glob
import os
from pathlib import Path


def entries(directory):
    return os.listdir(directory)  # expect[det-unsorted-glob]


def shards(pattern):
    return glob.glob(pattern)  # expect[det-unsorted-glob]


def records(directory):
    return [path.name for path in Path(directory).glob("*.json")]  # expect[det-unsorted-glob]


def children(directory):
    return list(Path(directory).iterdir())  # expect[det-unsorted-glob]
