"""Good: every mutation of a guarded attribute holds the lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0
        self._history = []

    def bump(self):
        with self._lock:
            self._value += 1
            self._history.append(self._value)

    def reset(self):
        with self._lock:
            self._value = 0
            self._history.clear()

    def peek(self):
        with self._lock:
            return self._value
