# repro-lint: scope=determinism
"""Good: every listing is sorted before anything consumes it."""

import glob
import os
from pathlib import Path


def entries(directory):
    return sorted(os.listdir(directory))


def shards(pattern):
    return sorted(glob.glob(pattern))


def records(directory):
    return [path.name for path in sorted(Path(directory).glob("*.json"))]


def children(directory):
    return sorted(Path(directory).iterdir())
