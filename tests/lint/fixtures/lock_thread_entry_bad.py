"""Bad: thread-entry code mutating shared state without the lock."""

import threading


class Worker:
    def __init__(self):
        self._lock = threading.Lock()
        self._results = []
        self._thread = threading.Thread(target=self._loop)

    def _loop(self):
        self._drain()

    def _drain(self):
        self._results.append(1)  # expect[lock-thread-entry]


class Relay:
    def __init__(self):
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._pump)

    def _pump(self, job=None):
        job.state = "done"  # expect[lock-thread-entry]
