# repro-lint: scope=determinism
"""Good: every unordered collection goes through sorted(...) first."""


def digest_parts(mapping):
    return [f"{key}={value}" for key, value in sorted(mapping.items())]


def key_lines(mapping):
    out = []
    for key in sorted(mapping.keys()):
        out.append(key)
    return out


def unique(values):
    return [item for item in sorted(set(values))]


def pairs(items):
    return [entry for entry in items]
