# repro-lint: scope=determinism
"""Bad: hash-order iteration feeding serialised output."""


def digest_parts(mapping):
    return [f"{key}={value}" for key, value in mapping.items()]  # expect[det-unsorted-iter]


def key_lines(mapping):
    out = []
    for key in mapping.keys():  # expect[det-unsorted-iter]
        out.append(key)
    return out


def tag_list():
    return [item for item in {"b", "a", "c"}]  # expect[det-unsorted-iter]


def unique(values):
    return [item for item in set(values)]  # expect[det-unsorted-iter]
