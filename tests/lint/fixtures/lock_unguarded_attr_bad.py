"""Bad: an attribute guarded in one method, bare in another."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0
        self._history = []

    def bump(self):
        with self._lock:
            self._value += 1
            self._history.append(self._value)

    def reset(self):
        self._value = 0  # expect[lock-unguarded-attr]
        self._history.clear()  # expect[lock-unguarded-attr]

    def peek(self):
        with self._lock:
            return self._value
