"""Fixture-based self-tests for the determinism rule family.

Every rule must (a) fire on exactly the marked lines of its bad
fixture, (b) stay silent on the good fixture, and (c) be silenceable
with an inline ``# repro: allow[rule-id]`` marker.
"""

from __future__ import annotations

import pytest

from repro.lint import lint_project
from repro.lint.rules import SCOPE_PATHS

from tests.lint.conftest import FIXTURES, expected_findings, lint_fixture

DET_RULES = (
    "det-unseeded-random",
    "det-wallclock",
    "det-unsorted-iter",
    "det-unsorted-glob",
    "det-id-key",
    "det-nonatomic-publish",
)


def _fixture(rule: str, kind: str):
    return FIXTURES / f"{rule.replace('-', '_')}_{kind}.py"


@pytest.mark.parametrize("rule", DET_RULES)
class TestDeterminismRules:
    def test_fires_on_every_marked_line_of_the_bad_fixture(self, rule):
        path = _fixture(rule, "bad")
        expected = expected_findings(path)
        assert expected, f"{path.name} declares no expected findings"
        report = lint_fixture(path)
        got = {(f.line, f.rule) for f in report.findings if f.rule == rule}
        assert got == expected

    def test_silent_on_the_good_fixture(self, rule):
        report = lint_fixture(_fixture(rule, "good"))
        assert [f for f in report.findings if f.rule == rule] == []

    def test_inline_suppression_silences_every_finding(self, rule, tmp_path):
        path = _fixture(rule, "bad")
        lines = path.read_text(encoding="utf-8").splitlines()
        before = lint_fixture(path)
        hits = [f for f in before.findings if f.rule == rule]
        for finding in hits:
            lines[finding.line - 1] += f"  # repro: allow[{rule}]"
        patched = tmp_path / path.name
        patched.write_text("\n".join(lines) + "\n", encoding="utf-8")
        after = lint_project(tmp_path, paths=[patched])
        assert [f for f in after.findings if f.rule == rule] == []
        assert after.suppressed >= len(hits)


class TestScoping:
    """Determinism rules only apply to digest-feeding modules."""

    def test_unscoped_module_is_exempt(self, tmp_path):
        source = FIXTURES / "det_unseeded_random_bad.py"
        lines = source.read_text(encoding="utf-8").splitlines()
        assert lines[0].startswith("# repro-lint: scope=")
        unscoped = tmp_path / "free.py"
        unscoped.write_text("\n".join(lines[1:]) + "\n", encoding="utf-8")
        report = lint_project(tmp_path, paths=[unscoped])
        assert report.findings == []

    def test_the_real_digest_modules_are_in_scope(self):
        for suffix in SCOPE_PATHS["determinism"]:
            assert suffix.startswith("repro/")
        assert "repro/service/fingerprint.py" in SCOPE_PATHS["determinism"]
        assert "repro/service/serialize.py" in SCOPE_PATHS["determinism"]
