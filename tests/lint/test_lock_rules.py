"""Fixture-based self-tests for the lock-coverage rule family."""

from __future__ import annotations

import pytest

from repro.lint import lint_project

from tests.lint.conftest import FIXTURES, expected_findings, lint_fixture

LOCK_RULES = ("lock-unguarded-attr", "lock-thread-entry")


def _fixture(rule: str, kind: str):
    return FIXTURES / f"{rule.replace('-', '_')}_{kind}.py"


@pytest.mark.parametrize("rule", LOCK_RULES)
class TestLockRules:
    def test_fires_on_every_marked_line_of_the_bad_fixture(self, rule):
        path = _fixture(rule, "bad")
        expected = expected_findings(path)
        assert expected, f"{path.name} declares no expected findings"
        report = lint_fixture(path)
        got = {(f.line, f.rule) for f in report.findings if f.rule == rule}
        assert got == expected

    def test_silent_on_the_good_fixture(self, rule):
        report = lint_fixture(_fixture(rule, "good"))
        assert [f for f in report.findings if f.rule == rule] == []

    def test_inline_suppression_silences_every_finding(self, rule, tmp_path):
        path = _fixture(rule, "bad")
        lines = path.read_text(encoding="utf-8").splitlines()
        before = lint_fixture(path)
        hits = [f for f in before.findings if f.rule == rule]
        for finding in hits:
            lines[finding.line - 1] += f"  # repro: allow[{rule}]"
        patched = tmp_path / path.name
        patched.write_text("\n".join(lines) + "\n", encoding="utf-8")
        after = lint_project(tmp_path, paths=[patched])
        assert [f for f in after.findings if f.rule == rule] == []


class TestLockRuleBoundaries:
    """The exemptions are as deliberate as the checks."""

    def test_constructor_writes_are_exempt(self, tmp_path):
        module = tmp_path / "ctor.py"
        module.write_text(
            "import threading\n\n\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._value = 0\n\n"
            "    def set(self, value):\n"
            "        with self._lock:\n"
            "            self._value = value\n",
            encoding="utf-8",
        )
        report = lint_project(tmp_path, paths=[module])
        assert report.findings == []

    def test_lockless_classes_are_exempt(self, tmp_path):
        module = tmp_path / "plain.py"
        module.write_text(
            "class Tally:\n"
            "    def __init__(self):\n"
            "        self._values = []\n\n"
            "    def add(self, value):\n"
            "        self._values.append(value)\n",
            encoding="utf-8",
        )
        report = lint_project(tmp_path, paths=[module])
        assert report.findings == []

    def test_queue_put_is_not_a_mutation(self, tmp_path):
        module = tmp_path / "queues.py"
        module.write_text(
            "import queue\n"
            "import threading\n\n\n"
            "class Pump:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._pending = queue.Queue()\n"
            "        self._thread = threading.Thread(target=self._loop)\n\n"
            "    def _loop(self):\n"
            "        self._pending.put(1)\n",
            encoding="utf-8",
        )
        report = lint_project(tmp_path, paths=[module])
        assert report.findings == []
