"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.circuits import io, library
from repro.circuits.random import random_line_permutation, random_negation
from repro.circuits.transforms import transformed_circuit
from repro.cli import build_parser, main


@pytest.fixture
def circuit_files(tmp_path, rng):
    """Write a base circuit and an NP-I-scrambled variant to .real files."""
    base = library.hidden_weighted_bit(4)
    nu = random_negation(4, rng)
    pi = random_line_permutation(4, rng)
    scrambled = transformed_circuit(base, nu_x=nu, pi_x=pi)
    base_path = tmp_path / "base.real"
    scrambled_path = tmp_path / "scrambled.real"
    io.write_real(base, base_path)
    io.write_real(scrambled, scrambled_path)
    return str(scrambled_path), str(base_path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestInfo:
    def test_info_reports_metrics(self, circuit_files, capsys):
        scrambled, base = circuit_files
        assert main(["info", base]) == 0
        output = capsys.readouterr().out
        assert "gates" in output
        assert "quantum_cost" in output

    def test_info_with_drawing(self, circuit_files, capsys):
        _, base = circuit_files
        assert main(["info", base, "--draw", "--ascii"]) == 0
        assert "+" in capsys.readouterr().out

    def test_info_missing_file(self, capsys):
        assert main(["info", "/nonexistent/file.real"]) == 2
        assert "error" in capsys.readouterr().err


class TestMatch:
    def test_match_with_inverse_and_verify(self, circuit_files, capsys):
        scrambled, base = circuit_files
        code = main(
            [
                "match",
                scrambled,
                base,
                "--equivalence",
                "NP-I",
                "--with-inverse",
                "--verify",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "nu_x" in output
        assert "pi_x" in output
        assert "PASS" in output

    def test_match_quantum_path(self, circuit_files, capsys):
        scrambled, base = circuit_files
        code = main(
            [
                "match",
                scrambled,
                base,
                "--equivalence",
                "NP-I",
                "--seed",
                "3",
                "--verify",
            ]
        )
        assert code == 0
        assert "quantum queries" in capsys.readouterr().out

    def test_match_hard_class_reports_error(self, circuit_files, capsys):
        scrambled, base = circuit_files
        assert main(["match", scrambled, base, "--equivalence", "N-N"]) == 2
        assert "UNIQUE-SAT" in capsys.readouterr().err


class TestDecide:
    def test_decide_positive(self, circuit_files, capsys):
        scrambled, base = circuit_files
        code = main(
            ["decide", scrambled, base, "--equivalence", "NP-I", "--with-inverse"]
            if False
            else ["decide", scrambled, base, "--equivalence", "NP-I", "--seed", "1"]
        )
        assert code == 0
        assert "equivalent: yes" in capsys.readouterr().out

    def test_decide_negative(self, tmp_path, capsys):
        first = library.increment(3)
        second = library.gray_code(3)
        path1, path2 = tmp_path / "a.real", tmp_path / "b.real"
        io.write_real(first, path1)
        io.write_real(second, path2)
        code = main(["decide", str(path1), str(path2), "--equivalence", "I-N"])
        assert code == 1
        assert "equivalent: no" in capsys.readouterr().out


class TestSynth:
    def test_synth_prints_and_writes(self, tmp_path, capsys):
        output = tmp_path / "synth.real"
        code = main(
            ["synth", "--permutation", "0,3,1,2", "--output", str(output), "--ascii"]
        )
        assert code == 0
        assert output.exists()
        text = capsys.readouterr().out
        assert "synthesised" in text
        circuit = io.read_real(output)
        assert circuit.truth_table() == [0, 3, 1, 2]

    def test_synth_invalid_permutation(self, capsys):
        assert main(["synth", "--permutation", "0,0,1,2"]) == 2
        assert "error" in capsys.readouterr().err
