"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.circuits import io, library
from repro.circuits.random import random_line_permutation, random_negation
from repro.circuits.transforms import transformed_circuit
from repro.cli import build_parser, main
from repro.core.equivalence import EquivalenceType
from repro.core.verify import make_instance


@pytest.fixture
def circuit_files(tmp_path, rng):
    """Write a base circuit and an NP-I-scrambled variant to .real files."""
    base = library.hidden_weighted_bit(4)
    nu = random_negation(4, rng)
    pi = random_line_permutation(4, rng)
    scrambled = transformed_circuit(base, nu_x=nu, pi_x=pi)
    base_path = tmp_path / "base.real"
    scrambled_path = tmp_path / "scrambled.real"
    io.write_real(base, base_path)
    io.write_real(scrambled, scrambled_path)
    return str(scrambled_path), str(base_path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestInfo:
    def test_info_reports_metrics(self, circuit_files, capsys):
        scrambled, base = circuit_files
        assert main(["info", base]) == 0
        output = capsys.readouterr().out
        assert "gates" in output
        assert "quantum_cost" in output

    def test_info_with_drawing(self, circuit_files, capsys):
        _, base = circuit_files
        assert main(["info", base, "--draw", "--ascii"]) == 0
        assert "+" in capsys.readouterr().out

    def test_info_missing_file(self, capsys):
        assert main(["info", "/nonexistent/file.real"]) == 2
        assert "error" in capsys.readouterr().err


class TestMatch:
    def test_match_with_inverse_and_verify(self, circuit_files, capsys):
        scrambled, base = circuit_files
        code = main(
            [
                "match",
                scrambled,
                base,
                "--equivalence",
                "NP-I",
                "--with-inverse",
                "--verify",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "nu_x" in output
        assert "pi_x" in output
        assert "PASS" in output

    def test_match_quantum_path(self, circuit_files, capsys):
        scrambled, base = circuit_files
        code = main(
            [
                "match",
                scrambled,
                base,
                "--equivalence",
                "NP-I",
                "--seed",
                "3",
                "--verify",
            ]
        )
        assert code == 0
        assert "quantum queries" in capsys.readouterr().out

    def test_match_hard_class_reports_error(self, circuit_files, capsys):
        scrambled, base = circuit_files
        assert main(["match", scrambled, base, "--equivalence", "N-N"]) == 2
        assert "UNIQUE-SAT" in capsys.readouterr().err


class TestMatchMany:
    @pytest.fixture
    def manifest(self, tmp_path, rng):
        """A two-pair manifest: an NP-I instance and an I-N instance."""
        paths = {}
        for label, equivalence in (
            ("np_i", EquivalenceType.NP_I),
            ("i_n", EquivalenceType.I_N),
        ):
            base = library.hidden_weighted_bit(4)
            c1, c2, _ = make_instance(base, equivalence, rng)
            path1 = tmp_path / f"{label}_c1.real"
            path2 = tmp_path / f"{label}_c2.real"
            io.write_real(c1, path1)
            io.write_real(c2, path2)
            paths[label] = (path1, path2)
        manifest_path = tmp_path / "pairs.txt"
        manifest_path.write_text(
            "# promised pairs\n"
            f"{paths['np_i'][0]} {paths['np_i'][1]} NP-I\n"
            f"{paths['i_n'][0]} {paths['i_n'][1]} I-N\n",
            encoding="utf-8",
        )
        return manifest_path

    def test_match_many_success(self, manifest, capsys):
        assert main(["match-many", str(manifest), "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "2/2 matched" in output
        assert "NP-I" in output and "I-N" in output

    def test_match_many_default_equivalence_applies(self, tmp_path, rng, capsys):
        base = library.hidden_weighted_bit(4)
        c1, c2, _ = make_instance(base, EquivalenceType.I_N, rng)
        path1, path2 = tmp_path / "a.real", tmp_path / "b.real"
        io.write_real(c1, path1)
        io.write_real(c2, path2)
        manifest = tmp_path / "pairs.txt"
        manifest.write_text(f"{path1} {path2}\n", encoding="utf-8")
        code = main(["match-many", str(manifest), "--equivalence", "I-N"])
        assert code == 0
        assert "1/1 matched" in capsys.readouterr().out

    def test_match_many_malformed_line(self, tmp_path, capsys):
        manifest = tmp_path / "pairs.txt"
        manifest.write_text("a.real b.real NP-I extra-field\n", encoding="utf-8")
        assert main(["match-many", str(manifest)]) == 2
        err = capsys.readouterr().err
        assert "expected 'C1 C2 [EQUIVALENCE]'" in err

    def test_match_many_unknown_class(self, tmp_path, capsys):
        manifest = tmp_path / "pairs.txt"
        manifest.write_text("a.real b.real NOT-A-CLASS\n", encoding="utf-8")
        assert main(["match-many", str(manifest)]) == 2
        assert "unknown equivalence label" in capsys.readouterr().err

    def test_match_many_empty_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "pairs.txt"
        manifest.write_text("# nothing but comments\n\n", encoding="utf-8")
        assert main(["match-many", str(manifest)]) == 2
        assert "no circuit pairs" in capsys.readouterr().err

    def test_match_many_budget_exceeded_exit_code(self, tmp_path, rng, capsys):
        base = library.hidden_weighted_bit(4)
        c1, c2, _ = make_instance(base, EquivalenceType.P_I, rng)
        path1, path2 = tmp_path / "a.real", tmp_path / "b.real"
        io.write_real(c1, path1)
        io.write_real(c2, path2)
        manifest = tmp_path / "pairs.txt"
        manifest.write_text(f"{path1} {path2} P-I\n", encoding="utf-8")
        code = main(["match-many", str(manifest), "--budget", "1", "--seed", "3"])
        assert code == 1
        output = capsys.readouterr().out
        assert "QueryBudgetExceededError" in output
        assert "0/1 matched" in output


class TestCorpusRun:
    def test_corpus_then_run_then_resume(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        code = main(
            [
                "corpus",
                str(corpus),
                "--num-lines",
                "4",
                "--families",
                "random,library",
                "--classes",
                "I-N,P-I",
                "--seed",
                "11",
            ]
        )
        assert code == 0
        assert "generated 4 pairs" in capsys.readouterr().out
        manifest = corpus / "manifest.json"
        assert manifest.exists()

        store = tmp_path / "results.jsonl"
        code = main(
            ["run", str(corpus), "--store", str(store), "--seed", "5"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "4/4 matched" in output
        records = [
            json.loads(line) for line in store.read_text().splitlines() if line
        ]
        assert len(records) == 4 and all(r["status"] == "ok" for r in records)

        code = main(
            ["run", str(corpus), "--store", str(store), "--resume", "--seed", "5"]
        )
        assert code == 0
        assert "4 resumed, 0 executed" in capsys.readouterr().out

    def test_run_rejects_resume_without_store(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        main(
            [
                "corpus",
                str(corpus),
                "--classes",
                "I-N",
                "--families",
                "random",
                "--seed",
                "1",
            ]
        )
        capsys.readouterr()
        assert main(["run", str(corpus), "--resume"]) == 2
        assert "resume requires" in capsys.readouterr().err

    def test_run_missing_manifest(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nowhere")]) == 2
        assert "error" in capsys.readouterr().err

    def test_corpus_rejects_unknown_family(self, tmp_path, capsys):
        assert main(["corpus", str(tmp_path / "c"), "--families", "bogus"]) == 2
        assert "unknown workload family" in capsys.readouterr().err

    def test_run_rejects_nonpositive_cache_size(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        main(["corpus", str(corpus), "--classes", "I-N", "--seed", "1"])
        capsys.readouterr()
        assert main(["run", str(corpus), "--cache-size", "0"]) == 2
        assert "--cache-size must be positive" in capsys.readouterr().err


class TestFingerprintCommand:
    def test_single_file_prints_scheme_and_key(self, circuit_files, capsys):
        _, base = circuit_files
        assert main(["fingerprint", base]) == 0
        output = capsys.readouterr().out
        assert "scheme : exact" in output  # 4 lines: under the width limit
        assert "fp/v2:4:exact:function:fwd:" in output
        assert "pair key" not in output

    def test_pair_prints_the_full_cache_key(self, circuit_files, capsys):
        scrambled, base = circuit_files
        assert main(["fingerprint", scrambled, base, "-e", "NP-I"]) == 0
        output = capsys.readouterr().out
        assert "pair key : v2|NP-I|fp/v2:" in output

    def test_probe_scheme_is_selectable(self, circuit_files, capsys):
        _, base = circuit_files
        assert main(
            ["fingerprint", base, "--fingerprint", "probe", "--probe-count", "8"]
        ) == 0
        output = capsys.readouterr().out
        assert "scheme : probe" in output

    def test_same_function_same_key_is_debuggable(self, tmp_path, capsys):
        # The command's purpose: two representations of one function print
        # the same fingerprint key, so a cache hit is predictable.
        circuit = library.hidden_weighted_bit(4)
        a, b = tmp_path / "a.real", tmp_path / "b.real"
        io.write_real(circuit, a)
        io.write_real(circuit, b)
        assert main(["fingerprint", str(a), str(b)]) == 0
        lines = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("  key")
        ]
        keys = {line.split(":", 1)[1].strip() for line in lines}
        assert len(lines) == 2 and len(keys) == 1

    def test_missing_file_is_an_error(self, capsys):
        assert main(["fingerprint", "/nonexistent/file.real"]) == 2
        assert "error" in capsys.readouterr().err


class TestCacheCommand:
    def _run_with_cache(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        main(
            ["corpus", str(corpus), "--classes", "I-N", "--families",
             "random", "--seed", "1"]
        )
        cache_dir = tmp_path / "cache"
        assert main(["run", str(corpus), "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        return cache_dir

    def test_migrate_reports_versions(self, tmp_path, capsys):
        cache_dir = self._run_with_cache(tmp_path, capsys)
        assert main(["cache", "migrate", "--cache-dir", str(cache_dir)]) == 0
        output = capsys.readouterr().out
        assert "1 current (v2) entries" in output
        assert "0 stale v1" in output

    def test_migrate_drop_v1(self, tmp_path, capsys):
        cache_dir = self._run_with_cache(tmp_path, capsys)
        v1 = cache_dir / "aaaa.json"
        v1.write_text(json.dumps({"key": "I-N|v1-ish", "record": {}}))
        assert main(
            ["cache", "migrate", "--cache-dir", str(cache_dir), "--drop-v1"]
        ) == 0
        output = capsys.readouterr().out
        assert "1 stale v1" in output and "dropped 1" in output
        assert not v1.exists()

    def test_migrate_missing_directory(self, tmp_path, capsys):
        assert main(
            ["cache", "migrate", "--cache-dir", str(tmp_path / "nope")]
        ) == 2
        assert "error" in capsys.readouterr().err


class TestWideRun:
    def test_wide_corpus_warm_rerun_spends_zero_queries(self, tmp_path, capsys):
        """The acceptance criterion through `repro run`: generate a wide
        (>= 16-line) corpus, run it twice against a disk cache from two
        separate CLI invocations, and the warm run executes nothing."""
        corpus = tmp_path / "wide"
        assert main(
            ["corpus", str(corpus), "--families", "wide", "--classes",
             "I-P,P-I", "--seed", "3"]
        ) == 0
        manifest = json.loads((corpus / "manifest.json").read_text())
        assert all(entry["num_lines"] >= 16 for entry in manifest["entries"])
        cache_dir = tmp_path / "cache"
        assert main(["run", str(corpus), "--cache-dir", str(cache_dir)]) == 0
        cold = capsys.readouterr().out
        assert "2 executed" in cold
        assert main(["run", str(corpus), "--cache-dir", str(cache_dir)]) == 0
        warm = capsys.readouterr().out
        assert "2 cached, 0 resumed, 0 executed" in warm
        assert "0 classical + 0 quantum queries spent" in warm

    def test_run_rejects_bad_fingerprint_scheme(self, tmp_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", str(tmp_path), "--fingerprint", "telepathy"]
            )


class TestRunStreaming:
    @pytest.fixture
    def corpus(self, tmp_path):
        """A four-pair corpus directory for the streaming-flag tests."""
        corpus = tmp_path / "corpus"
        code = main(
            [
                "corpus",
                str(corpus),
                "--num-lines",
                "4",
                "--families",
                "random,library",
                "--classes",
                "I-N,P-I",
                "--seed",
                "11",
            ]
        )
        assert code == 0
        return corpus

    def test_progress_flag_leaves_exit_code_unchanged(self, corpus, capsys):
        """Satellite: --progress is additive — same exit code, same stdout
        shape, progress confined to stderr; quiet runs stay quiet."""
        quiet_code = main(["run", str(corpus), "--seed", "5"])
        quiet = capsys.readouterr()
        loud_code = main(["run", str(corpus), "--seed", "5", "--progress"])
        loud = capsys.readouterr()
        assert quiet_code == loud_code == 0
        assert quiet.err == ""
        assert "4/4 matched" in quiet.out and "4/4 matched" in loud.out
        lines = loud.err.splitlines()
        assert lines[0].startswith("run started: 4 pairs")
        assert lines[-1].startswith("run completed: 4/4")
        assert len(lines) == 2 + 4  # banner + one line per pair + banner

    def test_progress_cadence_and_overlap(self, corpus, capsys):
        code = main(
            ["run", str(corpus), "--seed", "5", "--progress", "2", "--overlap"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "overlap[serial]" in captured.out
        assert len(captured.err.splitlines()) == 2 + 2

    def test_progress_rejects_nonpositive_cadence(self, corpus, capsys):
        assert main(["run", str(corpus), "--progress", "0"]) == 2
        assert "--progress cadence" in capsys.readouterr().err

    def test_events_log_written(self, corpus, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        assert main(["run", str(corpus), "--seed", "5", "--events", str(log)]) == 0
        entries = [json.loads(line) for line in log.read_text().splitlines()]
        assert entries[0]["event"] == "RunStarted"
        assert entries[-1]["event"] == "RunCompleted"

    def test_sharded_runs_merge_to_the_unsharded_store(self, corpus, tmp_path, capsys):
        full = tmp_path / "full.jsonl"
        assert main(["run", str(corpus), "--store", str(full), "--seed", "5"]) == 0
        shard_stores = []
        for index in range(2):
            store = tmp_path / f"shard{index}.jsonl"
            shard_stores.append(store)
            code = main(
                [
                    "run",
                    str(corpus),
                    "--store",
                    str(store),
                    "--seed",
                    "5",
                    "--shard",
                    f"{index}/2",
                ]
            )
            assert code == 0
        merged = tmp_path / "merged.jsonl"
        code = main(
            ["merge", *map(str, shard_stores), "--output", str(merged)]
        )
        assert code == 0
        assert "merged 4 records from 2 stores" in capsys.readouterr().out
        assert merged.read_bytes() == full.read_bytes()

    def test_run_rejects_malformed_shard(self, corpus, capsys):
        assert main(["run", str(corpus), "--shard", "2/2"]) == 2
        assert "shard" in capsys.readouterr().err

    def test_merge_missing_store_fails(self, tmp_path, capsys):
        code = main(
            ["merge", str(tmp_path / "nope.jsonl"), "--output", str(tmp_path / "o")]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err


class TestDecide:
    def test_decide_positive(self, circuit_files, capsys):
        scrambled, base = circuit_files
        code = main(
            ["decide", scrambled, base, "--equivalence", "NP-I", "--with-inverse"]
            if False
            else ["decide", scrambled, base, "--equivalence", "NP-I", "--seed", "1"]
        )
        assert code == 0
        assert "equivalent: yes" in capsys.readouterr().out

    def test_decide_negative(self, tmp_path, capsys):
        first = library.increment(3)
        second = library.gray_code(3)
        path1, path2 = tmp_path / "a.real", tmp_path / "b.real"
        io.write_real(first, path1)
        io.write_real(second, path2)
        code = main(["decide", str(path1), str(path2), "--equivalence", "I-N"])
        assert code == 1
        assert "equivalent: no" in capsys.readouterr().out


class TestSynth:
    def test_synth_prints_and_writes(self, tmp_path, capsys):
        output = tmp_path / "synth.real"
        code = main(
            ["synth", "--permutation", "0,3,1,2", "--output", str(output), "--ascii"]
        )
        assert code == 0
        assert output.exists()
        text = capsys.readouterr().out
        assert "synthesised" in text
        circuit = io.read_real(output)
        assert circuit.truth_table() == [0, 3, 1, 2]

    def test_synth_invalid_permutation(self, capsys):
        assert main(["synth", "--permutation", "0,0,1,2"]) == 2
        assert "error" in capsys.readouterr().err


class TestDaemonCommands:
    @pytest.fixture
    def corpus(self, tmp_path):
        corpus = tmp_path / "corpus"
        assert main(
            [
                "corpus", str(corpus),
                "--num-lines", "3",
                "--families", "random",
                "--classes", "I-I,P-I",
                "--seed", "11",
            ]
        ) == 0
        return corpus

    @pytest.fixture
    def served(self, tmp_path, corpus):
        """A daemon run by the `serve` command on a background thread."""
        import threading
        import time

        address_file = tmp_path / "addr"
        thread = threading.Thread(
            target=main,
            args=(
                [
                    "serve",
                    "--store-dir", str(tmp_path / "runs"),
                    "--socket", str(tmp_path / "d.sock"),
                    "--address-file", str(address_file),
                ],
            ),
        )
        thread.start()
        deadline = time.monotonic() + 30
        while not address_file.exists():
            assert time.monotonic() < deadline, "serve never wrote its address"
            time.sleep(0.02)
        yield ["--address-file", str(address_file)]
        main(["daemon", "shutdown", "--address-file", str(address_file)])
        thread.join(timeout=30)
        assert not thread.is_alive()

    def test_serve_submit_watch_shutdown(self, served, corpus, capsys):
        at = served
        assert main(["submit", str(corpus), "--seed", "5", "--wait", *at]) == 0
        out = capsys.readouterr().out
        assert "submitted run-0001" in out
        assert "run-0001: completed" in out

        # Watching the finished run replays it; a second submit of the
        # same manifest is answered wholly by the daemon's shared cache.
        assert main(["watch", "run-0001", "--progress", *at]) == 0
        assert "run-0001: completed" in capsys.readouterr().out
        assert main(["submit", str(corpus), "--seed", "5", "--wait", *at]) == 0
        capsys.readouterr()
        assert main(["daemon", "status", "run-0002", *at]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["run"]["summary"]["executed"] == 0
        assert main(["daemon", "stats", *at]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["cache"]["hits"] >= 2
        assert stats["runs"]["completed"] == 2

    def test_submit_pair_and_event_log(self, served, corpus, tmp_path, capsys):
        log = tmp_path / "events.jsonl"
        code = main(
            [
                "submit",
                "--pair",
                str(corpus / "random-i-i-000-c1.real"),
                str(corpus / "random-i-i-000-c2.real"),
                "I-I",
                "--events", str(log),
                *served,
            ]
        )
        assert code == 0
        kinds = [json.loads(line)["event"] for line in log.read_text().splitlines()]
        assert kinds[0] == "RunStarted" and kinds[-1] == "RunCompleted"

    def test_submit_argument_validation(self, capsys):
        assert main(["submit", "--socket", "/nonexistent.sock"]) == 2
        assert "needs a MANIFEST" in capsys.readouterr().err

    def test_client_without_address(self, capsys):
        assert main(["daemon", "ping"]) == 2
        assert "--socket" in capsys.readouterr().err

    def test_cancel_requires_run_id(self, capsys):
        assert main(["daemon", "cancel", "--socket", "/nonexistent.sock"]) == 2
        assert "RUN_ID" in capsys.readouterr().err

    def test_unreachable_daemon_is_a_cli_error(self, tmp_path, capsys):
        assert main(["daemon", "ping", "--socket", str(tmp_path / "no.sock")]) == 2
        assert "cannot reach daemon" in capsys.readouterr().err

    def test_cached_failures_still_fail_the_exit_code(
        self, served, tmp_path, capsys
    ):
        # An adversarial (non-equivalent) pair fails; resubmitting it hits
        # the daemon's cache, and the cached failure must still exit 1.
        bad = tmp_path / "bad"
        assert main(
            [
                "corpus", str(bad),
                "--num-lines", "3",
                "--families", "adversarial",
                "--classes", "P-I",
                "--seed", "3",
            ]
        ) == 0
        assert main(["submit", str(bad), "--seed", "5", "--wait", *served]) == 1
        assert main(["submit", str(bad), "--seed", "5", "--wait", *served]) == 1
        capsys.readouterr()
        assert main(["daemon", "status", "run-0002", *served]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["run"]["summary"]["executed"] == 0  # cached replay
        assert status["run"]["summary"]["failed"] >= 1

    def test_watch_no_replay_of_finished_run_uses_status(
        self, served, corpus, capsys
    ):
        assert main(["submit", str(corpus), "--seed", "5", "--wait", *served]) == 0
        capsys.readouterr()
        # No events arrive (the run is finished and replay is off), but a
        # clean completed run must still exit 0 via the status fallback.
        assert main(["watch", "run-0001", "--no-replay", *served]) == 0
        assert "run-0001: completed" in capsys.readouterr().out

    def test_submit_rejects_bad_pair_label(self, capsys):
        code = main(
            ["submit", "--pair", "a.real", "b.real", "BOGUS",
             "--socket", "/nonexistent.sock"]
        )
        assert code == 2
        assert "equivalence" in capsys.readouterr().err.lower()

    def test_submit_resume_requires_store(self, corpus, capsys):
        code = main(
            ["submit", str(corpus), "--resume", "--socket", "/nonexistent.sock"]
        )
        assert code == 2
        assert "--resume requires --store" in capsys.readouterr().err


class TestCacheServerCommand:
    def test_serves_until_the_documented_shutdown(self, tmp_path, capsys):
        import threading
        import time

        from repro.service import DaemonClient

        sock = tmp_path / "cache.sock"
        addr_file = tmp_path / "cache.addr"
        codes: list[int] = []
        server = threading.Thread(
            target=lambda: codes.append(
                main(
                    ["cache-server", "--socket", str(sock),
                     "--address-file", str(addr_file)]
                )
            ),
            daemon=True,
        )
        server.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline and not addr_file.exists():
            time.sleep(0.02)
        address = addr_file.read_text().strip()
        assert address == f"unix:{sock}"
        with DaemonClient.from_address(address, timeout=10.0) as client:
            ping = client.request({"op": "ping"})
            assert ping["protocol"] == "repro-cache/v1"
            client.request({"op": "put", "key": "k", "record": {"v": 1}})
            assert client.request({"op": "get", "key": "k"})["record"] == {"v": 1}
            client.request({"op": "shutdown"})
        server.join(timeout=30.0)
        assert not server.is_alive() and codes == [0]
        output = capsys.readouterr().out
        assert f"cache server listening on unix:{sock}" in output
        assert "cache server stopped" in output

    def test_rejects_nonpositive_cache_size(self, tmp_path, capsys):
        code = main(
            ["cache-server", "--socket", str(tmp_path / "c.sock"),
             "--cache-size", "0"]
        )
        assert code == 2
        assert "--cache-size must be positive" in capsys.readouterr().err


class TestRemoteCacheFlags:
    def test_run_refuses_no_cache_with_remote_cache(self, tmp_path, capsys):
        code = main(
            ["run", str(tmp_path), "--no-cache", "--remote-cache",
             "unix:cache.sock"]
        )
        assert code == 2
        assert "drop --no-cache" in capsys.readouterr().err

    def test_cache_migrate_refuses_a_remote_server(self, tmp_path, capsys):
        code = main(
            ["cache", "migrate", "--cache-dir", str(tmp_path), "--remote",
             "unix:cache.sock"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot run against a remote cache server" in err
        assert "Stop the server" in err

    def test_remote_cache_flag_is_registered_everywhere(self, tmp_path):
        parser = build_parser()
        args = parser.parse_args(["run", "m", "--remote-cache", "unix:c.sock"])
        assert args.remote_cache == "unix:c.sock"
        args = parser.parse_args(
            ["serve", "--socket", "d.sock", "--store-dir", str(tmp_path),
             "--remote-cache", "tcp:cachehost:7777"]
        )
        assert args.remote_cache == "tcp:cachehost:7777"
        args = parser.parse_args(
            ["fleet", "run", "m", "--remote-cache", "unix:c.sock"]
        )
        assert args.remote_cache == "unix:c.sock"

    def test_warm_rerun_through_a_cache_server_executes_nothing(
        self, tmp_path, capsys
    ):
        """The CLI leg of the cross-host guarantee: two `repro run`
        invocations with no shared local state — only --remote-cache —
        and the second executes zero pairs."""
        from repro.cachenet import CacheServer
        from repro.service import LRUCache

        corpus = tmp_path / "corpus"
        main(
            ["corpus", str(corpus), "--classes", "I-N", "--families",
             "random", "--seed", "1"]
        )
        server = CacheServer(LRUCache(), socket_path=tmp_path / "cache.sock")
        server.start()
        try:
            assert main(
                ["run", str(corpus), "--remote-cache", server.address]
            ) == 0
            cold = capsys.readouterr().out
            assert "1 executed" in cold
            assert server.cache.stats.stores == 1  # written through
            assert main(
                ["run", str(corpus), "--remote-cache", server.address]
            ) == 0
            warm = capsys.readouterr().out
            assert "1 cached, 0 resumed, 0 executed" in warm
            assert "0 classical + 0 quantum queries spent" in warm
        finally:
            server.stop()

    def test_run_with_a_dead_server_still_succeeds(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        main(
            ["corpus", str(corpus), "--classes", "I-N", "--families",
             "random", "--seed", "1"]
        )
        capsys.readouterr()
        code = main(
            ["run", str(corpus), "--remote-cache",
             f"unix:{tmp_path}/never-started.sock"]
        )
        assert code == 0
        assert "1 executed" in capsys.readouterr().out
