"""Unit tests for DIMACS I/O."""

from __future__ import annotations

import pytest

from repro.exceptions import ParseError
from repro.sat.cnf import CNF
from repro.sat.dimacs import cnf_to_dimacs, parse_dimacs, read_dimacs, write_dimacs
from repro.sat.generators import random_cnf

EXAMPLE = """c a small instance
p cnf 3 2
1 -2 0
2 3 0
"""


class TestParsing:
    def test_parse_example(self):
        formula = parse_dimacs(EXAMPLE)
        assert formula.num_variables == 3
        assert formula.num_clauses == 2
        assert list(formula.clauses[0]) == [1, -2]

    def test_comments_and_blank_lines_ignored(self):
        formula = parse_dimacs("c x\n\np cnf 2 1\nc y\n1 2 0\n")
        assert formula.num_clauses == 1

    def test_clause_spanning_lines(self):
        formula = parse_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert list(formula.clauses[0]) == [1, 2, 3]

    def test_missing_trailing_zero_tolerated(self):
        formula = parse_dimacs("p cnf 2 1\n1 -2\n")
        assert formula.num_clauses == 1

    def test_missing_problem_line_rejected(self):
        with pytest.raises(ParseError):
            parse_dimacs("1 2 0\n")

    def test_malformed_problem_line_rejected(self):
        with pytest.raises(ParseError):
            parse_dimacs("p sat 3 2\n1 0\n")

    def test_non_integer_literal_rejected(self):
        with pytest.raises(ParseError):
            parse_dimacs("p cnf 2 1\n1 x 0\n")

    def test_clause_count_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_dimacs("p cnf 2 2\n1 0\n")


class TestWriting:
    def test_roundtrip(self, rng):
        for _ in range(5):
            formula = random_cnf(6, 10, 3, rng)
            restored = parse_dimacs(cnf_to_dimacs(formula))
            assert restored == formula

    def test_comment_included(self):
        text = cnf_to_dimacs(CNF([[1]]), comment="hello\nworld")
        assert text.startswith("c hello\nc world\n")

    def test_file_roundtrip(self, tmp_path):
        formula = CNF([[1, -2], [2, 3]])
        path = tmp_path / "f.cnf"
        write_dimacs(formula, path, comment="test")
        assert read_dimacs(path) == formula
