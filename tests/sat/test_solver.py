"""Unit tests for the DPLL solver and model enumeration."""

from __future__ import annotations

import itertools

import pytest

from repro.sat.cnf import CNF
from repro.sat.generators import random_cnf, unsatisfiable_cnf
from repro.sat.solver import (
    count_models,
    enumerate_models,
    is_unique_sat,
    solve,
)


def brute_force_models(formula: CNF) -> list[dict[int, bool]]:
    models = []
    for bits in itertools.product([False, True], repeat=formula.num_variables):
        assignment = {index + 1: value for index, value in enumerate(bits)}
        if formula.evaluate(assignment):
            models.append(assignment)
    return models


class TestSolve:
    def test_trivially_satisfiable(self):
        result = solve(CNF([[1]]))
        assert result.satisfiable
        assert result.assignment[1] is True

    def test_empty_formula_is_satisfiable(self):
        assert solve(CNF([], num_variables=2)).satisfiable

    def test_empty_clause_is_unsatisfiable(self):
        assert not solve(CNF([[1], []])).satisfiable

    def test_simple_unsat_core(self):
        formula = CNF([[1, 2], [1, -2], [-1, 2], [-1, -2]])
        assert not solve(formula).satisfiable

    def test_model_satisfies_formula(self):
        formula = CNF([[1, -2, 3], [-1, 2], [2, -3]])
        result = solve(formula)
        assert result.satisfiable
        assert formula.evaluate(result.assignment)

    def test_model_is_total(self):
        formula = CNF([[1]], num_variables=4)
        result = solve(formula)
        assert set(result.assignment) == {1, 2, 3, 4}

    def test_agreement_with_brute_force(self, rng):
        for _ in range(25):
            formula = random_cnf(5, 12, 3, rng)
            assert solve(formula).satisfiable == bool(brute_force_models(formula))

    def test_pure_literal_toggle_agrees(self, rng):
        for _ in range(10):
            formula = random_cnf(5, 10, 3, rng)
            assert (
                solve(formula, use_pure_literal=True).satisfiable
                == solve(formula, use_pure_literal=False).satisfiable
            )

    def test_statistics_are_reported(self):
        formula = CNF([[1, 2], [-1, 2], [1, -2]])
        result = solve(formula)
        assert result.propagations >= 0
        assert result.decisions >= 0


class TestEnumeration:
    def test_enumerate_matches_brute_force(self, rng):
        for _ in range(10):
            formula = random_cnf(4, 8, 3, rng)
            expected = brute_force_models(formula)
            found = list(enumerate_models(formula))
            assert len(found) == len(expected)
            canonical = {tuple(sorted(model.items())) for model in expected}
            assert {tuple(sorted(model.items())) for model in found} == canonical

    def test_enumerate_respects_limit(self):
        formula = CNF([], num_variables=3)
        assert len(list(enumerate_models(formula, limit=3))) == 3

    def test_enumerate_rejects_bad_limit(self):
        from repro.exceptions import SatError

        with pytest.raises(SatError):
            list(enumerate_models(CNF([[1]]), limit=0))

    def test_count_models(self):
        formula = CNF([[1, 2]])
        assert count_models(formula) == 3

    def test_is_unique_sat(self):
        assert is_unique_sat(CNF([[1], [2]]))
        assert not is_unique_sat(CNF([[1, 2]]))
        assert not is_unique_sat(unsatisfiable_cnf(2))
