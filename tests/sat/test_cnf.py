"""Unit tests for CNF data structures."""

from __future__ import annotations

import pytest

from repro.exceptions import SatError
from repro.sat.cnf import CNF, Clause


class TestClause:
    def test_construction_and_iteration(self):
        clause = Clause([1, -2, 3])
        assert list(clause) == [1, -2, 3]
        assert len(clause) == 3

    def test_zero_literal_rejected(self):
        with pytest.raises(SatError):
            Clause([1, 0])

    def test_variables(self):
        assert Clause([1, -2, 3]).variables == frozenset({1, 2, 3})

    def test_empty_and_unit_flags(self):
        assert Clause([]).is_empty
        assert Clause([5]).is_unit
        assert not Clause([1, 2]).is_unit

    def test_tautology_detection(self):
        assert Clause([1, -1, 2]).is_tautology()
        assert not Clause([1, 2]).is_tautology()

    def test_evaluate(self):
        clause = Clause([1, -2])
        assert clause.evaluate({1: True, 2: True})
        assert clause.evaluate({1: False, 2: False})
        assert not clause.evaluate({1: False, 2: True})

    def test_evaluate_missing_variable(self):
        with pytest.raises(SatError):
            Clause([3]).evaluate({1: True})

    def test_str(self):
        assert str(Clause([1, -2])) == "(x1 | ~x2)"
        assert str(Clause([])) == "()"


class TestCNF:
    def test_num_variables_inferred(self):
        formula = CNF([[1, -3], [2]])
        assert formula.num_variables == 3
        assert formula.num_clauses == 2

    def test_explicit_num_variables(self):
        formula = CNF([[1]], num_variables=5)
        assert formula.num_variables == 5

    def test_explicit_num_variables_too_small(self):
        with pytest.raises(SatError):
            CNF([[1, 4]], num_variables=2)

    def test_add_clause_grows_variables(self):
        formula = CNF([[1]])
        formula.add_clause([5, -2])
        assert formula.num_variables == 5
        assert formula.num_clauses == 2

    def test_with_clauses_does_not_mutate_original(self):
        formula = CNF([[1]])
        extended = formula.with_clauses([[2]])
        assert formula.num_clauses == 1
        assert extended.num_clauses == 2

    def test_evaluate(self):
        formula = CNF([[1, 2], [-1, 2]])
        assert formula.evaluate({1: True, 2: True})
        assert not formula.evaluate({1: True, 2: False})

    def test_evaluate_vector(self):
        formula = CNF([[1, -2]])
        assert formula.evaluate_vector([True, True])
        assert not formula.evaluate_vector([False, True])

    def test_evaluate_vector_wrong_length(self):
        with pytest.raises(SatError):
            CNF([[1, 2]]).evaluate_vector([True])

    def test_variables_occurring(self):
        assert CNF([[1, -3]]).variables() == frozenset({1, 3})

    def test_equality(self):
        assert CNF([[1, 2]]) == CNF([[1, 2]])
        assert CNF([[1, 2]]) != CNF([[2, 1]])

    def test_str_of_empty_formula(self):
        assert str(CNF([])) == "TRUE"
