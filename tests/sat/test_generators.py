"""Unit tests for CNF instance generators."""

from __future__ import annotations

import pytest

from repro.exceptions import SatError
from repro.sat.generators import planted_unique_sat, random_cnf, unsatisfiable_cnf
from repro.sat.solver import count_models, is_unique_sat, solve


class TestRandomCnf:
    def test_shape(self, rng):
        formula = random_cnf(6, 14, 3, rng)
        assert formula.num_variables == 6
        assert formula.num_clauses == 14
        assert all(len(clause) == 3 for clause in formula)

    def test_clause_size_cannot_exceed_variables(self):
        with pytest.raises(SatError):
            random_cnf(2, 3, clause_size=4)

    def test_seeded_generation_is_reproducible(self):
        assert random_cnf(5, 8, rng=11) == random_cnf(5, 8, rng=11)


class TestPlantedUniqueSat:
    def test_planted_model_is_unique(self, rng):
        for _ in range(5):
            formula, model = planted_unique_sat(5, 8, rng=rng)
            assert formula.evaluate(model)
            assert is_unique_sat(formula)

    def test_solver_recovers_planted_model(self, rng):
        formula, model = planted_unique_sat(6, 10, rng=rng)
        result = solve(formula)
        assert result.satisfiable
        assert result.assignment == model

    def test_reproducible_with_seed(self):
        first = planted_unique_sat(4, 6, rng=3)
        second = planted_unique_sat(4, 6, rng=3)
        assert first[0] == second[0]
        assert first[1] == second[1]


class TestUnsatisfiableCnf:
    def test_is_unsatisfiable(self, rng):
        for padding in (0, 4):
            formula = unsatisfiable_cnf(4, padding, rng=rng)
            assert count_models(formula, limit=1) == 0

    def test_needs_two_variables(self):
        with pytest.raises(SatError):
            unsatisfiable_cnf(1)
