"""Unit tests for the Valiant–Vazirani isolation reduction."""

from __future__ import annotations

import pytest

from repro.exceptions import SatError
from repro.sat.cnf import CNF
from repro.sat.generators import unsatisfiable_cnf
from repro.sat.solver import count_models, solve
from repro.sat.valiant_vazirani import (
    add_random_xor_constraint,
    isolate_unique_solution,
)


class TestXorConstraint:
    def test_adds_clauses_and_possibly_variables(self, rng):
        formula = CNF([[1, 2], [-1, 3]])
        constrained = add_random_xor_constraint(formula, rng)
        assert constrained.num_clauses >= formula.num_clauses
        assert constrained.num_variables >= formula.num_variables

    def test_models_project_to_original_models(self, rng):
        formula = CNF([[1, 2]])
        constrained = add_random_xor_constraint(formula, rng)
        result = solve(constrained)
        if result.satisfiable:
            projection = {v: result.assignment[v] for v in (1, 2)}
            assert formula.evaluate(projection)


class TestIsolation:
    def test_isolated_formula_has_one_model(self, rng):
        formula = CNF([[1, 2, 3], [-1, 2], [1, -3]])
        assert count_models(formula, limit=3) > 1
        isolated = isolate_unique_solution(formula, rng)
        assert count_models(isolated, limit=2) == 1

    def test_isolated_model_satisfies_original(self, rng):
        formula = CNF([[1, 2, 3]])
        isolated = isolate_unique_solution(formula, rng)
        model = solve(isolated).assignment
        projection = {v: model[v] for v in range(1, formula.num_variables + 1)}
        assert formula.evaluate(projection)

    def test_already_unique_formula_returned_unchanged(self, rng):
        formula = CNF([[1], [2]])
        assert isolate_unique_solution(formula, rng) is formula

    def test_unsatisfiable_input_rejected(self, rng):
        with pytest.raises(SatError):
            isolate_unique_solution(unsatisfiable_cnf(3), rng)
