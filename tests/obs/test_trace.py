"""Unit tests for the span tracer (`repro.obs.trace`).

The contracts under test: spans get sequential ids and record their
parent, the JSONL line schema is stable and sorted, `record` logs
already-measured durations verbatim, `end` is idempotent, and the null
tracer shares the API while writing nothing.
"""

from __future__ import annotations

import json

from repro.obs.trace import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer


def _spans(path) -> list[dict]:
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestTracer:
    def test_span_lines_have_the_documented_schema(self, tmp_path):
        log = tmp_path / "trace.jsonl"
        tracer = Tracer(log)
        with tracer.span("pair", pair_id="p-0"):
            pass
        tracer.close()
        (line,) = _spans(log)
        assert list(line) == sorted(line)  # sort_keys on the wire
        assert set(line) == {
            "span_id", "parent_id", "name", "start_s", "duration_s", "attrs",
        }
        assert line["name"] == "pair"
        assert line["parent_id"] is None
        assert line["attrs"] == {"pair_id": "p-0"}
        assert line["start_s"] >= 0.0 and line["duration_s"] >= 0.0

    def test_sequential_ids_and_parent_linkage(self, tmp_path):
        log = tmp_path / "trace.jsonl"
        tracer = Tracer(log)
        with tracer.span("pair") as pair:
            with tracer.span("fingerprint", parent=pair):
                pass
            with tracer.span("cache_probe", parent=pair):
                pass
        tracer.close()
        by_name = {line["name"]: line for line in _spans(log)}
        assert by_name["pair"]["span_id"] == 1
        assert by_name["fingerprint"]["span_id"] == 2
        assert by_name["cache_probe"]["span_id"] == 3
        # Children close before the parent, but all link back to it.
        assert by_name["fingerprint"]["parent_id"] == 1
        assert by_name["cache_probe"]["parent_id"] == 1
        # A raw span_id works as `parent` too (cross-thread handoff).
        tracer2 = Tracer(tmp_path / "second.jsonl")
        with tracer2.span("child", parent=7):
            pass
        tracer2.close()
        (line,) = _spans(tmp_path / "second.jsonl")
        assert line["parent_id"] == 7

    def test_record_logs_a_premeasured_duration_verbatim(self, tmp_path):
        log = tmp_path / "trace.jsonl"
        tracer = Tracer(log)
        with tracer.span("pair") as pair:
            tracer.record("match", 1.25, parent=pair, matcher="i-i/trivial")
        tracer.close()
        match = [l for l in _spans(log) if l["name"] == "match"][0]
        assert match["duration_s"] == 1.25  # not re-measured
        assert match["parent_id"] == pair.span_id
        assert match["attrs"] == {"matcher": "i-i/trivial"}

    def test_end_is_idempotent(self, tmp_path):
        log = tmp_path / "trace.jsonl"
        tracer = Tracer(log)
        span = tracer.start("pair")
        span.end()
        first_duration = span.duration_s
        span.end()  # second end must not write a second line
        tracer.close()
        assert len(_spans(log)) == 1
        assert span.duration_s == first_duration

    def test_no_file_until_first_span(self, tmp_path):
        log = tmp_path / "nested" / "trace.jsonl"
        tracer = Tracer(log)
        assert not log.exists()
        with tracer.span("pair"):
            pass
        tracer.close()
        assert log.exists()  # parents were created lazily
        tracer.close()  # close is idempotent too

    def test_monotonic_start_offsets(self, tmp_path):
        log = tmp_path / "trace.jsonl"
        tracer = Tracer(log)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        tracer.close()
        starts = {line["name"]: line["start_s"] for line in _spans(log)}
        assert 0.0 <= starts["first"] <= starts["second"]


class TestNullTracer:
    def test_same_api_writes_nothing(self, tmp_path):
        tracer = NullTracer()
        with tracer.span("pair", pair_id="p") as span:
            assert span is NULL_SPAN
        assert tracer.start("x") is NULL_SPAN
        assert tracer.record("match", 0.5) is NULL_SPAN
        tracer.close()
        NULL_SPAN.end()  # a no-op, never raises
        assert isinstance(NULL_SPAN, Span)
        assert list(tmp_path.iterdir()) == []

    def test_shared_instance_exists(self):
        assert isinstance(NULL_TRACER, NullTracer)
