"""Unit tests for the metrics substrate (`repro.obs.metrics`).

The contracts under test: the metric name catalogue is closed (typos
raise, kinds are enforced), counters are monotone, histograms expose
cumulative buckets, and both export forms — the `repro-metrics/v1` JSON
snapshot and the Prometheus-style text exposition — are deterministic
(every key and label set sorted).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRIC_CATALOG,
    METRICS_FORMAT,
    MetricsRegistry,
)


class TestCatalogue:
    def test_unknown_name_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="unknown metric"):
            registry.counter("repro_cache_hit_total")  # typo: no 's'
        with pytest.raises(ValueError, match="unknown metric"):
            registry.gauge("made_up_name")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="catalogued as a histogram"):
            registry.counter("repro_run_seconds")
        with pytest.raises(ValueError, match="catalogued as a counter"):
            registry.gauge("repro_cache_hits_total")

    def test_every_catalogued_name_is_constructible(self):
        registry = MetricsRegistry()
        accessor = {
            "counter": registry.counter,
            "gauge": registry.gauge,
            "histogram": registry.histogram,
        }
        for name, spec in METRIC_CATALOG.items():
            metric = accessor[spec["type"]](name)
            assert metric.kind == spec["type"]
            assert metric.help == spec["help"]

    def test_same_name_returns_the_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_runs_total")
        first.inc()
        assert registry.counter("repro_runs_total") is first


class TestCounter:
    def test_inc_accumulates_per_label_set(self):
        counter = MetricsRegistry().counter("repro_cache_hits_total")
        counter.inc(tier="memory")
        counter.inc(2, tier="memory")
        counter.inc(5, tier="disk")
        assert counter.value(tier="memory") == 3
        assert counter.value(tier="disk") == 5
        assert counter.value(tier="absent") == 0
        assert counter.total() == 8

    def test_negative_increment_raises(self):
        counter = MetricsRegistry().counter("repro_runs_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_thread_safety_under_contention(self):
        counter = MetricsRegistry().counter("repro_runs_total")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 4000


class TestGauge:
    def test_set_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("repro_store_torn_lines")
        gauge.set(3)
        assert gauge.value() == 3
        gauge.set(0)
        assert gauge.value() == 0


class TestHistogram:
    def test_cumulative_buckets_and_inf(self):
        histogram = MetricsRegistry().histogram("repro_run_seconds")
        assert histogram.buckets == DEFAULT_BUCKETS
        histogram.observe(0.0005)   # below the first bound
        histogram.observe(0.3)      # lands in the 0.5 bucket
        histogram.observe(99.0)     # above every bound: +Inf only
        (sample,) = histogram.snapshot_samples()
        buckets = sample["buckets"]
        assert buckets["0.001"] == 1
        assert buckets["0.25"] == 1
        assert buckets["0.5"] == 2
        assert buckets["10"] == 2       # 99.0 overflows every bound
        assert buckets["+Inf"] == sample["count"] == 3
        assert sample["sum"] == pytest.approx(99.3005)
        assert histogram.count() == 3

    def test_integral_bounds_drop_the_point_zero(self):
        histogram = MetricsRegistry().histogram("repro_task_seconds")
        histogram.observe(0.1)
        (sample,) = histogram.snapshot_samples()
        assert "1" in sample["buckets"] and "1.0" not in sample["buckets"]
        assert "2.5" in sample["buckets"]


class TestSnapshot:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("repro_cache_hits_total").inc(3, tier="memory")
        registry.counter("repro_cache_hits_total").inc(1, tier="disk")
        registry.gauge("repro_store_torn_lines").set(2)
        registry.histogram("repro_run_seconds").observe(0.004)
        return registry

    def test_format_and_sorted_keys(self):
        snapshot = self._populated().snapshot()
        assert snapshot["format"] == METRICS_FORMAT
        names = list(snapshot["metrics"])
        assert names == sorted(names)
        hits = snapshot["metrics"]["repro_cache_hits_total"]
        assert hits["type"] == "counter"
        # Label sets in sorted order: disk before memory.
        assert hits["samples"] == [
            {"labels": {"tier": "disk"}, "value": 1},
            {"labels": {"tier": "memory"}, "value": 3},
        ]

    def test_two_identical_registries_serialise_identically(self):
        first = json.dumps(self._populated().snapshot(), sort_keys=True)
        second = json.dumps(self._populated().snapshot(), sort_keys=True)
        assert first == second

    def test_prometheus_exposition(self):
        text = self._populated().to_prometheus()
        lines = text.splitlines()
        assert "# HELP repro_cache_hits_total " + (
            METRIC_CATALOG["repro_cache_hits_total"]["help"]
        ) in lines
        assert "# TYPE repro_cache_hits_total counter" in lines
        assert 'repro_cache_hits_total{tier="disk"} 1' in lines
        assert 'repro_cache_hits_total{tier="memory"} 3' in lines
        assert "# TYPE repro_store_torn_lines gauge" in lines
        assert 'repro_run_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_run_seconds_count 1" in lines
        assert text.endswith("\n")

    def test_empty_registry_exposition_is_empty(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_write_json_publishes_snapshot(self, tmp_path):
        registry = self._populated()
        target = tmp_path / "metrics.json"
        registry.write_json(target)
        payload = json.loads(target.read_text())
        assert payload == json.loads(
            json.dumps(registry.snapshot(), sort_keys=True)
        )
        # No tmp-file debris from the atomic publish.
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.json"]
