"""Unit tests for the cross-run report scanner (`repro.obs.report`).

The contracts under test: `summarize_store` tells run stores apart from
event logs, span logs and garbage; records deduplicate per ``pair_id``
exactly like store resume; the meta sidecar contributes wall clock and
executor; `scan_results` is incremental via the `(mtime_ns, size)` cache;
and rendering covers the per-run, composition and cross-run trend tables.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ServiceError
from repro.obs.report import (
    CACHE_FILENAME,
    REPORT_FORMAT,
    RunSummary,
    render_report,
    report_to_json,
    scan_results,
    summarize_store,
)


def _write_store(path, records):
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(
                (record if isinstance(record, str) else json.dumps(record))
                + "\n"
            )


def _record(pair_id, status="ok", **extra):
    record = {"pair_id": pair_id, "status": status, "equivalence": "I-I"}
    if status == "ok":
        record["result"] = {"queries": 4, "quantum_queries": 1}
    record.update(extra)
    return record


class TestSummarizeStore:
    def test_counts_statuses_classes_and_queries(self, tmp_path):
        store = tmp_path / "run.jsonl"
        _write_store(store, [
            _record("a"),
            _record("b", status="failed"),
            _record("c", status="cached",
                    cache_key="pair:v2:exact:v1:x|exact:v1:y|I-I|d"),
            _record("d", status="cached", cache_key=None),
        ])
        summary = summarize_store(store)
        assert summary.pairs == 4
        assert summary.statuses == {"ok": 1, "failed": 1, "cached": 2}
        assert summary.classes == {"I-I": 4}
        assert summary.queries == 4 and summary.quantum_queries == 1
        assert summary.cache_hits == 2 and summary.hit_rate == 0.5
        # One hit keyed by an exact fingerprint, one with no key at all.
        assert summary.scheme_hits.get("unkeyed") == 1
        assert sum(summary.scheme_hits.values()) == 2

    def test_dedupes_by_pair_id_latest_wins(self, tmp_path):
        store = tmp_path / "run.jsonl"
        _write_store(store, [
            _record("a", status="failed"),
            _record("a", status="ok"),  # the re-run after a resume
        ])
        summary = summarize_store(store)
        assert summary.pairs == 1
        assert summary.statuses == {"ok": 1}

    def test_torn_lines_counted_not_fatal(self, tmp_path):
        store = tmp_path / "run.jsonl"
        _write_store(store, [
            _record("a"),
            '{"pair_id": "b", "status": "ok", "trunc',  # torn mid-append
            "",
        ])
        summary = summarize_store(store)
        assert summary.pairs == 1 and summary.torn_lines == 1

    def test_rejects_event_logs_span_logs_and_garbage(self, tmp_path):
        events = tmp_path / "events.jsonl"
        _write_store(events, [{"event": "RunStarted", "total": 2}])
        spans = tmp_path / "trace.jsonl"
        _write_store(spans, [{"span_id": 1, "parent_id": None, "name": "p"}])
        lists = tmp_path / "lists.jsonl"
        _write_store(lists, ["[1, 2, 3]"])
        keyless = tmp_path / "keyless.jsonl"
        _write_store(keyless, [{"pair_id": "a"}])  # no status key
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        for path in (events, spans, lists, keyless, empty):
            assert summarize_store(path) is None
        assert summarize_store(tmp_path / "absent.jsonl") is None

    def test_meta_sidecar_contributes_elapsed_and_executor(self, tmp_path):
        store = tmp_path / "run.jsonl"
        _write_store(store, [_record("a")])
        sidecar = tmp_path / "run.jsonl.meta.json"
        sidecar.write_text(json.dumps({
            "format": "repro-run-meta/v1",
            "elapsed": 1.5,
            "executor": "overlap[serial]",
        }))
        summary = summarize_store(store)
        assert summary.elapsed == 1.5
        assert summary.executor == "overlap[serial]"
        # A corrupt sidecar degrades to "no sidecar", never to a crash.
        sidecar.write_text("{corrupt")
        summary = summarize_store(store)
        assert summary.elapsed is None and summary.executor is None

    def test_round_trips_through_as_dict(self, tmp_path):
        store = tmp_path / "run.jsonl"
        _write_store(store, [_record("a"), _record("b", status="failed")])
        summary = summarize_store(store)
        assert RunSummary.from_dict(summary.as_dict()) == summary


class TestScanResults:
    def _tree(self, tmp_path):
        _write_store(tmp_path / "runs" / "a.jsonl", [_record("a")])
        _write_store(
            tmp_path / "runs" / "b.jsonl",
            [_record("a", status="cached", cache_key=None), _record("b")],
        )
        _write_store(tmp_path / "events.jsonl",
                     [{"event": "RunStarted", "total": 1}])
        return tmp_path

    def test_finds_stores_sorted_and_skips_non_stores(self, tmp_path):
        summaries = scan_results(self._tree(tmp_path))
        assert [s.name for s in summaries] == ["runs/a.jsonl", "runs/b.jsonl"]

    def test_rejects_non_directories(self, tmp_path):
        with pytest.raises(ServiceError, match="not a results directory"):
            scan_results(tmp_path / "absent")

    def test_cache_reused_until_store_changes(self, tmp_path):
        root = self._tree(tmp_path)
        first = scan_results(root)
        cache_path = root / CACHE_FILENAME
        cached = json.loads(cache_path.read_text())
        assert cached["format"] == REPORT_FORMAT
        assert set(cached["entries"]) == {
            "runs/a.jsonl", "runs/b.jsonl", "events.jsonl",
        }
        assert cached["entries"]["events.jsonl"]["summary"] is None

        # Poison the cached summary: an unchanged store must come back
        # from the cache (proving reuse), a touched one must be re-read.
        cached["entries"]["runs/a.jsonl"]["summary"]["pairs"] = 99
        cache_path.write_text(json.dumps(cached))
        reused = scan_results(root)
        assert [s.pairs for s in reused] == [99, 2]

        store_b = root / "runs" / "b.jsonl"
        _write_store(store_b, [_record("only")])
        rescanned = {s.name: s for s in scan_results(root)}
        assert rescanned["runs/b.jsonl"].pairs == 1
        assert rescanned["runs/a.jsonl"].pairs == 99  # still from cache
        assert scan_results(root, use_cache=False)[0].pairs == first[0].pairs

    def test_no_cache_file_written_when_disabled(self, tmp_path):
        root = self._tree(tmp_path)
        scan_results(root, use_cache=False)
        assert not (root / CACHE_FILENAME).exists()


class TestRendering:
    def _summaries(self):
        return [
            RunSummary(name="cold.jsonl", pairs=4,
                       statuses={"ok": 4}, classes={"I-I": 4},
                       queries=40, quantum_queries=8, elapsed=2.0,
                       executor="serial"),
            RunSummary(name="warm.jsonl", pairs=4,
                       statuses={"cached": 4}, classes={"I-I": 4},
                       scheme_hits={"probe": 4}, elapsed=0.1,
                       executor="serial"),
        ]

    def test_empty_tree_message(self):
        assert render_report([]) == "no result stores found"

    def test_tables_and_trend(self):
        text = render_report(self._summaries())
        assert "result stores" in text
        assert "composition" in text
        assert "cross-run trend" in text
        assert "probe=4" in text
        assert "+100.0%" in text  # warm hit-rate delta over cold
        assert "-40" in text      # warm query delta over cold
        assert text.splitlines()[-1].startswith("total: 2 runs, 8 pairs")

    def test_single_run_has_no_trend_table(self):
        text = render_report(self._summaries()[:1])
        assert "cross-run trend" not in text

    def test_json_document(self):
        payload = report_to_json(self._summaries())
        assert payload["format"] == REPORT_FORMAT
        assert [run["name"] for run in payload["runs"]] == [
            "cold.jsonl", "warm.jsonl",
        ]
        totals = payload["totals"]
        assert totals == {
            "runs": 2, "pairs": 8, "cache_hits": 4, "hit_rate": 0.5,
            "queries": 40, "quantum_queries": 8, "torn_lines": 0,
        }
        json.dumps(payload)  # JSON-serialisable end to end
