"""The documentation gate, in tier-1: docs must run, parse and link.

Wraps ``scripts/check_docs.py`` (the same entry point the CI docs job
uses) so a PR that breaks a documented snippet or a cross-reference
fails the ordinary test suite, not just the docs job.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", ROOT / "scripts" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRepositoryDocs:
    def test_docs_directory_is_complete(self):
        for name in ("architecture.md", "cache-keys.md", "events.md",
                     "lint.md", "protocol.md"):
            assert (ROOT / "docs" / name).exists(), f"docs/{name} is missing"

    def test_all_docs_pass_the_checker(self, check_docs, capsys):
        code = check_docs.main([])
        captured = capsys.readouterr()
        assert code == 0, f"docs check failed:\n{captured.err}"


class TestCheckerCatchesProblems:
    """The checker itself must detect what it claims to detect."""

    def test_broken_python_fence(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```python\nraise RuntimeError('boom')\n```\n")
        errors = check_docs.check_file(page)
        assert any("python fence failed" in error for error in errors)

    def test_skip_marker_is_honoured(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text(
            "<!-- docs-check: skip -->\n"
            "```python\nraise RuntimeError('boom')\n```\n"
        )
        assert check_docs.check_file(page) == []

    def test_broken_json_fence(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("```json\n{not json}\n```\n")
        errors = check_docs.check_file(page)
        assert any("json fence" in error for error in errors)

    def test_broken_relative_link(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text("see [other](missing.md) and [web](https://x.invalid)\n")
        errors = check_docs.check_file(page)
        assert len(errors) == 1 and "broken link" in errors[0]

    def test_malformed_protocol_fence(self, check_docs, tmp_path):
        page = tmp_path / "page.md"
        page.write_text('```protocol\nC: {"op": "ping"}\nS: not json\n```\n')
        errors = check_docs.check_file(page)
        assert any("server frame" in error for error in errors)
