"""The headline cross-host scenario: two daemons, one cache server.

Daemon A runs a corpus cold and publishes every result through its
remote tier; daemon B — a different "host" with its own local cache —
runs the same corpus and must answer **every pair from the shared pool,
executing nothing**.  The cross-host hit rate is written to a JSON
artifact (``cross-host-hit-rate.json``) the CI ``cachenet`` job uploads
and gates on.

The flip side is exercised too: a cache server killed mid-stream must
degrade the tier to local-only (``repro_cachenet_errors`` counts the
failure) and never fail the run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.cachenet import CacheServer
from repro.circuits.library import hidden_weighted_bit
from repro.circuits.transforms import apply_input_negation
from repro.core.engine import MatchingConfig
from repro.core.equivalence import EquivalenceType
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    DaemonClient,
    LRUCache,
    MatchingDaemon,
    MatchingService,
    build_cache,
    generate_corpus,
)

TIMEOUT = 60.0
SEED = 7
CLASSES = (EquivalenceType.I_I, EquivalenceType.N_I)
PAIRS = 8  # 2 classes x 4 pairs

#: Where the headline test writes its hit-rate artifact; the CI job
#: points this at the workspace so the JSON can be uploaded and gated.
ARTIFACT_ENV = "CROSS_HOST_HIT_RATE_FILE"


def make_corpus(path):
    return generate_corpus(
        path,
        num_lines=3,
        classes=CLASSES,
        families=("random",),
        pairs_per_class=PAIRS // len(CLASSES),
        seed=SEED,
    )


def start_daemon(tmp_path, name: str, remote_cache: str) -> MatchingDaemon:
    daemon = MatchingDaemon(
        store_dir=tmp_path / f"daemon-{name}",
        socket_path=tmp_path / f"{name}.sock",
        remote_cache=remote_cache,
    )
    daemon.start()
    return daemon


def finished_run(client: DaemonClient, run_id: str) -> dict:
    deadline = time.monotonic() + TIMEOUT
    while time.monotonic() < deadline:
        run = client.status(run_id)["run"]
        if run["state"] in ("completed", "failed", "cancelled"):
            assert run["state"] == "completed", run
            return run
        time.sleep(0.05)
    raise AssertionError(f"run {run_id} never finished")


def outcome_total(snapshot: dict, outcome: str) -> int:
    metric = snapshot["metrics"].get("repro_run_pairs_total")
    if metric is None:
        return 0
    return sum(
        sample["value"]
        for sample in metric["samples"]
        if sample["labels"].get("outcome") == outcome
    )


class TestTwoDaemonsOneServer:
    def test_warm_cross_host_rerun_spends_zero_oracle_queries(self, tmp_path):
        corpus = tmp_path / "corpus"
        manifest = make_corpus(corpus)
        assert len(manifest.entries) == PAIRS

        server = CacheServer(LRUCache(), socket_path=tmp_path / "cache.sock")
        server.start()
        daemons = []
        try:
            daemon_a = start_daemon(tmp_path, "a", server.address)
            daemon_b = start_daemon(tmp_path, "b", server.address)
            daemons = [daemon_a, daemon_b]

            # --- host A: the cold run fills the shared pool -----------
            with DaemonClient.from_address(daemon_a.address, timeout=10.0) as a:
                run_id = a.submit(manifest=str(corpus), seed=SEED)["run_id"]
                cold = finished_run(a, run_id)["summary"]
            assert cold["total"] == PAIRS
            assert cold["executed"] == PAIRS and cold["cache_hits"] == 0
            assert server.cache.stats.stores == PAIRS  # written through

            # --- host B: the warm run executes nothing ----------------
            with DaemonClient.from_address(daemon_b.address, timeout=10.0) as b:
                run_id = b.submit(manifest=str(corpus), seed=SEED)["run_id"]
                warm = finished_run(b, run_id)["summary"]
                snapshot = b.metrics()["metrics"]
            assert warm["total"] == PAIRS
            assert warm["cache_hits"] == PAIRS
            assert warm["executed"] == 0 and warm["resumed"] == 0

            # Zero oracle queries, from B's own metrics: every pair
            # settled as a cache hit, none reached the executor.
            assert outcome_total(snapshot, "cached") == PAIRS
            assert outcome_total(snapshot, "completed") == 0
            assert outcome_total(snapshot, "failed") == 0
            # ...and the pool was consulted over the wire, batched.
            requests = snapshot["metrics"]["repro_cachenet_requests_total"]
            get_many = sum(
                sample["value"]
                for sample in requests["samples"]
                if sample["labels"].get("op") == "get_many"
            )
            assert get_many >= 1

            # --- the shared pool's own books reconcile ----------------
            # A's prefetch missed all 8, B's prefetch hit all 8, A's
            # write-through stored all 8 — batching notwithstanding.
            stats = server.cache.stats
            assert stats.hits == PAIRS
            assert stats.misses == PAIRS
            assert stats.stores == PAIRS
            assert len(server.cache) == PAIRS

            hit_rate = warm["cache_hits"] / warm["total"]
            assert hit_rate == 1.0
            artifact = Path(
                os.environ.get(
                    ARTIFACT_ENV, tmp_path / "cross-host-hit-rate.json"
                )
            )
            artifact.write_text(
                json.dumps(
                    {
                        "pairs": PAIRS,
                        "cold": {
                            "executed": cold["executed"],
                            "cache_hits": cold["cache_hits"],
                        },
                        "warm": {
                            "executed": warm["executed"],
                            "cache_hits": warm["cache_hits"],
                        },
                        "cross_host_hit_rate": hit_rate,
                        "server": {
                            **stats.as_dict(),
                            "size": len(server.cache),
                        },
                    },
                    indent=2,
                )
                + "\n",
                encoding="utf-8",
            )
        finally:
            for daemon in daemons:
                try:
                    daemon.stop()
                except Exception:  # noqa: BLE001 - teardown best effort
                    pass
            server.stop()


class TestServerKilledMidStream:
    def pairs(self):
        base = hidden_weighted_bit(3)
        return [
            (apply_input_negation(base, [bool(i & 1), bool(i & 2), False]), base)
            for i in range(3)
        ]

    def test_run_completes_on_local_tiers_alone(self, tmp_path):
        server = CacheServer(LRUCache(), socket_path=tmp_path / "cache.sock")
        server.start()
        cache = build_cache(memory_size=64, remote=server.address)
        remote = cache.slow
        metrics = MetricsRegistry()
        cache.bind_metrics(metrics)
        try:
            # The tier is demonstrably live before the kill...
            assert remote.get("probe") is None
            assert remote.errors == 0
            server.stop()

            # ...and demonstrably dead during the run — which completes.
            service = MatchingService(MatchingConfig(), cache=cache)
            report = service.match_pairs(self.pairs(), equivalence="N-I", seed=SEED)
            assert report.total == 3 and report.executed == 3
            assert remote.degraded is True
            assert remote.errors > 0
            assert metrics.counter("repro_cachenet_errors").total() > 0
            assert metrics.counter("repro_cachenet_reconnects_total").total() == 1

            # The local tiers still serve: a rerun is warm, still with no
            # server anywhere in sight.
            warm = service.match_pairs(self.pairs(), equivalence="N-I", seed=SEED)
            assert warm.cache_hits == 3 and warm.executed == 0
        finally:
            remote.close()
            server.stop()

    def test_daemon_pointed_at_a_dead_server_still_serves(self, tmp_path):
        corpus = tmp_path / "corpus"
        make_corpus(corpus)
        daemon = start_daemon(
            tmp_path, "lone", f"unix:{tmp_path}/never-started.sock"
        )
        try:
            with DaemonClient.from_address(daemon.address, timeout=10.0) as client:
                run_id = client.submit(manifest=str(corpus), seed=SEED)["run_id"]
                summary = finished_run(client, run_id)["summary"]
                snapshot = client.metrics()["metrics"]
            assert summary["executed"] == PAIRS
            errors = snapshot["metrics"]["repro_cachenet_errors"]
            assert sum(sample["value"] for sample in errors["samples"]) > 0
        finally:
            daemon.stop()
