"""docs/remote-cache.md is executable: its example session replays
verbatim against a real cache server, so the documented ``repro-cache/v1``
wire protocol cannot drift from the implementation.

Matching is structural, per the convention stated in the document:
documented keys must exist with the documented values, ``…`` is a
wildcard (prefix wildcard at the end of a string), and the
machine-specific keys (``pid``, ``uptime``) are present-but-not-compared.
"""

from __future__ import annotations

import json
import re
import socket
from pathlib import Path

from repro.cachenet import CacheServer
from repro.service import LRUCache

DOC = Path(__file__).resolve().parents[2] / "docs" / "remote-cache.md"

WILDCARD = "…"  # …

#: Keys whose values are inherently machine- or timing-specific; the
#: doc shows a representative value, the test only checks presence.
VOLATILE = {"pid", "uptime"}

#: The token the documented session authenticates with.
AUTH_TOKEN = "open-sesame"


def parse_session(text: str) -> list[tuple[str, str]]:
    """Extract the ``C:``/``S:`` lines of every ```protocol fence."""
    steps: list[tuple[str, str]] = []
    for block in re.findall(r"```protocol\n(.*?)```", text, re.S):
        for line in block.splitlines():
            line = line.strip()
            if line.startswith("C: "):
                steps.append(("C", line[3:]))
            elif line.startswith("S: "):
                steps.append(("S", line[3:]))
            elif line:
                raise AssertionError(f"unparseable protocol line: {line!r}")
    return steps


def assert_matches(documented, actual, where="$") -> None:
    if isinstance(documented, str):
        if documented == WILDCARD:
            return
        if documented.endswith(WILDCARD):
            prefix = documented[:-1]
            assert isinstance(actual, str) and actual.startswith(prefix), (
                f"{where}: {actual!r} does not start with {prefix!r}"
            )
            return
        assert actual == documented, f"{where}: {actual!r} != {documented!r}"
    elif isinstance(documented, dict):
        assert isinstance(actual, dict), f"{where}: expected an object"
        for key, value in documented.items():
            assert key in actual, f"{where}.{key}: documented but absent"
            if key in VOLATILE:
                continue
            assert_matches(value, actual[key], f"{where}.{key}")
    elif isinstance(documented, list):
        assert isinstance(actual, list) and len(actual) == len(documented), (
            f"{where}: expected a {len(documented)}-element array"
        )
        for index, (doc_item, actual_item) in enumerate(zip(documented, actual)):
            assert_matches(doc_item, actual_item, f"{where}[{index}]")
    else:
        assert actual == documented, f"{where}: {actual!r} != {documented!r}"


class TestRemoteCacheDocument:
    def test_every_op_is_documented(self):
        text = DOC.read_text(encoding="utf-8")
        for op in ("ping", "auth", "get", "put", "get_many", "stats",
                   "shutdown"):
            assert f"`{op}`" in text, f"op {op} missing from remote-cache.md"
        assert "repro-cache/v1" in text

    def test_documented_session_replays_against_a_live_server(self, tmp_path):
        steps = parse_session(DOC.read_text(encoding="utf-8"))
        assert steps, "remote-cache.md lost its validated session"

        server = CacheServer(
            LRUCache(),
            socket_path=tmp_path / "cache.sock",
            auth_token=AUTH_TOKEN,
        )
        server.start()
        try:
            connection = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            connection.settimeout(30.0)
            connection.connect(str(tmp_path / "cache.sock"))
            reader = connection.makefile("r", encoding="utf-8")
            try:
                for kind, payload in steps:
                    if kind == "C":
                        # The documented malformed frame is sent verbatim;
                        # everything else is re-serialised JSON.
                        try:
                            wire = json.dumps(json.loads(payload))
                        except json.JSONDecodeError:
                            wire = payload
                        connection.sendall((wire + "\n").encode("utf-8"))
                    else:
                        documented = json.loads(payload)
                        line = reader.readline()
                        assert line, f"server hung up before: {payload}"
                        assert_matches(documented, json.loads(line))
            finally:
                connection.close()
            server.serve_forever()  # returns once the documented shutdown lands
        finally:
            server.stop()
