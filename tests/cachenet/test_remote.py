"""RemoteCache unit tests: write-through, negative set, prefetch and
graceful degradation.

Every test runs against a real :class:`CacheServer` on a Unix socket —
the tier's contract is about wire behaviour, so mocking the wire would
test nothing.  The backing cache's own :class:`CacheStats` double as a
wiretap: a lookup that reached the server is visible as a server-side
hit or miss, one answered locally is not.
"""

from __future__ import annotations

import pytest

import repro.cachenet.remote as remote_module
from repro.cachenet import CacheServer, RemoteCache
from repro.exceptions import DaemonError
from repro.obs.metrics import MetricsRegistry
from repro.service import LRUCache, TieredCache, build_cache


@pytest.fixture
def server(tmp_path):
    server = CacheServer(LRUCache(), socket_path=tmp_path / "cache.sock")
    server.start()
    yield server
    server.stop()


@pytest.fixture
def remote(server):
    remote = RemoteCache.from_address(server.address)
    yield remote
    remote.close()


class TestConstruction:
    def test_from_address_rejects_garbage(self):
        with pytest.raises(DaemonError):
            RemoteCache.from_address("carrier-pigeon:coop-7")

    def test_negative_limit_must_be_positive(self, server):
        with pytest.raises(ValueError, match="negative_limit"):
            RemoteCache.from_address(server.address, negative_limit=0)

    def test_unreachable_server_constructs_fine(self, tmp_path):
        # Reachability is lazy: construction must not touch the network.
        remote = RemoteCache.from_address(f"unix:{tmp_path}/nowhere.sock")
        assert remote.degraded is False
        assert remote.get("k") is None  # degrades on first use
        assert remote.degraded is True

    def test_address_and_tier_label(self, server, remote):
        assert remote.address == server.address
        assert remote.metrics_tier == "remote"


class TestReadWrite:
    def test_write_through_and_read_back(self, server, remote):
        remote.put("k1", {"pair_id": "p"})
        assert server.cache.get("k1") == {"pair_id": "p"}
        assert remote.get("k1") == {"pair_id": "p"}
        assert remote.stats.hits == 1 and remote.stats.stores == 1

    def test_remote_sees_other_writers(self, server, remote):
        server.cache.put("k2", {"v": 2})
        assert remote.get("k2") == {"v": 2}

    def test_negative_set_answers_repeat_misses_locally(self, server, remote):
        assert remote.get("k") is None
        server_misses = server.cache.stats.misses
        assert remote.get("k") is None  # remembered: no round trip
        assert server.cache.stats.misses == server_misses
        assert remote.stats.misses == 2  # both count locally, though

    def test_put_clears_the_negative_entry(self, server, remote):
        assert remote.get("k") is None
        remote.put("k", {"v": 1})
        assert remote.get("k") == {"v": 1}

    def test_negative_set_is_bounded(self, server):
        remote = RemoteCache.from_address(server.address, negative_limit=2)
        try:
            for key in ("a", "b", "c"):
                assert remote.get(key) is None
            before = server.cache.stats.misses
            assert remote.get("a") is None  # aged out: asks the server again
            assert server.cache.stats.misses == before + 1
            assert remote.get("c") is None  # still remembered
            assert server.cache.stats.misses == before + 1
        finally:
            remote.close()

    def test_len_is_the_server_entry_count(self, server, remote):
        assert len(remote) == 0
        remote.put("k", {"v": 1})
        assert len(remote) == 1


class TestPrefetch:
    def test_prefetch_buffers_hits_and_remembers_misses(self, server, remote):
        server.cache.put("a", {"v": 1})
        server.cache.put("b", {"v": 2})
        remote.prefetch(["a", "b", "missing"])
        # Stats untouched by the prefetch itself...
        assert remote.stats.lookups == 0
        server_lookups = server.cache.stats.lookups
        # ...and the gets that follow are answered without the network.
        assert remote.get("a") == {"v": 1}
        assert remote.get("b") == {"v": 2}
        assert remote.get("missing") is None
        assert server.cache.stats.lookups == server_lookups
        assert remote.stats.hits == 2 and remote.stats.misses == 1

    def test_prefetch_skips_already_known_keys(self, server, remote):
        server.cache.put("a", {"v": 1})
        remote.prefetch(["a", "gone"])
        server_lookups = server.cache.stats.lookups
        remote.prefetch(["a", "gone", "a"])  # everything already resolved
        assert server.cache.stats.lookups == server_lookups

    def test_prefetch_chunks_at_the_wire_limit(self, server, remote, monkeypatch):
        # Shrink the chunk size; an unchunked request would be refused by
        # the server as over-limit and the tier would degrade.
        monkeypatch.setattr(remote_module, "GET_MANY_LIMIT", 2)
        keys = [f"k{i}" for i in range(5)]
        server.cache.put("k3", {"v": 3})
        remote.prefetch(keys)
        assert remote.degraded is False
        assert server.cache.stats.lookups == 5
        assert remote.get("k3") == {"v": 3}


class TestDegradation:
    def test_dead_server_degrades_after_one_reconnect(self, server):
        remote = RemoteCache.from_address(server.address)
        metrics = MetricsRegistry()
        remote.bind_metrics(metrics)
        assert remote.get("k") is None  # live round trip
        server.stop()
        assert remote.get("other") is None  # fails, reconnects, degrades
        assert remote.degraded is True
        assert remote.errors == 2  # the failure and the failed retry
        assert metrics.counter("repro_cachenet_errors").total() == 2
        assert metrics.counter("repro_cachenet_reconnects_total").total() == 1
        # Past degradation the tier is a local no-op: no new errors.
        remote.put("k", {"v": 1})
        assert remote.get("k") is None
        assert len(remote) == 0
        assert remote.errors == 2
        remote.close()

    def test_reconnect_recovers_across_a_server_restart(self, tmp_path):
        path = tmp_path / "cache.sock"
        first = CacheServer(LRUCache(), socket_path=path)
        first.start()
        remote = RemoteCache.from_address(first.address)
        try:
            remote.put("k", {"v": 1})
            first.stop()
            second = CacheServer(LRUCache(), socket_path=path)
            second.start()
            try:
                # The held connection is dead; one fresh connection to the
                # restarted server answers, and the tier stays healthy.
                assert remote.get("k") is None  # new server, empty cache
                assert remote.degraded is False
                assert remote.errors == 1
            finally:
                second.stop()
        finally:
            remote.close()

    def test_requests_counter_labels_by_op(self, server):
        remote = RemoteCache.from_address(server.address)
        metrics = MetricsRegistry()
        remote.bind_metrics(metrics)
        try:
            remote.put("k", {"v": 1})
            remote.get("k")
            remote.prefetch(["other"])
            requests = metrics.counter("repro_cachenet_requests_total")
            assert requests.value(op="put") == 1
            assert requests.value(op="get") == 1
            assert requests.value(op="get_many") == 1
        finally:
            remote.close()


class TestTiering:
    def test_build_cache_mounts_the_remote_tier_behind_local(self, server):
        cache = build_cache(memory_size=8, remote=server.address)
        assert isinstance(cache, TieredCache)
        remote = cache.slow
        assert isinstance(remote, RemoteCache)
        try:
            # A write goes through every tier; a fresh local tier then
            # promotes the remote hit on its way back up.
            cache.put("k", {"v": 1})
            assert server.cache.get("k") == {"v": 1}
            cold = build_cache(memory_size=8, remote=server.address)
            try:
                assert cold.get("k") == {"v": 1}
                assert cold.fast.stats.stores == 1  # promoted into memory
                server_lookups = server.cache.stats.lookups
                assert cold.get("k") == {"v": 1}  # now answered locally
                assert server.cache.stats.lookups == server_lookups
            finally:
                cold.slow.close()
        finally:
            remote.close()

    def test_tiered_prefetch_reaches_the_remote_member(self, server):
        server.cache.put("k", {"v": 1})
        cache = build_cache(memory_size=8, remote=server.address)
        try:
            cache.prefetch(["k"])
            server_lookups = server.cache.stats.lookups
            assert cache.get("k") == {"v": 1}
            assert server.cache.stats.lookups == server_lookups
        finally:
            cache.slow.close()

    def test_remote_auth_token_is_presented(self, tmp_path):
        server = CacheServer(
            LRUCache(), socket_path=tmp_path / "cache.sock", auth_token="sesame"
        )
        server.start()
        try:
            authed = build_cache(
                remote=server.address, remote_auth_token="sesame"
            )
            try:
                authed.put("k", {"v": 1})
                assert server.cache.get("k") == {"v": 1}
            finally:
                authed.slow.close()
            # The wrong token degrades (the error frame is a wire failure
            # from the tier's point of view) — it must not fail the caller.
            unauthed = build_cache(remote=server.address)
            try:
                assert unauthed.get("k") is None
                assert unauthed.slow.degraded is True
            finally:
                unauthed.slow.close()
        finally:
            server.stop()
