"""CacheServer unit tests: the ``repro-cache/v1`` wire surface.

Everything here talks raw newline-delimited JSON over a socket, so the
error frames (which a :class:`DaemonClient` would raise as exceptions)
are asserted verbatim — the protocol promise under test is that errors
never close the connection.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.cachenet import CACHE_PROTOCOL_VERSION, CacheServer
from repro.cachenet.server import GET_MANY_LIMIT
from repro.exceptions import DaemonError
from repro.service import LRUCache


class Wire:
    """A raw-socket client speaking one JSON frame per line."""

    def __init__(self, server: CacheServer) -> None:
        address = server.address
        if address.startswith("unix:"):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(10.0)
            self._sock.connect(address[len("unix:"):])
        else:
            _, _, rest = address.partition(":")
            host, _, port = rest.rpartition(":")
            self._sock = socket.create_connection((host, int(port)), timeout=10.0)
        self._reader = self._sock.makefile("r", encoding="utf-8")

    def send_raw(self, line: str) -> dict:
        self._sock.sendall((line + "\n").encode("utf-8"))
        response = self._reader.readline()
        assert response, "server hung up"
        return json.loads(response)

    def roundtrip(self, frame: dict) -> dict:
        return self.send_raw(json.dumps(frame))

    def close(self) -> None:
        self._reader.close()
        self._sock.close()


@pytest.fixture
def server(tmp_path):
    server = CacheServer(LRUCache(), socket_path=tmp_path / "cache.sock")
    server.start()
    yield server
    server.stop()


@pytest.fixture
def wire(server):
    wire = Wire(server)
    yield wire
    wire.close()


class TestConstruction:
    def test_needs_a_backing_cache(self):
        with pytest.raises(DaemonError, match="backing cache"):
            CacheServer(None, socket_path="cache.sock")

    def test_exactly_one_transport(self, tmp_path):
        with pytest.raises(DaemonError, match="exactly one transport"):
            CacheServer(LRUCache())
        with pytest.raises(DaemonError, match="exactly one transport"):
            CacheServer(
                LRUCache(), socket_path=tmp_path / "cache.sock", host="127.0.0.1"
            )

    def test_tcp_needs_a_port(self):
        with pytest.raises(DaemonError, match="needs a port"):
            CacheServer(LRUCache(), host="127.0.0.1")

    def test_non_loopback_bind_without_token_is_refused(self):
        server = CacheServer(LRUCache(), host="0.0.0.0", port=0)
        with pytest.raises(DaemonError, match="non-loopback"):
            server.start()

    def test_loopback_tcp_serves_without_a_token(self):
        server = CacheServer(LRUCache(), host="127.0.0.1", port=0)
        server.start()
        try:
            assert server.address.startswith("tcp:127.0.0.1:")
            wire = Wire(server)
            assert wire.roundtrip({"op": "ping"})["ok"] is True
            wire.close()
        finally:
            server.stop()


class TestSocketFileHygiene:
    def test_stale_socket_file_is_bound_over(self, tmp_path):
        path = tmp_path / "cache.sock"
        stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stale.bind(str(path))
        stale.close()  # no listener behind the file: a dead server's leftovers
        assert path.exists()
        server = CacheServer(LRUCache(), socket_path=path)
        server.start()
        try:
            wire = Wire(server)
            assert wire.roundtrip({"op": "ping"})["ok"] is True
            wire.close()
        finally:
            server.stop()

    def test_live_socket_is_not_hijacked(self, server):
        second = CacheServer(LRUCache(), socket_path=server._socket_path)
        with pytest.raises(DaemonError, match="already serving"):
            second.start()


class TestOps:
    def test_ping_carries_protocol_and_pid(self, wire):
        response = wire.roundtrip({"op": "ping"})
        assert response["ok"] is True
        assert response["protocol"] == CACHE_PROTOCOL_VERSION
        assert isinstance(response["pid"], int)

    def test_get_put_roundtrip(self, server, wire):
        miss = wire.roundtrip({"op": "get", "key": "k1"})
        assert miss["ok"] is True and miss["record"] is None
        stored = wire.roundtrip(
            {"op": "put", "key": "k1", "record": {"pair_id": "p"}}
        )
        assert stored["stored"] is True
        hit = wire.roundtrip({"op": "get", "key": "k1"})
        assert hit["record"] == {"pair_id": "p"}
        assert len(server.cache) == 1

    def test_get_many_mixed(self, wire):
        wire.roundtrip({"op": "put", "key": "a", "record": {"v": 1}})
        wire.roundtrip({"op": "put", "key": "b", "record": {"v": 2}})
        response = wire.roundtrip({"op": "get_many", "keys": ["a", "b", "c"]})
        assert response["records"] == {"a": {"v": 1}, "b": {"v": 2}}
        assert response["misses"] == 1

    def test_get_many_limit_is_an_error_frame(self, wire):
        keys = [f"k{i}" for i in range(GET_MANY_LIMIT + 1)]
        response = wire.roundtrip({"op": "get_many", "keys": keys})
        assert response["ok"] is False
        assert f"capped at {GET_MANY_LIMIT}" in response["error"]
        # The connection survived the refusal.
        assert wire.roundtrip({"op": "ping"})["ok"] is True

    def test_stats_reconciles_with_the_backing_cache(self, server, wire):
        wire.roundtrip({"op": "get", "key": "a"})  # miss
        wire.roundtrip({"op": "put", "key": "a", "record": {"v": 1}})
        wire.roundtrip({"op": "get", "key": "a"})  # hit
        wire.roundtrip({"op": "get_many", "keys": ["a", "b"]})  # hit + miss
        response = wire.roundtrip({"op": "stats"})
        assert response["uptime"] >= 0
        expected = {**server.cache.stats.as_dict(), "size": len(server.cache)}
        assert response["cache"] == expected
        assert response["cache"]["hits"] == 2
        assert response["cache"]["misses"] == 2
        assert response["cache"]["stores"] == 1
        assert response["cache"]["size"] == 1
        # Batched probes count exactly like single-key ones.
        stats = server.cache.stats
        assert stats.lookups == stats.hits + stats.misses == 4


class TestErrorModel:
    def test_malformed_lines_keep_the_connection_open(self, wire):
        for raw in ("this is not JSON", '["not", "an", "object"]'):
            response = wire.send_raw(raw)
            assert response["ok"] is False
            assert response["error"].startswith("malformed frame: ")
        assert wire.roundtrip({"op": "ping"})["ok"] is True

    def test_unknown_op(self, wire):
        response = wire.roundtrip({"op": "bogus"})
        assert response == {
            "ok": False,
            "protocol": CACHE_PROTOCOL_VERSION,
            "error": "unknown op 'bogus'",
        }

    def test_field_validation(self, wire):
        cases = [
            ({"op": "get"}, "get needs a string 'key'"),
            ({"op": "get", "key": 7}, "get needs a string 'key'"),
            ({"op": "put", "record": {}}, "put needs a string 'key'"),
            ({"op": "put", "key": "k"}, "put needs an object 'record'"),
            ({"op": "put", "key": "k", "record": 3}, "put needs an object 'record'"),
            ({"op": "get_many"}, "get_many needs a list of string 'keys'"),
            (
                {"op": "get_many", "keys": ["a", 1]},
                "get_many needs a list of string 'keys'",
            ),
        ]
        for frame, message in cases:
            response = wire.roundtrip(frame)
            assert response["ok"] is False and response["error"] == message
        assert wire.roundtrip({"op": "ping"})["ok"] is True


class TestAuth:
    @pytest.fixture
    def secured(self, tmp_path):
        server = CacheServer(
            LRUCache(), socket_path=tmp_path / "cache.sock", auth_token="sesame"
        )
        server.start()
        yield server
        server.stop()

    def test_only_ping_and_auth_are_unauthenticated(self, secured):
        wire = Wire(secured)
        try:
            assert wire.roundtrip({"op": "ping"})["ok"] is True
            for frame in (
                {"op": "get", "key": "k"},
                {"op": "put", "key": "k", "record": {}},
                {"op": "get_many", "keys": []},
                {"op": "stats"},
                {"op": "shutdown"},
            ):
                response = wire.roundtrip(frame)
                assert response["ok"] is False
                assert response["error"].startswith("authentication required")
        finally:
            wire.close()

    def test_bad_token_is_an_error_frame_not_a_hangup(self, secured):
        wire = Wire(secured)
        try:
            response = wire.roundtrip({"op": "auth", "token": "wrong"})
            assert response["error"] == "auth failed: bad token"
            response = wire.roundtrip({"op": "auth", "token": 42})
            assert response["error"] == "auth needs a string 'token'"
            # Still unauthenticated, still connected.
            denied = wire.roundtrip({"op": "stats"})
            assert denied["error"].startswith("authentication required")
        finally:
            wire.close()

    def test_auth_is_per_connection(self, secured):
        first = Wire(secured)
        second = Wire(secured)
        try:
            granted = first.roundtrip({"op": "auth", "token": "sesame"})
            assert granted["authenticated"] is True
            assert first.roundtrip({"op": "stats"})["ok"] is True
            denied = second.roundtrip({"op": "stats"})
            assert denied["error"].startswith("authentication required")
        finally:
            first.close()
            second.close()


class TestShutdown:
    def test_shutdown_op_stops_the_server(self, tmp_path):
        server = CacheServer(LRUCache(), socket_path=tmp_path / "cache.sock")
        server.start()
        waiter = threading.Thread(target=server.serve_forever, daemon=True)
        waiter.start()
        wire = Wire(server)
        response = wire.roundtrip({"op": "shutdown"})
        assert response["shutting_down"] is True
        wire.close()
        waiter.join(timeout=10.0)
        assert not waiter.is_alive(), "serve_forever did not return"
        assert not (tmp_path / "cache.sock").exists()
        server.stop()  # idempotent

    def test_backing_cache_survives_shutdown(self, tmp_path):
        cache = LRUCache()
        server = CacheServer(cache, socket_path=tmp_path / "cache.sock")
        server.start()
        wire = Wire(server)
        wire.roundtrip({"op": "put", "key": "k", "record": {"v": 1}})
        wire.close()
        server.stop()
        assert cache.get("k") == {"v": 1}
