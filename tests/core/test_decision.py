"""Unit tests for the non-promise decision procedure."""

from __future__ import annotations

import pytest

from repro.circuits.random import random_circuit
from repro.core import EquivalenceType, make_instance
from repro.core.decision import decide
from repro.exceptions import UnsupportedEquivalenceError


class TestPositiveInstances:
    @pytest.mark.parametrize("label", ["I-N", "I-P", "P-I", "P-N", "NP-I", "N-I"])
    def test_equivalent_circuits_accepted_with_witnesses(self, rng, label):
        equivalence = EquivalenceType.from_label(label)
        base = random_circuit(4, 15, rng)
        c1, c2, _ = make_instance(base, equivalence, rng)
        outcome = decide(c1, c2, equivalence, rng=rng, epsilon=1e-4)
        assert outcome.equivalent
        assert outcome.result is not None
        assert outcome.exhaustive

    def test_string_labels_accepted(self, rng):
        base = random_circuit(3, 10, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_N, rng)
        assert decide(c1, c2, "i-n", rng=rng).equivalent


class TestNegativeInstances:
    @pytest.mark.parametrize("label", ["I-N", "P-I", "NP-I", "N-I"])
    def test_unrelated_circuits_rejected(self, rng, label):
        equivalence = EquivalenceType.from_label(label)
        c1 = random_circuit(4, 25, rng)
        c2 = random_circuit(4, 25, rng)
        outcome = decide(c1, c2, equivalence, rng=rng, epsilon=1e-4)
        # Random cascades are (overwhelmingly) not equivalent under these
        # restricted classes; the matcher's candidate must fail validation.
        assert not outcome.equivalent

    def test_width_mismatch_rejected_immediately(self, rng):
        outcome = decide(
            random_circuit(3, 5, rng),
            random_circuit(4, 5, rng),
            EquivalenceType.I_N,
        )
        assert not outcome.equivalent
        assert outcome.result is None


class TestHardClasses:
    def test_hard_class_requires_opt_in(self, rng):
        base = random_circuit(3, 10, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_N, rng)
        with pytest.raises(UnsupportedEquivalenceError):
            decide(c1, c2, EquivalenceType.N_N)

    def test_hard_class_with_brute_force_positive(self, rng):
        base = random_circuit(3, 10, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_N, rng)
        outcome = decide(c1, c2, EquivalenceType.N_N, allow_brute_force=True, rng=rng)
        assert outcome.equivalent
        assert outcome.result is not None

    def test_hard_class_with_brute_force_negative(self, rng):
        c1 = random_circuit(3, 20, rng)
        c2 = random_circuit(3, 20, rng)
        if c1.functionally_equal(c2):  # pragma: no cover
            pytest.skip("random circuits coincide")
        outcome = decide(c1, c2, EquivalenceType.I_N, rng=rng)
        assert not outcome.equivalent


class TestValidationModes:
    def test_sampled_validation_for_wide_circuits(self, rng):
        base = random_circuit(5, 20, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.P_I, rng)
        outcome = decide(
            c1, c2, EquivalenceType.P_I, rng=rng, exhaustive_validation=False
        )
        assert outcome.equivalent
        assert not outcome.exhaustive

    def test_quantum_can_be_disabled(self, rng):
        base = random_circuit(4, 12, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        with pytest.raises(UnsupportedEquivalenceError):
            decide(c1, c2, EquivalenceType.N_I, allow_quantum=False)
