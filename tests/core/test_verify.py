"""Unit tests for instance construction and witness verification."""

from __future__ import annotations

import pytest

from repro.circuits.random import random_circuit
from repro.core.equivalence import EquivalenceType
from repro.core.problem import MatchingResult
from repro.core.verify import make_instance, reconstructed_circuit, verify_match
from repro.exceptions import MatchingError


class TestMakeInstance:
    def test_instances_respect_the_class_shape(self, rng):
        base = random_circuit(4, 15, rng)
        c1, c2, truth = make_instance(base, EquivalenceType.N_I, rng)
        assert truth.nu_x is not None
        assert truth.pi_x is None
        assert truth.nu_y is None
        assert truth.pi_y is None
        assert c2.functionally_equal(base)

    def test_instance_is_equivalent_under_ground_truth(self, rng):
        for label in ("I-N", "P-I", "NP-I", "N-P", "N-N", "P-P", "NP-NP"):
            equivalence = EquivalenceType.from_label(label)
            base = random_circuit(4, 15, rng)
            c1, c2, truth = make_instance(base, equivalence, rng)
            result = MatchingResult(
                equivalence,
                nu_x=truth.nu_x,
                pi_x=truth.pi_x,
                nu_y=truth.nu_y,
                pi_y=truth.pi_y,
            )
            assert verify_match(c1, c2, equivalence, result)

    def test_i_i_instance_is_unchanged(self, rng):
        base = random_circuit(3, 10, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_I, rng)
        assert c1.functionally_equal(c2)


class TestVerifyMatch:
    def test_rejects_wrong_witness(self, rng):
        base = random_circuit(4, 15, rng)
        c1, c2, truth = make_instance(base, EquivalenceType.I_N, rng)
        wrong = MatchingResult(
            EquivalenceType.I_N,
            nu_y=tuple(not value for value in truth.nu_y),
        )
        # Flipping every bit of a non-trivial negation cannot still match.
        if any(truth.nu_y):
            assert not verify_match(c1, c2, EquivalenceType.I_N, wrong)

    def test_rejects_witness_outside_class(self, rng):
        base = random_circuit(3, 10, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_N, rng)
        rogue = MatchingResult(EquivalenceType.I_N, nu_x=(True, False, False))
        with pytest.raises(MatchingError):
            verify_match(c1, c2, EquivalenceType.I_N, rogue)

    def test_width_mismatch_fails(self, rng):
        c1 = random_circuit(3, 5, rng)
        c2 = random_circuit(4, 5, rng)
        assert not verify_match(c1, c2, EquivalenceType.I_I, MatchingResult(EquivalenceType.I_I))

    def test_sampled_verification_agrees_with_exhaustive(self, rng):
        base = random_circuit(5, 20, rng)
        c1, c2, truth = make_instance(base, EquivalenceType.NP_I, rng)
        result = MatchingResult(
            EquivalenceType.NP_I, nu_x=truth.nu_x, pi_x=truth.pi_x
        )
        assert verify_match(c1, c2, EquivalenceType.NP_I, result, exhaustive=False, rng=rng)

    def test_reconstructed_circuit_matches_transformed(self, rng):
        base = random_circuit(4, 12, rng)
        c1, c2, truth = make_instance(base, EquivalenceType.P_N, rng)
        result = MatchingResult(
            EquivalenceType.P_N, pi_x=truth.pi_x, nu_y=truth.nu_y
        )
        assert reconstructed_circuit(c2, result).functionally_equal(c1)
