"""Unit tests for the Fig. 5 encoding circuits."""

from __future__ import annotations

import itertools

import pytest

from repro.bits import bit_get
from repro.core.hardness.encoding import (
    clause_gates,
    comparison_circuit,
    formula_block,
    layout_for,
    unique_sat_encoding_circuit,
)
from repro.exceptions import CircuitError
from repro.sat.cnf import CNF, Clause
from repro.sat.generators import planted_unique_sat, random_cnf


def evaluate_phi_and_ancillas(formula, layout, circuit, x_bits, a_bits, b_bit, z_bit):
    """Helper: run the encoding circuit on a structured input assignment."""
    value = 0
    for index, bit in enumerate(x_bits):
        if bit:
            value |= 1 << layout.variable_lines[index]
    for index, bit in enumerate(a_bits):
        if bit:
            value |= 1 << layout.clause_lines[index]
    if b_bit:
        value |= 1 << layout.helper_line
    if z_bit:
        value |= 1 << layout.result_line
    return circuit.simulate(value), value


class TestClauseGates:
    def test_clause_value_xored_onto_ancilla(self):
        formula = CNF([[1, -2, 3]])
        layout = layout_for(formula)
        gates = clause_gates(formula.clauses[0], layout.clause_lines[0], layout)
        assert len(gates) == 2
        for x1, x2, x3 in itertools.product((0, 1), repeat=3):
            value = x1 | (x2 << 1) | (x3 << 2)
            for gate in gates:
                value = gate.apply(value)
            clause_true = bool(x1 or (not x2) or x3)
            assert bit_get(value, layout.clause_lines[0]) == int(clause_true)
            # Variable lines untouched.
            assert value & 0b111 == x1 | (x2 << 1) | (x3 << 2)

    def test_empty_clause_rejected(self):
        formula = CNF([[1]])
        layout = layout_for(formula)
        with pytest.raises(CircuitError):
            clause_gates(Clause([]), layout.clause_lines[0], layout)


class TestFormulaBlock:
    def test_block_is_self_inverse(self, rng):
        formula = random_cnf(4, 5, 3, rng)
        layout = layout_for(formula)
        gates = formula_block(formula, layout)
        from repro.circuits.circuit import ReversibleCircuit

        block = ReversibleCircuit(layout.num_lines, gates)
        assert block.then(block).is_identity()

    def test_gate_count_is_2m(self, rng):
        formula = random_cnf(4, 6, 3, rng)
        layout = layout_for(formula)
        assert len(formula_block(formula, layout)) == 2 * 6


class TestEncodingCircuit:
    def test_gate_count_is_8m_plus_4(self, rng):
        formula = random_cnf(4, 5, 3, rng)
        circuit, _ = unique_sat_encoding_circuit(formula)
        assert circuit.num_gates == 8 * 5 + 4

    def test_rejects_trivial_formulas(self):
        with pytest.raises(CircuitError):
            unique_sat_encoding_circuit(CNF([], num_variables=2))

    def test_result_line_receives_phi_when_ancillas_zero(self, rng):
        formula = random_cnf(3, 4, 2, rng)
        circuit, layout = unique_sat_encoding_circuit(formula)
        for bits in itertools.product((0, 1), repeat=3):
            for b_bit in (0, 1):
                for z_bit in (0, 1):
                    output, value = evaluate_phi_and_ancillas(
                        formula, layout, circuit, bits, [0] * 4, b_bit, z_bit
                    )
                    phi = formula.evaluate_vector([bool(b) for b in bits])
                    assert bit_get(output, layout.result_line) == (z_bit ^ int(phi))
                    # Every other line is restored.
                    mask = (1 << layout.result_line) - 1
                    assert output & mask == value & mask

    def test_result_line_unchanged_when_some_ancilla_set(self, rng):
        formula = random_cnf(3, 3, 2, rng)
        circuit, layout = unique_sat_encoding_circuit(formula)
        output, value = evaluate_phi_and_ancillas(
            formula, layout, circuit, [1, 0, 1], [1, 0, 0], 0, 0
        )
        assert bit_get(output, layout.result_line) == 0
        mask = (1 << layout.result_line) - 1
        assert output & mask == value & mask

    def test_all_lines_except_result_restored_on_every_input(self, rng):
        formula = random_cnf(2, 2, 2, rng)
        circuit, layout = unique_sat_encoding_circuit(formula)
        mask = (1 << layout.result_line) - 1
        for value in range(1 << layout.num_lines):
            assert circuit.simulate(value) & mask == value & mask


class TestComparisonCircuit:
    def test_single_gate_semantics(self, rng):
        formula, model = planted_unique_sat(3, 4, rng=rng)
        layout = layout_for(formula)
        circuit = comparison_circuit(layout, positive_lines=layout.variable_lines)
        assert circuit.num_gates == 1
        # Fires exactly when every variable line is 1 and every clause line 0.
        all_ones = sum(1 << line for line in layout.variable_lines)
        assert bit_get(circuit.simulate(all_ones), layout.result_line) == 1
        assert bit_get(circuit.simulate(0), layout.result_line) == 0

    def test_overlapping_polarities_rejected(self, rng):
        formula = random_cnf(3, 3, 2, rng)
        layout = layout_for(formula)
        with pytest.raises(CircuitError):
            comparison_circuit(layout, positive_lines=[0], negative_lines=[0, 1])
