"""Unit tests for the quantum swap-test matchers (Algorithm 1 and Section 4.6)."""

from __future__ import annotations

import pytest

from repro.circuits import library
from repro.circuits.permutation import Permutation
from repro.circuits.random import random_circuit
from repro.core.equivalence import EquivalenceType
from repro.core.matchers import match_n_i_quantum, match_np_i_quantum
from repro.core.matchers.n_i import as_quantum_oracle
from repro.core.verify import make_instance, verify_match
from repro.exceptions import MatchingError
from repro.oracles import CircuitOracle, FunctionOracle
from repro.quantum.oracle import QuantumCircuitOracle
from repro.quantum.swap_test import SwapTest


class TestAsQuantumOracle:
    def test_accepts_circuit_permutation_and_oracle(self, rng):
        circuit = random_circuit(3, 10, rng)
        assert as_quantum_oracle(circuit).num_qubits == 3
        assert as_quantum_oracle(Permutation.from_circuit(circuit)).num_qubits == 3
        existing = QuantumCircuitOracle(circuit)
        assert as_quantum_oracle(existing) is existing

    def test_unwraps_classical_oracles(self, rng):
        circuit = random_circuit(3, 10, rng)
        assert as_quantum_oracle(CircuitOracle(circuit)).num_qubits == 3

    def test_rejects_opaque_function_oracles(self):
        opaque = FunctionOracle(lambda value: value, 3)
        with pytest.raises(MatchingError):
            as_quantum_oracle(opaque)


class TestAlgorithm1:
    def test_recovers_negation_on_random_circuits(self, rng):
        for _ in range(4):
            base = random_circuit(5, 20, rng)
            c1, c2, truth = make_instance(base, EquivalenceType.N_I, rng)
            result = match_n_i_quantum(c1, c2, epsilon=1e-4, rng=rng)
            assert result.nu_x == truth.nu_x
            assert verify_match(c1, c2, EquivalenceType.N_I, result)

    def test_recovers_negation_on_structured_circuit(self, rng):
        base = library.ripple_adder(3)
        c1, c2, truth = make_instance(base, EquivalenceType.N_I, rng)
        result = match_n_i_quantum(c1, c2, epsilon=1e-4, rng=rng)
        assert result.nu_x == truth.nu_x

    def test_identity_negation_detected(self, rng):
        base = random_circuit(4, 15, rng)
        result = match_n_i_quantum(base, base.copy(), epsilon=1e-3, rng=rng)
        assert result.nu_x == (False,) * 4

    def test_query_count_is_bounded_by_2nk(self, rng):
        base = random_circuit(6, 20, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        epsilon = 1e-3
        result = match_n_i_quantum(c1, c2, epsilon=epsilon, rng=rng)
        repetitions = result.metadata["repetitions"]
        assert repetitions == 10  # ceil(log2(1/1e-3))
        assert result.quantum_queries <= 2 * 6 * repetitions
        assert result.queries == 0  # no classical queries

    def test_swap_test_counter_reported(self, rng):
        base = random_circuit(4, 12, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        result = match_n_i_quantum(c1, c2, rng=rng)
        assert result.swap_tests * 2 == result.quantum_queries

    def test_explicit_swap_test_instance_used(self, rng):
        base = random_circuit(3, 8, rng)
        c1, c2, truth = make_instance(base, EquivalenceType.N_I, rng)
        tester = SwapTest(rng=1, use_circuit=True)
        result = match_n_i_quantum(c1, c2, epsilon=1e-2, swap_test=tester)
        assert result.nu_x == truth.nu_x
        assert tester.runs == result.swap_tests

    def test_mismatched_widths_rejected(self, rng):
        with pytest.raises(MatchingError):
            match_n_i_quantum(random_circuit(3, 5, rng), random_circuit(4, 5, rng))


class TestQuantumNPI:
    def test_recovers_witnesses_on_random_circuits(self, rng):
        for _ in range(3):
            base = random_circuit(4, 15, rng)
            c1, c2, _ = make_instance(base, EquivalenceType.NP_I, rng)
            result = match_np_i_quantum(c1, c2, epsilon=1e-4, rng=rng)
            assert verify_match(c1, c2, EquivalenceType.NP_I, result)

    def test_recovers_witnesses_on_structured_circuit(self, rng):
        base = library.increment(5)
        c1, c2, _ = make_instance(base, EquivalenceType.NP_I, rng)
        result = match_np_i_quantum(c1, c2, epsilon=1e-4, rng=rng)
        assert verify_match(c1, c2, EquivalenceType.NP_I, result)

    def test_query_count_is_bounded_by_n_squared(self, rng):
        num_lines = 5
        base = random_circuit(num_lines, 15, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.NP_I, rng)
        result = match_np_i_quantum(c1, c2, epsilon=1e-3, rng=rng)
        repetitions = result.metadata["repetitions"]
        bound = 2 * repetitions * (num_lines * num_lines + num_lines)
        assert result.quantum_queries <= bound

    def test_paper_verbatim_sweep_without_inference(self, rng):
        base = random_circuit(3, 10, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.NP_I, rng)
        result = match_np_i_quantum(
            c1, c2, epsilon=1e-4, rng=rng, infer_last_candidate=False
        )
        assert verify_match(c1, c2, EquivalenceType.NP_I, result)
        assert result.metadata["infer_last_candidate"] is False

    def test_identity_transform_detected(self, rng):
        base = random_circuit(4, 15, rng)
        result = match_np_i_quantum(base, base.copy(), epsilon=1e-3, rng=rng)
        assert result.nu_x == (False,) * 4
        assert result.pi_x.is_identity()
