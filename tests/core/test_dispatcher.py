"""Unit tests for the top-level match() dispatcher."""

from __future__ import annotations

import pytest

from repro.circuits.random import random_circuit
from repro.core import EquivalenceType, match, make_instance, verify_match
from repro.exceptions import UnsupportedEquivalenceError
from repro.oracles import CircuitOracle


class TestDispatch:
    @pytest.mark.parametrize(
        "label",
        ["I-I", "I-N", "I-P", "I-NP", "P-I", "P-N", "N-I", "NP-I"],
    )
    def test_tractable_classes_without_inverse(self, rng, label):
        equivalence = EquivalenceType.from_label(label)
        base = random_circuit(4, 15, rng)
        c1, c2, _ = make_instance(base, equivalence, rng)
        result = match(c1, c2, equivalence, rng=rng, epsilon=1e-4)
        assert result.equivalence is equivalence
        assert verify_match(c1, c2, equivalence, result)

    @pytest.mark.parametrize(
        "label", ["I-P", "P-I", "P-N", "N-P", "N-I", "NP-I", "I-NP"]
    )
    def test_tractable_classes_with_inverse(self, rng, label):
        equivalence = EquivalenceType.from_label(label)
        base = random_circuit(5, 20, rng)
        c1, c2, _ = make_instance(base, equivalence, rng)
        o1 = CircuitOracle(c1, with_inverse=True)
        o2 = CircuitOracle(c2, with_inverse=True)
        result = match(o1, o2, equivalence, rng=rng)
        assert verify_match(c1, c2, equivalence, result)

    def test_accepts_string_labels(self, rng):
        base = random_circuit(4, 15, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_N, rng)
        result = match(c1, c2, "i-n")
        assert result.equivalence is EquivalenceType.I_N

    def test_hard_classes_raise(self, rng):
        base = random_circuit(3, 10, rng)
        for label in ("N-N", "P-P", "NP-NP", "N-NP", "NP-N", "NP-P", "P-NP"):
            equivalence = EquivalenceType.from_label(label)
            c1, c2, _ = make_instance(base, equivalence, rng)
            with pytest.raises(UnsupportedEquivalenceError):
                match(c1, c2, equivalence)

    def test_n_p_without_both_inverses_raises(self, rng):
        base = random_circuit(4, 12, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_P, rng)
        with pytest.raises(UnsupportedEquivalenceError):
            match(c1, c2, EquivalenceType.N_P)

    def test_n_i_without_inverse_and_without_quantum_raises(self, rng):
        base = random_circuit(4, 12, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        with pytest.raises(UnsupportedEquivalenceError):
            match(c1, c2, EquivalenceType.N_I, allow_quantum=False)

    def test_n_i_quantum_path_reports_quantum_queries(self, rng):
        base = random_circuit(4, 12, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        result = match(c1, c2, EquivalenceType.N_I, rng=rng)
        assert result.quantum_queries > 0
        assert result.queries == 0

    def test_n_i_classical_path_used_when_inverse_available(self, rng):
        base = random_circuit(4, 12, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        o2 = CircuitOracle(c2, with_inverse=True)
        result = match(c1, o2, EquivalenceType.N_I)
        assert result.quantum_queries == 0
        assert result.queries == 2

    def test_seeded_matching_is_reproducible(self, rng):
        base = random_circuit(5, 20, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_NP, rng)
        first = match(c1, c2, EquivalenceType.I_NP, rng=123)
        second = match(c1, c2, EquivalenceType.I_NP, rng=123)
        assert first.nu_y == second.nu_y
        assert first.pi_y == second.pi_y
