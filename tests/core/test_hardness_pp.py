"""Unit tests for the Theorem 3 reduction (UNIQUE-SAT -> P-P matching)."""

from __future__ import annotations

import random

import pytest

from repro.core.equivalence import EquivalenceType
from repro.core.hardness.pp_reduction import (
    assignment_from_pp_witness,
    build_pp_instance,
    dual_rail_formula,
    pp_witness_from_assignment,
)
from repro.core.verify import reconstructed_circuit, verify_match
from repro.exceptions import MatchingError
from repro.sat.generators import planted_unique_sat
from repro.sat.solver import count_models, solve


class TestDualRail:
    def test_adds_n_variables_and_2n_clauses(self, rng):
        formula, _ = planted_unique_sat(3, 4, rng=rng)
        extended = dual_rail_formula(formula)
        assert extended.num_variables == 6
        assert extended.num_clauses == formula.num_clauses + 6

    def test_dual_rail_preserves_satisfiability_and_uniqueness(self, rng):
        formula, model = planted_unique_sat(3, 4, rng=rng)
        extended = dual_rail_formula(formula)
        assert count_models(extended, limit=2) == 1
        extended_model = solve(extended).assignment
        for j in range(1, 4):
            assert extended_model[j] == model[j]
            assert extended_model[3 + j] == (not model[j])


class TestInstanceConstruction:
    def test_line_budget_matches_theorem(self, rng):
        formula, _ = planted_unique_sat(2, 3, rng=rng)
        instance = build_pp_instance(formula)
        n, m = 2, 3
        # 2n variable lines + (m + 2n) clause lines + b_b + b_z.
        assert instance.c1.num_lines == 2 * n + (m + 2 * n) + 2
        assert instance.c2.num_gates == 1

    def test_control_regions(self, rng):
        formula, _ = planted_unique_sat(2, 3, rng=rng)
        instance = build_pp_instance(formula)
        gate = instance.c2.gates[0]
        positives = {c.line for c in gate.controls if c.positive}
        negatives = {c.line for c in gate.controls if not c.positive}
        assert positives == set(instance.x_lines)
        assert negatives == set(instance.negative_region)
        assert instance.layout.helper_line not in positives | negatives


class TestWitnessEncoding:
    def test_planted_model_gives_valid_pp_witness(self, rng):
        formula, model = planted_unique_sat(2, 3, rng=rng)
        instance = build_pp_instance(formula)
        witness = pp_witness_from_assignment(instance, model)
        # Full exhaustive verification is 2^(4n+m+2) = 2^13 inputs here.
        assert verify_match(instance.c1, instance.c2, EquivalenceType.P_P, witness)

    def test_larger_instance_verified_by_sampling(self, rng):
        formula, model = planted_unique_sat(3, 4, rng=rng)
        instance = build_pp_instance(formula)
        witness = pp_witness_from_assignment(instance, model)
        reconstruction = reconstructed_circuit(instance.c2, witness)
        sampler = random.Random(11)
        for _ in range(400):
            probe = sampler.getrandbits(instance.layout.num_lines)
            assert reconstruction.simulate(probe) == instance.c1.simulate(probe)

    def test_decoding_inverts_encoding(self, rng):
        formula, model = planted_unique_sat(3, 4, rng=rng)
        instance = build_pp_instance(formula)
        witness = pp_witness_from_assignment(instance, model)
        assert assignment_from_pp_witness(instance, witness) == model

    def test_witness_is_involution_swapping_dual_rails(self, rng):
        formula, model = planted_unique_sat(3, 4, rng=rng)
        instance = build_pp_instance(formula)
        witness = pp_witness_from_assignment(instance, model)
        assert witness.pi_x == witness.pi_y  # involution: inverse equals itself
        moved = [line for line in range(instance.layout.num_lines)
                 if witness.pi_x[line] != line]
        expected_moved = {
            instance.layout.variable_line(j)
            for j, value in model.items()
            if not value
        } | {
            instance.layout.variable_line(instance.num_original_variables + j)
            for j, value in model.items()
            if not value
        }
        assert set(moved) == expected_moved

    def test_incomplete_assignment_rejected(self, rng):
        formula, model = planted_unique_sat(2, 3, rng=rng)
        instance = build_pp_instance(formula)
        partial = dict(model)
        partial.pop(2)
        with pytest.raises(MatchingError):
            pp_witness_from_assignment(instance, partial)

    def test_wrong_permutation_does_not_match(self, rng):
        formula, model = planted_unique_sat(2, 3, rng=rng)
        instance = build_pp_instance(formula)
        flipped_model = dict(model)
        flipped_model[1] = not flipped_model[1]
        wrong = pp_witness_from_assignment(instance, flipped_model)
        assert not verify_match(
            instance.c1, instance.c2, EquivalenceType.P_P, wrong
        )
