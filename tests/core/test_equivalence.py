"""Unit tests for the equivalence classes, lattice and Table 1 metadata."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.core.equivalence import (
    TABLE1_ROWS,
    EquivalenceType,
    Hardness,
    SideCondition,
    classify,
    dominates,
    domination_edges,
    domination_lattice,
)


class TestSideCondition:
    def test_allows_flags(self):
        assert not SideCondition.IDENTITY.allows_negation
        assert SideCondition.NEGATION.allows_negation
        assert not SideCondition.NEGATION.allows_permutation
        assert SideCondition.PERMUTATION.allows_permutation
        assert SideCondition.NEGATION_PERMUTATION.allows_negation
        assert SideCondition.NEGATION_PERMUTATION.allows_permutation

    def test_subsumption_order(self):
        assert SideCondition.NEGATION.subsumes(SideCondition.IDENTITY)
        assert SideCondition.NEGATION_PERMUTATION.subsumes(SideCondition.PERMUTATION)
        assert not SideCondition.NEGATION.subsumes(SideCondition.PERMUTATION)
        assert not SideCondition.PERMUTATION.subsumes(SideCondition.NEGATION)
        assert SideCondition.IDENTITY.subsumes(SideCondition.IDENTITY)


class TestEquivalenceType:
    def test_sixteen_classes(self):
        assert len(EquivalenceType) == 16

    def test_labels_and_parsing(self):
        assert EquivalenceType.NP_I.label == "NP-I"
        assert EquivalenceType.from_label("np-i") is EquivalenceType.NP_I
        assert EquivalenceType.from_label("N_P") is EquivalenceType.N_P

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError):
            EquivalenceType.from_label("Q-Q")

    def test_side_conditions(self):
        assert EquivalenceType.N_P.input_condition is SideCondition.NEGATION
        assert EquivalenceType.N_P.output_condition is SideCondition.PERMUTATION


class TestDomination:
    def test_np_np_dominates_everything(self):
        for other in EquivalenceType:
            assert dominates(EquivalenceType.NP_NP, other)

    def test_everything_dominates_i_i(self):
        for other in EquivalenceType:
            assert dominates(other, EquivalenceType.I_I)

    def test_incomparable_classes(self):
        assert not dominates(EquivalenceType.N_I, EquivalenceType.I_N)
        assert not dominates(EquivalenceType.I_N, EquivalenceType.N_I)
        assert not dominates(EquivalenceType.P_P, EquivalenceType.N_N)

    def test_lattice_node_count_and_acyclicity(self):
        graph = domination_lattice()
        assert graph.number_of_nodes() == 16
        assert nx.is_directed_acyclic_graph(graph)

    def test_lattice_edge_count(self):
        # Each side condition has 9 "subsumes" pairs (4 reflexive + 5 strict:
        # N>=I, P>=I, NP>=I, NP>=N, NP>=P).  The product order therefore has
        # 9 * 9 = 81 pairs, of which 16 are reflexive: 65 strict dominations.
        graph = domination_lattice()
        assert graph.number_of_edges() == 65

    def test_hasse_diagram_matches_fig1_structure(self):
        edges = domination_edges(hasse=True)
        # Figure 1's covering relation: each node covers the classes obtained
        # by weakening exactly one side by one step; NP-NP covers 4 classes.
        covers_of_top = [b for a, b in edges if a is EquivalenceType.NP_NP]
        assert sorted(c.label for c in covers_of_top) == [
            "N-NP",
            "NP-N",
            "NP-P",
            "P-NP",
        ]
        covers_of_ii = [a for a, b in edges if b is EquivalenceType.I_I]
        assert sorted(c.label for c in covers_of_ii) == ["I-N", "I-P", "N-I", "P-I"]

    def test_hardness_propagates_upward(self):
        """Any class dominating a UNIQUE-SAT-hard class is itself hard."""
        for upper in EquivalenceType:
            for lower in EquivalenceType:
                if (
                    dominates(upper, lower)
                    and classify(lower) is Hardness.UNIQUE_SAT_HARD
                ):
                    assert classify(upper) is Hardness.UNIQUE_SAT_HARD


class TestClassification:
    def test_fig1_easy_classes(self):
        assert classify(EquivalenceType.I_I) is Hardness.TRIVIAL
        for label in ("I-N", "I-P", "I-NP", "P-I", "P-N"):
            assert classify(EquivalenceType.from_label(label)) is Hardness.CLASSICAL_EASY

    def test_fig1_quantum_easy_classes(self):
        assert classify(EquivalenceType.N_I) is Hardness.QUANTUM_EASY
        assert classify(EquivalenceType.NP_I) is Hardness.QUANTUM_EASY

    def test_fig1_conditional_class(self):
        assert classify(EquivalenceType.N_P) is Hardness.CONDITIONALLY_EASY

    def test_fig1_hard_classes(self):
        hard = {"N-N", "P-P", "N-NP", "NP-N", "NP-P", "P-NP", "NP-NP"}
        for label in hard:
            assert (
                classify(EquivalenceType.from_label(label))
                is Hardness.UNIQUE_SAT_HARD
            )

    def test_hard_classes_dominate_nn_or_pp(self):
        for equivalence in EquivalenceType:
            if classify(equivalence) is Hardness.UNIQUE_SAT_HARD:
                assert dominates(equivalence, EquivalenceType.N_N) or dominates(
                    equivalence, EquivalenceType.P_P
                )


class TestTable1Rows:
    def test_every_tractable_class_is_covered(self):
        covered = set()
        for row in TABLE1_ROWS:
            covered.update(row.equivalences)
        expected = {
            EquivalenceType.from_label(label)
            for label in ("I-N", "I-P", "I-NP", "P-I", "P-N", "N-I", "NP-I", "N-P")
        }
        assert expected <= covered

    def test_bounds_are_monotone_in_n(self):
        for row in TABLE1_ROWS:
            assert row.bound(16, 1e-3) >= row.bound(4, 1e-3) - 1e-9

    def test_quantum_rows_only_without_inverse(self):
        for row in TABLE1_ROWS:
            if row.paradigm == "quantum":
                assert not row.inverse_available

    def test_complexity_strings_match_bound_shapes(self):
        for row in TABLE1_ROWS:
            if row.complexity == "O(1)":
                assert row.bound(4, 1e-3) == row.bound(64, 1e-3)
            if row.complexity == "O(log n)":
                assert row.bound(64, 1e-3) == pytest.approx(math.log2(64))
