"""Unit tests for MatchingResult / MatchingProblem."""

from __future__ import annotations

import pytest

from repro.circuits.line_permutation import LinePermutation
from repro.core.equivalence import EquivalenceType
from repro.core.problem import MatchingProblem, MatchingResult
from repro.exceptions import MatchingError


class TestMatchingResult:
    def test_witnesses_are_normalised(self):
        result = MatchingResult(
            EquivalenceType.NP_I, nu_x=[1, 0, 1], pi_x=[2, 0, 1]
        )
        assert result.nu_x == (True, False, True)
        assert isinstance(result.pi_x, LinePermutation)

    def test_missing_witness_accessors_raise(self):
        result = MatchingResult(EquivalenceType.I_N, nu_y=[True])
        assert result.require_nu_y() == (True,)
        with pytest.raises(MatchingError):
            result.require_nu_x()
        with pytest.raises(MatchingError):
            result.require_pi_x()
        with pytest.raises(MatchingError):
            result.require_pi_y()

    def test_total_queries_sums_classical_and_quantum(self):
        result = MatchingResult(EquivalenceType.N_I, queries=3, quantum_queries=7)
        assert result.total_queries == 10

    def test_describe_mentions_class_and_witnesses(self):
        result = MatchingResult(
            EquivalenceType.I_NP,
            nu_y=[True, False],
            pi_y=[1, 0],
            queries=5,
        )
        text = result.describe()
        assert "I-NP" in text
        assert "10" in text  # rendered negation bits
        assert "queries=5" in text

    def test_metadata_defaults_to_empty_dict(self):
        first = MatchingResult(EquivalenceType.I_I)
        second = MatchingResult(EquivalenceType.I_I)
        first.metadata["x"] = 1
        assert second.metadata == {}


class TestMatchingProblem:
    def test_frozen_dataclass(self):
        problem = MatchingProblem(EquivalenceType.P_I, num_lines=5)
        assert problem.with_inverse is False
        assert problem.epsilon == 1e-3
        with pytest.raises(AttributeError):
            problem.num_lines = 6
