"""Unit tests for the classical polynomial matchers (Section 4).

Each matcher is exercised on randomly generated promised-equivalent
instances over a mix of base circuits; results are validated semantically
with :func:`verify_match` and the query counts are checked against the
Table 1 bounds.
"""

from __future__ import annotations

import math

import pytest

from repro.circuits import library
from repro.circuits.random import random_circuit
from repro.core.equivalence import EquivalenceType
from repro.core.matchers import (
    match_i_i,
    match_i_n,
    match_i_np,
    match_i_p,
    match_n_i,
    match_n_p,
    match_np_i,
    match_p_i,
    match_p_n,
)
from repro.core.verify import make_instance, verify_match
from repro.exceptions import PromiseViolationError, UnsupportedEquivalenceError
from repro.oracles import CircuitOracle


def oracles_for(c1, c2, with_inverse):
    return (
        CircuitOracle(c1, with_inverse=with_inverse),
        CircuitOracle(c2, with_inverse=with_inverse),
    )


def base_circuits(rng, num_lines=5):
    """A small workload mix: one structured circuit plus random cascades."""
    circuits = [random_circuit(num_lines, 20, rng) for _ in range(2)]
    circuits.append(library.increment(num_lines))
    return circuits


class TestMatchII:
    def test_no_witnesses_and_no_queries(self, rng):
        base = random_circuit(4, 10, rng)
        result = match_i_i(base, base.copy())
        assert result.queries == 0
        assert result.nu_x is None and result.pi_y is None

    def test_spot_checks_catch_promise_violation(self, rng):
        c1 = random_circuit(4, 20, rng)
        c2 = random_circuit(4, 20, rng)
        if c1.functionally_equal(c2):  # pragma: no cover - vanishing probability
            pytest.skip("random circuits happened to coincide")
        with pytest.raises(PromiseViolationError):
            match_i_i(c1, c2, spot_checks=32, rng=rng)


class TestMatchIN:
    @pytest.mark.parametrize("with_inverse", [True, False])
    def test_recovers_negation(self, rng, with_inverse):
        for base in base_circuits(rng):
            c1, c2, truth = make_instance(base, EquivalenceType.I_N, rng)
            o1, o2 = oracles_for(c1, c2, with_inverse)
            result = match_i_n(o1, o2)
            assert verify_match(c1, c2, EquivalenceType.I_N, result)
            assert result.nu_y == truth.nu_y
            assert result.queries == 2  # O(1): one query per oracle


class TestMatchIP:
    def test_with_inverse_uses_log_n_queries(self, rng):
        for base in base_circuits(rng, num_lines=6):
            c1, c2, _ = make_instance(base, EquivalenceType.I_P, rng)
            o1, o2 = oracles_for(c1, c2, True)
            result = match_i_p(o1, o2)
            assert verify_match(c1, c2, EquivalenceType.I_P, result)
            assert result.queries <= 2 * math.ceil(math.log2(6))

    def test_without_inverse_randomised(self, rng):
        for base in base_circuits(rng, num_lines=6):
            c1, c2, _ = make_instance(base, EquivalenceType.I_P, rng)
            o1, o2 = oracles_for(c1, c2, False)
            result = match_i_p(o1, o2, epsilon=1e-4, rng=rng)
            assert verify_match(c1, c2, EquivalenceType.I_P, result)
            assert result.metadata["regime"] == "classical-randomized"

    def test_only_c1_inverse_available(self, rng):
        base = random_circuit(5, 20, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_P, rng)
        o1 = CircuitOracle(c1, with_inverse=True)
        o2 = CircuitOracle(c2, with_inverse=False)
        result = match_i_p(o1, o2)
        assert verify_match(c1, c2, EquivalenceType.I_P, result)

    def test_single_line_circuit(self, rng):
        base = random_circuit(1, 3, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_P, rng)
        result = match_i_p(*oracles_for(c1, c2, False), rng=rng)
        assert verify_match(c1, c2, EquivalenceType.I_P, result)


class TestMatchINP:
    @pytest.mark.parametrize("with_inverse", [True, False])
    def test_recovers_negation_and_permutation(self, rng, with_inverse):
        for base in base_circuits(rng):
            c1, c2, _ = make_instance(base, EquivalenceType.I_NP, rng)
            o1, o2 = oracles_for(c1, c2, with_inverse)
            result = match_i_np(o1, o2, epsilon=1e-4, rng=rng)
            assert verify_match(c1, c2, EquivalenceType.I_NP, result)

    def test_only_c1_inverse_available(self, rng):
        base = random_circuit(5, 20, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_NP, rng)
        o1 = CircuitOracle(c1, with_inverse=True)
        o2 = CircuitOracle(c2, with_inverse=False)
        result = match_i_np(o1, o2)
        assert verify_match(c1, c2, EquivalenceType.I_NP, result)

    def test_query_count_with_inverse(self, rng):
        base = random_circuit(6, 25, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_NP, rng)
        result = match_i_np(*oracles_for(c1, c2, True))
        # One all-zero probe plus ceil(log2 n) pattern probes, two oracle
        # queries each.
        assert result.queries <= 2 * (1 + math.ceil(math.log2(6)))


class TestMatchPI:
    @pytest.mark.parametrize("with_inverse", [True, False])
    def test_recovers_permutation(self, rng, with_inverse):
        for base in base_circuits(rng):
            c1, c2, _ = make_instance(base, EquivalenceType.P_I, rng)
            o1, o2 = oracles_for(c1, c2, with_inverse)
            result = match_p_i(o1, o2)
            assert verify_match(c1, c2, EquivalenceType.P_I, result)

    def test_one_hot_regime_uses_linear_queries(self, rng):
        base = random_circuit(7, 25, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.P_I, rng)
        result = match_p_i(*oracles_for(c1, c2, False))
        assert result.metadata["regime"] == "classical-onehot"
        assert result.queries == 2 * 7

    def test_inverse_regime_uses_log_queries(self, rng):
        base = random_circuit(7, 25, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.P_I, rng)
        result = match_p_i(*oracles_for(c1, c2, True))
        assert result.queries <= 2 * math.ceil(math.log2(7))

    def test_only_c1_inverse_available(self, rng):
        base = random_circuit(5, 15, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.P_I, rng)
        o1 = CircuitOracle(c1, with_inverse=True)
        o2 = CircuitOracle(c2, with_inverse=False)
        result = match_p_i(o1, o2)
        assert verify_match(c1, c2, EquivalenceType.P_I, result)

    def test_promise_violation_detected_without_inverse(self, rng):
        c1 = random_circuit(4, 20, rng)
        c2 = random_circuit(4, 20, rng)
        # Random cascades are almost surely not P-I equivalent; the one-hot
        # outputs then fail to pair up.
        try:
            result = match_p_i(*oracles_for(c1, c2, False))
        except PromiseViolationError:
            return
        assert not verify_match(c1, c2, EquivalenceType.P_I, result)


class TestMatchPN:
    @pytest.mark.parametrize("with_inverse", [True, False])
    def test_recovers_both_witnesses(self, rng, with_inverse):
        for base in base_circuits(rng):
            c1, c2, _ = make_instance(base, EquivalenceType.P_N, rng)
            o1, o2 = oracles_for(c1, c2, with_inverse)
            result = match_p_n(o1, o2)
            assert verify_match(c1, c2, EquivalenceType.P_N, result)

    def test_query_count_without_inverse_is_linear(self, rng):
        base = random_circuit(6, 25, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.P_N, rng)
        result = match_p_n(*oracles_for(c1, c2, False))
        # 2 probes for nu + 2n one-hot probes for pi.
        assert result.queries == 2 + 2 * 6


class TestMatchNP:
    def test_requires_both_inverses(self, rng):
        base = random_circuit(5, 20, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_P, rng)
        o1 = CircuitOracle(c1, with_inverse=True)
        o2 = CircuitOracle(c2, with_inverse=False)
        with pytest.raises(UnsupportedEquivalenceError):
            match_n_p(o1, o2)

    def test_recovers_both_witnesses(self, rng):
        for base in base_circuits(rng):
            c1, c2, _ = make_instance(base, EquivalenceType.N_P, rng)
            result = match_n_p(*oracles_for(c1, c2, True))
            assert verify_match(c1, c2, EquivalenceType.N_P, result)

    def test_query_count_is_logarithmic(self, rng):
        base = random_circuit(8, 30, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_P, rng)
        result = match_n_p(*oracles_for(c1, c2, True))
        assert result.queries <= 2 + 2 * math.ceil(math.log2(8))


class TestMatchNIClassical:
    def test_with_inverse_is_constant_queries(self, rng):
        for base in base_circuits(rng):
            c1, c2, truth = make_instance(base, EquivalenceType.N_I, rng)
            result = match_n_i(*oracles_for(c1, c2, True))
            assert verify_match(c1, c2, EquivalenceType.N_I, result)
            assert result.nu_x == truth.nu_x
            assert result.queries == 2

    def test_only_c1_inverse_available(self, rng):
        base = random_circuit(5, 20, rng)
        c1, c2, truth = make_instance(base, EquivalenceType.N_I, rng)
        o1 = CircuitOracle(c1, with_inverse=True)
        o2 = CircuitOracle(c2, with_inverse=False)
        result = match_n_i(o1, o2)
        assert result.nu_x == truth.nu_x

    def test_without_inverse_refuses(self, rng):
        base = random_circuit(4, 10, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        with pytest.raises(UnsupportedEquivalenceError):
            match_n_i(*oracles_for(c1, c2, False))


class TestMatchNPIClassical:
    def test_with_inverse_recovers_witnesses(self, rng):
        for base in base_circuits(rng):
            c1, c2, _ = make_instance(base, EquivalenceType.NP_I, rng)
            result = match_np_i(*oracles_for(c1, c2, True))
            assert verify_match(c1, c2, EquivalenceType.NP_I, result)
            assert result.metadata["regime"] == "classical-inverse"

    def test_only_c1_inverse_available(self, rng):
        base = random_circuit(5, 20, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.NP_I, rng)
        o1 = CircuitOracle(c1, with_inverse=True)
        o2 = CircuitOracle(c2, with_inverse=False)
        result = match_np_i(o1, o2)
        assert verify_match(c1, c2, EquivalenceType.NP_I, result)

    def test_query_count_is_logarithmic(self, rng):
        base = random_circuit(8, 30, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.NP_I, rng)
        result = match_np_i(*oracles_for(c1, c2, True))
        assert result.queries <= 2 * (1 + math.ceil(math.log2(8)))
