"""Unit tests for the MatchingEngine facade and the batch API."""

from __future__ import annotations

import pytest

from repro.circuits.random import random_circuit
from repro.core import (
    EquivalenceType,
    MatchingConfig,
    MatchingEngine,
    MatchingProblem,
    make_instance,
    verify_match,
)
from repro.core.engine import BatchReport, get_default_engine
from repro.exceptions import (
    QueryBudgetExceededError,
    UnsupportedEquivalenceError,
)
from repro.oracles import CircuitOracle


class TestEngineMatch:
    @pytest.mark.parametrize("label", ["I-N", "I-P", "P-I", "NP-I"])
    def test_matches_and_verifies(self, rng, label):
        equivalence = EquivalenceType.from_label(label)
        base = random_circuit(4, 14, rng)
        c1, c2, _ = make_instance(base, equivalence, rng)
        engine = MatchingEngine()
        result = engine.match(c1, c2, equivalence, rng=rng, epsilon=1e-4)
        assert result.equivalence is equivalence
        assert verify_match(c1, c2, equivalence, result)

    def test_config_with_inverse_grants_inverse_access(self, rng):
        base = random_circuit(4, 14, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        engine = MatchingEngine(MatchingConfig(with_inverse=True))
        result = engine.match(c1, c2, EquivalenceType.N_I)
        assert result.quantum_queries == 0
        assert result.queries == 2

    def test_config_no_quantum_raises_without_inverse(self, rng):
        base = random_circuit(4, 14, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        engine = MatchingEngine(MatchingConfig(allow_quantum=False))
        with pytest.raises(UnsupportedEquivalenceError):
            engine.match(c1, c2, EquivalenceType.N_I)

    def test_brute_force_opt_in_solves_hard_class(self, rng):
        base = random_circuit(3, 8, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_N, rng)
        engine = MatchingEngine(MatchingConfig(allow_brute_force=True))
        result = engine.match(c1, c2, EquivalenceType.N_N, rng=rng)
        assert verify_match(c1, c2, EquivalenceType.N_N, result)

    def test_query_budget_is_enforced(self, rng):
        base = random_circuit(4, 14, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_P, rng)
        engine = MatchingEngine(MatchingConfig(max_queries=1))
        with pytest.raises(QueryBudgetExceededError):
            engine.match(c1, c2, EquivalenceType.I_P, rng=rng)

    def test_query_budget_binds_the_quantum_tier_too(self, rng):
        # N-I without inverses resolves to the swap-test matcher; the budget
        # must carry over to the lifted quantum oracles.
        base = random_circuit(4, 14, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        engine = MatchingEngine(MatchingConfig(max_queries=2))
        with pytest.raises(QueryBudgetExceededError):
            engine.match(c1, c2, EquivalenceType.N_I, rng=rng)

    def test_plan_reports_resolution_without_matching(self, rng):
        base = random_circuit(4, 14, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        engine = MatchingEngine()
        assert engine.plan(c1, c2, EquivalenceType.N_I).name == "n-i/swap-test"
        assert (
            engine.plan(c1, c2, EquivalenceType.N_I, with_inverse=True).name
            == "n-i/inverse-probe"
        )

    def test_prebuilt_oracles_pass_through(self, rng):
        base = random_circuit(4, 14, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_N, rng)
        oracle1, oracle2 = CircuitOracle(c1), CircuitOracle(c2)
        MatchingEngine().match(oracle1, oracle2, EquivalenceType.I_N)
        assert oracle1.query_count == 1  # queried directly, not via a copy

    def test_no_stale_oracle_after_circuit_mutation(self, rng):
        # match() coerces fresh every call, so mutating a circuit between
        # calls must be reflected — an engine-lifetime cache would keep the
        # inverse materialised from the pre-mutation gates.
        from repro.circuits.gates import not_gate

        base = random_circuit(4, 14, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        engine = MatchingEngine(MatchingConfig(with_inverse=True))
        first = engine.match(c1, c2, EquivalenceType.N_I)
        assert verify_match(c1, c2, EquivalenceType.N_I, first)
        # Appending the same gate to both sides preserves N-I equivalence;
        # only a fresh inverse of the mutated c2 recovers the witness.
        c1.append(not_gate(0))
        c2.append(not_gate(0))
        second = engine.match(c1, c2, EquivalenceType.N_I)
        assert second.queries == 2  # still the classical inverse tier
        assert verify_match(c1, c2, EquivalenceType.N_I, second)

    def test_with_config_overrides_fields(self):
        engine = MatchingEngine()
        tweaked = engine.with_config(allow_quantum=False, max_queries=7)
        assert tweaked.config.allow_quantum is False
        assert tweaked.config.max_queries == 7
        assert engine.config.allow_quantum is True


class TestEngineSolve:
    def test_solve_uses_problem_fields(self, rng):
        base = random_circuit(4, 14, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        problem = MatchingProblem(
            EquivalenceType.N_I, num_lines=4, with_inverse=True
        )
        result = MatchingEngine().solve(problem, c1, c2)
        assert result.queries == 2
        assert result.quantum_queries == 0
        assert verify_match(c1, c2, EquivalenceType.N_I, result)


class TestMatchMany:
    def _pairs(self, rng, labels):
        base = random_circuit(4, 14, rng)
        pairs = []
        for label in labels:
            equivalence = EquivalenceType.from_label(label)
            c1, c2, _ = make_instance(base, equivalence, rng)
            pairs.append((c1, c2, equivalence))
        return pairs

    def test_aggregates_query_totals(self, rng):
        pairs = self._pairs(rng, ["I-N", "I-P", "P-I", "N-I"])
        engine = MatchingEngine()
        report = engine.match_many(pairs, rng=rng)
        assert isinstance(report, BatchReport)
        assert report.num_pairs == 4
        assert report.num_matched == 4
        assert report.num_failed == 0
        assert report.classical_queries == sum(
            entry.result.queries for entry in report.entries
        )
        assert report.quantum_queries == sum(
            entry.result.quantum_queries for entry in report.entries
        )
        assert report.total_queries == (
            report.classical_queries + report.quantum_queries
        )
        # N-I without an inverse runs on the quantum tier.
        assert report.quantum_queries > 0
        assert report.swap_tests > 0

    def test_per_pair_witnesses_verify(self, rng):
        pairs = self._pairs(rng, ["I-N", "P-I", "I-NP"])
        report = MatchingEngine().match_many(pairs, rng=rng)
        for (c1, c2, equivalence), entry in zip(pairs, report.entries):
            assert entry.matched
            assert entry.equivalence is equivalence
            assert verify_match(c1, c2, equivalence, entry.result)

    def test_batch_default_equivalence_applies_to_two_tuples(self, rng):
        base = random_circuit(4, 14, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_N, rng)
        report = MatchingEngine().match_many([(c1, c2)], equivalence="I-N")
        assert report.num_matched == 1

    def test_failures_are_recorded_not_raised(self, rng):
        base = random_circuit(3, 8, rng)
        good1, good2, _ = make_instance(base, EquivalenceType.I_N, rng)
        hard1, hard2, _ = make_instance(base, EquivalenceType.P_P, rng)
        report = MatchingEngine().match_many(
            [
                (good1, good2, EquivalenceType.I_N),
                (hard1, hard2, EquivalenceType.P_P),
            ]
        )
        assert report.num_matched == 1
        assert report.num_failed == 1
        failure = report.failures()[0]
        assert failure.error is not None
        assert "UnsupportedEquivalenceError" in failure.error
        assert report.classical_queries == report.entries[0].result.queries

    def test_stop_on_error_reraises(self, rng):
        base = random_circuit(3, 8, rng)
        hard1, hard2, _ = make_instance(base, EquivalenceType.P_P, rng)
        with pytest.raises(UnsupportedEquivalenceError):
            MatchingEngine().match_many(
                [(hard1, hard2, EquivalenceType.P_P)], stop_on_error=True
            )

    def test_on_entry_streams_results_as_they_settle(self, rng):
        """The per-entry callback sees every entry — matched and failed —
        in batch order, each before the next pair is dispatched."""
        base = random_circuit(3, 8, rng)
        good1, good2, _ = make_instance(base, EquivalenceType.I_N, rng)
        hard1, hard2, _ = make_instance(base, EquivalenceType.P_P, rng)
        seen = []
        report = MatchingEngine().match_many(
            [
                (good1, good2, EquivalenceType.I_N),
                (hard1, hard2, EquivalenceType.P_P),
            ],
            on_entry=seen.append,
        )
        assert seen == list(report.entries)
        assert [entry.index for entry in seen] == [0, 1]
        assert seen[0].matched and not seen[1].matched

    def test_on_entry_fires_for_cache_hits(self, rng):
        from repro.service.cache import EngineCacheAdapter, LRUCache

        base = random_circuit(4, 14, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_N, rng)
        adapter = EngineCacheAdapter(LRUCache())
        engine = MatchingEngine()
        engine.match_many([(c1, c2, "I-N")], result_cache=adapter)
        seen = []
        engine.match_many(
            [(c1, c2, "I-N")], result_cache=adapter, on_entry=seen.append
        )
        assert len(seen) == 1 and seen[0].cached

    def test_oracle_coercion_reused_across_pairs(self, rng):
        base = random_circuit(4, 14, rng)
        template = base
        partners = []
        for _ in range(3):
            c1, _, _ = make_instance(template, EquivalenceType.I_N, rng)
            partners.append(c1)
        engine = MatchingEngine(MatchingConfig(with_inverse=True))
        report = engine.match_many(
            [(partner, template) for partner in partners],
            equivalence=EquivalenceType.I_N,
        )
        assert report.num_matched == 3
        # 3 distinct partners + 1 shared template, coerced once each.
        assert report.coerced_oracles == 4

    def test_budget_failures_recorded_per_pair(self, rng):
        base = random_circuit(4, 14, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_P, rng)
        engine = MatchingEngine(MatchingConfig(max_queries=1))
        report = engine.match_many([(c1, c2, EquivalenceType.I_P)], rng=rng)
        assert report.num_failed == 1
        assert "QueryBudgetExceededError" in report.failures()[0].error

    def test_budget_applies_per_pair_not_across_batch(self, rng):
        # A shared circuit must not let early pairs starve later ones: with
        # a budget the engine coerces fresh oracles per pair.
        base = random_circuit(4, 14, rng)
        partners = [
            make_instance(base, EquivalenceType.I_N, rng)[0] for _ in range(3)
        ]
        engine = MatchingEngine(MatchingConfig(max_queries=2))
        report = engine.match_many(
            [(partner, base) for partner in partners],
            equivalence=EquivalenceType.I_N,
        )
        assert report.num_matched == 3  # I-N costs 2 queries per pair
        assert report.coerced_oracles == 0  # sharing disabled under budget

    def test_malformed_pairs_raise_value_error(self, rng):
        base = random_circuit(3, 8, rng)
        engine = MatchingEngine()
        with pytest.raises(ValueError):
            engine.match_many([(base,)])
        with pytest.raises(ValueError):
            engine.match_many([(base, base)])  # no class anywhere

    def test_report_renders_through_analysis_table(self, rng):
        pairs = self._pairs(rng, ["I-N", "P-I"])
        report = MatchingEngine().match_many(pairs, rng=rng)
        table = report.to_table(title="demo")
        assert "demo" in table
        assert "matcher" in table
        assert "i-n/zero-probe" in table
        summary = report.summary()
        assert "2/2 matched" in summary


class TestDefaultEngine:
    def test_shared_instance(self):
        assert get_default_engine() is get_default_engine()

    def test_module_match_delegates_to_default_engine(self, rng):
        from repro.core import match

        base = random_circuit(4, 14, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_N, rng)
        result = match(c1, c2, "I-N")
        assert result.equivalence is EquivalenceType.I_N
