"""Unit tests for the equivalence checkers."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import not_gate
from repro.circuits.random import random_circuit
from repro.core.equivalence_check import (
    exhaustive_equivalent,
    find_distinguishing_input,
    oracle_equivalent,
    random_equivalent,
)
from repro.exceptions import MatchingError
from repro.oracles import CircuitOracle


class TestExhaustive:
    def test_identical_circuits(self, rng):
        circuit = random_circuit(4, 15, rng)
        assert exhaustive_equivalent(circuit, circuit.copy())

    def test_resynthesised_circuit_is_equivalent(self, rng):
        from repro.circuits.permutation import Permutation
        from repro.synthesis import synthesize

        circuit = random_circuit(4, 15, rng)
        assert exhaustive_equivalent(circuit, synthesize(Permutation.from_circuit(circuit)))

    def test_different_circuits(self):
        identity = ReversibleCircuit(3)
        flipped = ReversibleCircuit(3, [not_gate(2)])
        assert not exhaustive_equivalent(identity, flipped)

    def test_width_mismatch(self):
        assert not exhaustive_equivalent(ReversibleCircuit(2), ReversibleCircuit(3))


class TestDistinguishingInput:
    def test_none_for_equal_circuits(self, rng):
        circuit = random_circuit(3, 10, rng)
        assert find_distinguishing_input(circuit, circuit.copy()) is None

    def test_counterexample_really_distinguishes(self, rng):
        c1 = random_circuit(4, 15, rng)
        c2 = random_circuit(4, 15, rng)
        witness = find_distinguishing_input(c1, c2)
        if witness is None:
            assert exhaustive_equivalent(c1, c2)
        else:
            assert c1.simulate(witness) != c2.simulate(witness)

    def test_width_mismatch_raises(self):
        with pytest.raises(MatchingError):
            find_distinguishing_input(ReversibleCircuit(2), ReversibleCircuit(3))


class TestRandomised:
    def test_equal_circuits_always_pass(self, rng):
        circuit = random_circuit(5, 20, rng)
        assert random_equivalent(circuit, circuit.copy(), samples=64, rng=rng)

    def test_very_different_circuits_fail(self, rng):
        identity = ReversibleCircuit(5)
        scrambled = random_circuit(5, 30, rng)
        if exhaustive_equivalent(identity, scrambled):  # pragma: no cover
            pytest.skip("random circuit happened to be the identity")
        assert not random_equivalent(identity, scrambled, samples=256, rng=rng)

    def test_width_mismatch(self, rng):
        assert not random_equivalent(
            ReversibleCircuit(2), ReversibleCircuit(3), rng=rng
        )


class TestOracleCheck:
    def test_counts_queries(self, rng):
        circuit = random_circuit(4, 15, rng)
        o1 = CircuitOracle(circuit)
        o2 = CircuitOracle(circuit.copy())
        assert oracle_equivalent(o1, o2, samples=16, rng=rng)
        assert o1.query_count == o2.query_count > 0

    def test_structured_probes_catch_negation_quickly(self, rng):
        circuit = random_circuit(4, 15, rng)
        negated = ReversibleCircuit(4, [not_gate(0)]).then(circuit)
        o1 = CircuitOracle(circuit)
        o2 = CircuitOracle(negated)
        assert not oracle_equivalent(o1, o2, samples=0, rng=rng)

    def test_accepts_plain_circuits(self, rng):
        circuit = random_circuit(3, 10, rng)
        assert oracle_equivalent(circuit, circuit.copy(), samples=8, rng=rng)

    def test_width_mismatch(self, rng):
        assert not oracle_equivalent(
            ReversibleCircuit(2), ReversibleCircuit(3), rng=rng
        )
