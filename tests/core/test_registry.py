"""Unit tests for the capability-based matcher registry."""

from __future__ import annotations

import pytest

from repro.core import EquivalenceType
from repro.core.problem import MatchContext, MatchingResult
from repro.core.registry import (
    Capability,
    MatcherKind,
    MatcherRegistry,
    MatcherSpec,
    default_registry,
    detect_capabilities,
)
from repro.exceptions import MatchingError, UnsupportedEquivalenceError
from repro.oracles import CircuitOracle


NO_CAPS: frozenset[Capability] = frozenset()
QUANTUM_ONLY = frozenset({Capability.QUANTUM})
INVERSE_ONLY = frozenset({Capability.INVERSE, Capability.BOTH_INVERSES})
INVERSE_AND_QUANTUM = INVERSE_ONLY | QUANTUM_ONLY


def _expected_matcher(
    equivalence: EquivalenceType, inverse: bool, quantum: bool
) -> str | None:
    """The Table 1 capability matrix: expected winner or None (= raises)."""
    label = equivalence.label
    table = {
        "I-I": ("i-i/trivial", "i-i/trivial"),
        "I-N": ("i-n/zero-probe", "i-n/zero-probe"),
        "I-P": ("i-p/binary-code", "i-p/output-sequences"),
        "I-NP": ("i-np/binary-code", "i-np/output-sequences"),
        "P-I": ("p-i/binary-code", "p-i/one-hot"),
        "P-N": ("p-n/binary-code", "p-n/one-hot"),
        "N-I": ("n-i/inverse-probe", "n-i/swap-test" if quantum else None),
        "NP-I": ("np-i/binary-code", "np-i/swap-test" if quantum else None),
        "N-P": ("n-p/inverse-pair", None),
    }
    if label not in table:
        return None  # the UNIQUE-SAT-hard classes
    with_inverse, without_inverse = table[label]
    return with_inverse if inverse else without_inverse


class TestResolutionMatrix:
    @pytest.mark.parametrize("equivalence", list(EquivalenceType))
    @pytest.mark.parametrize("inverse", [False, True])
    @pytest.mark.parametrize("quantum", [False, True])
    def test_every_cell_resolves_or_raises(self, equivalence, inverse, quantum):
        capabilities = set()
        if inverse:
            capabilities |= INVERSE_ONLY
        if quantum:
            capabilities |= QUANTUM_ONLY
        expected = _expected_matcher(equivalence, inverse, quantum)
        registry = default_registry()
        if expected is None:
            with pytest.raises(UnsupportedEquivalenceError):
                registry.resolve(equivalence, capabilities)
        else:
            assert registry.resolve(equivalence, capabilities).name == expected

    @pytest.mark.parametrize("equivalence", list(EquivalenceType))
    def test_brute_force_opt_in_makes_every_nontrivial_class_eligible(
        self, equivalence
    ):
        registry = default_registry()
        spec = registry.resolve(
            equivalence, {Capability.BRUTE_FORCE} | INVERSE_AND_QUANTUM
        )
        if equivalence is EquivalenceType.I_I:
            assert spec.kind is MatcherKind.EXACT
        else:
            # Something cheaper wins whenever it exists; brute force only
            # remains for the classes with no polynomial algorithm.
            hard = _expected_matcher(equivalence, True, True) is None
            assert (spec.kind is MatcherKind.BRUTE_FORCE) == hard

    def test_n_p_needs_both_inverses(self):
        registry = default_registry()
        with pytest.raises(UnsupportedEquivalenceError):
            registry.resolve(EquivalenceType.N_P, {Capability.INVERSE})
        spec = registry.resolve(
            EquivalenceType.N_P,
            {Capability.INVERSE, Capability.BOTH_INVERSES},
        )
        assert spec.name == "n-p/inverse-pair"

    def test_fallback_chain_prefers_exact_over_quantum(self):
        registry = default_registry()
        spec = registry.resolve(EquivalenceType.N_I, INVERSE_AND_QUANTUM)
        assert spec.kind is MatcherKind.EXACT
        assert spec.name == "n-i/inverse-probe"

    def test_generated_error_message_lists_registered_matchers(self):
        registry = default_registry()
        with pytest.raises(UnsupportedEquivalenceError) as excinfo:
            registry.resolve(EquivalenceType.N_I, NO_CAPS)
        message = str(excinfo.value)
        assert "n-i/inverse-probe" in message
        assert "n-i/swap-test" in message
        assert "inverse" in message
        with pytest.raises(UnsupportedEquivalenceError) as excinfo:
            registry.resolve(EquivalenceType.P_P, NO_CAPS)
        message = str(excinfo.value)
        assert "unique-sat-hard" in message
        assert "brute-force" in message


class TestRegistryMechanics:
    def _spec(self, name: str = "demo", **overrides) -> MatcherSpec:
        values = dict(
            equivalence=EquivalenceType.I_N,
            name=name,
            func=lambda o1, o2, problem, ctx: MatchingResult(EquivalenceType.I_N),
            requires=frozenset(),
            kind=MatcherKind.EXACT,
            cost_rank=0,
        )
        values.update(overrides)
        return MatcherSpec(**values)

    def test_decorator_registers_and_resolves(self):
        registry = MatcherRegistry()

        @registry.register_matcher(
            EquivalenceType.I_N,
            kind=MatcherKind.EXACT,
            cost_rank=0,
            name="custom",
        )
        def custom(oracle1, oracle2, problem, ctx):
            return MatchingResult(EquivalenceType.I_N)

        assert registry.resolve(EquivalenceType.I_N, NO_CAPS).func is custom
        assert registry.equivalences() == (EquivalenceType.I_N,)

    def test_duplicate_name_rejected_unless_replace(self):
        registry = MatcherRegistry()
        registry.register(self._spec())
        with pytest.raises(MatchingError):
            registry.register(self._spec())
        registry.register(self._spec(cost_rank=5), replace=True)
        assert registry.get(EquivalenceType.I_N, "demo").cost_rank == 5

    def test_candidates_sorted_by_fallback_chain_then_cost(self):
        registry = MatcherRegistry()
        registry.register(self._spec("slow-exact", cost_rank=9))
        registry.register(
            self._spec("quantum", kind=MatcherKind.QUANTUM, cost_rank=0)
        )
        registry.register(self._spec("fast-exact", cost_rank=1))
        assert [spec.name for spec in registry.candidates(EquivalenceType.I_N)] == [
            "fast-exact",
            "slow-exact",
            "quantum",
        ]

    def test_get_unknown_name_raises(self):
        registry = MatcherRegistry()
        with pytest.raises(MatchingError):
            registry.get(EquivalenceType.I_N, "nope")


class TestDetectCapabilities:
    def test_circuits_offer_no_inverse(self, small_random_circuit):
        capabilities = detect_capabilities(
            small_random_circuit, small_random_circuit, MatchContext()
        )
        assert Capability.INVERSE not in capabilities
        assert Capability.QUANTUM in capabilities
        assert Capability.BRUTE_FORCE not in capabilities

    def test_single_inverse_oracle(self, small_random_circuit):
        oracle = CircuitOracle(small_random_circuit, with_inverse=True)
        capabilities = detect_capabilities(
            oracle, small_random_circuit, MatchContext()
        )
        assert Capability.INVERSE in capabilities
        assert Capability.BOTH_INVERSES not in capabilities

    def test_both_inverse_oracles(self, small_random_circuit):
        oracle1 = CircuitOracle(small_random_circuit, with_inverse=True)
        oracle2 = CircuitOracle(small_random_circuit, with_inverse=True)
        capabilities = detect_capabilities(oracle1, oracle2, MatchContext())
        assert Capability.BOTH_INVERSES in capabilities

    def test_context_flags_gate_quantum_and_brute_force(self, small_random_circuit):
        ctx = MatchContext(allow_quantum=False, allow_brute_force=True)
        capabilities = detect_capabilities(
            small_random_circuit, small_random_circuit, ctx
        )
        assert Capability.QUANTUM not in capabilities
        assert Capability.BRUTE_FORCE in capabilities
