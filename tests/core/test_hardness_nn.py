"""Unit tests for the Theorem 2 reduction (UNIQUE-SAT -> N-N matching)."""

from __future__ import annotations

import pytest

from repro.core.equivalence import EquivalenceType
from repro.core.hardness.nn_reduction import (
    assignment_from_nn_witness,
    build_nn_instance,
    decide_unique_sat_via_nn,
    nn_witness_from_assignment,
)
from repro.core.verify import verify_match
from repro.exceptions import MatchingError
from repro.sat.generators import planted_unique_sat, unsatisfiable_cnf


class TestInstanceConstruction:
    def test_polynomial_size(self, rng):
        formula, _ = planted_unique_sat(4, 5, rng=rng)
        instance = build_nn_instance(formula)
        assert instance.c1.num_gates == 8 * formula.num_clauses + 4
        assert instance.c2.num_gates == 1
        assert instance.c1.num_lines == formula.num_variables + formula.num_clauses + 2
        assert instance.c2.num_lines == instance.c1.num_lines


class TestWitnessEncoding:
    def test_planted_model_gives_valid_nn_witness(self, rng):
        formula, model = planted_unique_sat(3, 4, rng=rng)
        instance = build_nn_instance(formula)
        witness = nn_witness_from_assignment(instance, model)
        assert verify_match(instance.c1, instance.c2, EquivalenceType.N_N, witness)

    def test_witness_negates_exactly_the_false_variables(self, rng):
        formula, model = planted_unique_sat(3, 4, rng=rng)
        instance = build_nn_instance(formula)
        witness = nn_witness_from_assignment(instance, model)
        for variable, value in model.items():
            line = instance.layout.variable_line(variable)
            assert witness.nu_x[line] == (not value)
        for line in instance.layout.clause_lines:
            assert not witness.nu_x[line]

    def test_decoding_inverts_encoding(self, rng):
        formula, model = planted_unique_sat(4, 5, rng=rng)
        instance = build_nn_instance(formula)
        witness = nn_witness_from_assignment(instance, model)
        assert assignment_from_nn_witness(instance, witness) == model

    def test_incomplete_assignment_rejected(self, rng):
        formula, model = planted_unique_sat(3, 4, rng=rng)
        instance = build_nn_instance(formula)
        partial = dict(model)
        partial.pop(1)
        with pytest.raises(MatchingError):
            nn_witness_from_assignment(instance, partial)


class TestDecisionProcedure:
    def test_satisfiable_instance_recovers_planted_model(self, rng):
        formula, model = planted_unique_sat(3, 4, rng=rng)
        satisfiable, assignment, _ = decide_unique_sat_via_nn(formula)
        assert satisfiable
        assert assignment == model

    def test_unsatisfiable_instance_reports_unsat(self, rng):
        formula = unsatisfiable_cnf(3, 2, rng=rng)
        satisfiable, assignment, _ = decide_unique_sat_via_nn(formula)
        assert not satisfiable
        assert assignment is None

    def test_skipping_exhaustive_check_still_correct(self, rng):
        formula, model = planted_unique_sat(3, 3, rng=rng)
        satisfiable, assignment, _ = decide_unique_sat_via_nn(
            formula, exhaustive_check=False
        )
        assert satisfiable
        assert assignment == model

    def test_wrong_negations_do_not_match(self, rng):
        """Flipping the witness on a variable line breaks the equivalence."""
        formula, model = planted_unique_sat(3, 4, rng=rng)
        instance = build_nn_instance(formula)
        witness = nn_witness_from_assignment(instance, model)
        broken = list(witness.nu_x)
        line = instance.layout.variable_line(1)
        broken[line] = not broken[line]
        from repro.core.problem import MatchingResult

        broken_witness = MatchingResult(
            EquivalenceType.N_N, nu_x=tuple(broken), nu_y=tuple(broken)
        )
        assert not verify_match(
            instance.c1, instance.c2, EquivalenceType.N_N, broken_witness
        )
