"""Unit tests for the exception hierarchy and package metadata."""

from __future__ import annotations

import repro
from repro import exceptions


class TestHierarchy:
    def test_all_exceptions_derive_from_repro_error(self):
        for name in exceptions.__all__:
            cls = getattr(exceptions, name)
            assert issubclass(cls, exceptions.ReproError)

    def test_specific_parentage(self):
        assert issubclass(exceptions.GateError, exceptions.CircuitError)
        assert issubclass(
            exceptions.InverseUnavailableError, exceptions.OracleError
        )
        assert issubclass(
            exceptions.QueryBudgetExceededError, exceptions.OracleError
        )
        assert issubclass(
            exceptions.PromiseViolationError, exceptions.MatchingError
        )
        assert issubclass(
            exceptions.UnsupportedEquivalenceError, exceptions.MatchingError
        )

    def test_catching_the_base_class_catches_everything(self):
        try:
            raise exceptions.SynthesisError("boom")
        except exceptions.ReproError as error:
            assert "boom" in str(error)


class TestPackageSurface:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_exports_resolve(self):
        for module in (
            repro.circuits,
            repro.core,
            repro.quantum,
            repro.sat,
            repro.synthesis,
            repro.oracles,
            repro.baselines,
            repro.analysis,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None
