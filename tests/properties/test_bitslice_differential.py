"""Differential harness: bitsliced evaluation vs. the scalar engine.

The bit-parallel path (``repro.circuits.bitslice``, surfaced as
``evaluate_many``) is an *optimisation*, never a second semantics: on
every circuit and every batch it must reproduce the scalar reference
(``circuit.simulate`` / ``oracle.peek``) bit for bit.  This harness
holds the two paths together over a seeded sweep of generated cases —
mixed MCT/CNOT/NOT cascades with negative controls and swaps, widths
from 1 to 24 lines, and ragged batch sizes straddling the 64-lane word
boundary — plus the inverse direction, line-remapped circuits, and the
validation/fallback edges.

Every case derives its rng from a fixed seed, so a failure reproduces
exactly; the sweep sizes below put the harness above 500 generated
cases in total.
"""

from __future__ import annotations

import random

import pytest

from repro.circuits import bitslice
from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import Gate, SwapGate, cnot, mct, not_gate
from repro.circuits.random import (
    random_line_permutation,
    random_mct_gate,
)
from repro.exceptions import CircuitError
from repro.oracles import CircuitOracle

SEED = 20240711
#: Batch sizes straddling the 64-lane word boundary (1 word partial,
#: 1 word minus one lane, exactly 1 word, 1 word + 1 lane, 2 words).
BATCH_SIZES = (1, 63, 64, 65, 128)
#: Cases per (sweep, batch size) cell; three sweeps x five sizes puts
#: the harness at 3 * 5 * 40 = 600 generated cases.
CASES_PER_CELL = 40


def _case_rng(sweep: str, batch_size: int, case: int) -> random.Random:
    """A per-case rng derived from the module seed — failures replay."""
    return random.Random(f"{SEED}:{sweep}:{batch_size}:{case}")


def _random_mixed_circuit(rng: random.Random) -> ReversibleCircuit:
    """A 1-24 line cascade mixing MCT (any polarity), NOT/CNOT and SWAP."""
    num_lines = rng.randint(1, 24)
    num_gates = rng.randint(0, 4 * num_lines)
    circuit = ReversibleCircuit(num_lines, name="diff")
    for _ in range(num_gates):
        if num_lines >= 2 and rng.random() < 0.2:
            line_a, line_b = rng.sample(range(num_lines), 2)
            circuit.append(SwapGate(line_a, line_b))
        else:
            circuit.append(random_mct_gate(num_lines, rng))
    return circuit


def _random_batch(
    rng: random.Random, num_lines: int, size: int
) -> list[int]:
    return [rng.getrandbits(num_lines) for _ in range(size)]


class TestBitsliceMatchesScalar:
    """The core differential sweep: forward, inverse, and remapped."""

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_forward_sweep(self, batch_size):
        for case in range(CASES_PER_CELL):
            rng = _case_rng("forward", batch_size, case)
            circuit = _random_mixed_circuit(rng)
            values = _random_batch(rng, circuit.num_lines, batch_size)
            expected = [circuit.simulate(value) for value in values]
            assert bitslice.simulate_many(circuit, values) == expected, (
                f"case {case}: {circuit!r} diverges on batch of {batch_size}"
            )
            oracle = CircuitOracle(circuit)
            assert oracle.evaluate_many(values) == [
                oracle.peek(value) for value in values
            ]

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_inverse_sweep(self, batch_size):
        """The reversed cascade is bitsliced too, and round-trips."""
        for case in range(CASES_PER_CELL):
            rng = _case_rng("inverse", batch_size, case)
            circuit = _random_mixed_circuit(rng)
            inverse = circuit.inverse()
            values = _random_batch(rng, circuit.num_lines, batch_size)
            expected = [inverse.simulate(value) for value in values]
            assert bitslice.simulate_many(inverse, values) == expected
            # Round trip: C^{-1}(C(x)) = x, both legs bit-parallel.
            forward = bitslice.simulate_many(circuit, values)
            assert bitslice.simulate_many(inverse, forward) == values

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_remapped_sweep(self, batch_size):
        """Line-remapped gates (shuffled control/target lines) agree."""
        for case in range(CASES_PER_CELL):
            rng = _case_rng("remapped", batch_size, case)
            circuit = _random_mixed_circuit(rng)
            remapped = circuit.remapped(
                random_line_permutation(circuit.num_lines, rng).mapping
            )
            values = _random_batch(rng, remapped.num_lines, batch_size)
            assert bitslice.simulate_many(remapped, values) == [
                remapped.simulate(value) for value in values
            ]


class TestLaneEdges:
    """Word-boundary and degenerate-shape behaviour."""

    def test_empty_batch(self):
        circuit = ReversibleCircuit(3).append(not_gate(1))
        assert bitslice.simulate_many(circuit, []) == []
        assert CircuitOracle(circuit).evaluate_many([]) == []

    def test_gateless_circuit_is_identity(self):
        circuit = ReversibleCircuit(5)
        values = list(range(32))
        assert bitslice.simulate_many(circuit, values) == values

    def test_single_line_circuit(self):
        circuit = ReversibleCircuit(1).append(not_gate(0))
        assert bitslice.simulate_many(circuit, [0, 1, 1, 0]) == [1, 0, 0, 1]

    def test_duplicate_inputs_in_one_word(self):
        rng = random.Random(SEED)
        circuit = _random_mixed_circuit(rng)
        value = rng.getrandbits(circuit.num_lines)
        values = [value] * 64
        assert bitslice.simulate_many(circuit, values) == [
            circuit.simulate(value)
        ] * 64

    def test_pack_lanes_rejects_oversized_batch(self):
        with pytest.raises(CircuitError, match="64-lane"):
            bitslice.pack_lanes([0] * 65, 4)

    def test_wider_than_word_circuits_tile(self):
        """Circuits above 64 lines transpose in 64-line tiles."""
        rng = random.Random(SEED + 1)
        num_lines = 70
        circuit = ReversibleCircuit(num_lines)
        for _ in range(40):
            circuit.append(random_mct_gate(num_lines, rng, max_controls=3))
        circuit.append(SwapGate(2, 68))
        values = [rng.getrandbits(num_lines) for _ in range(65)]
        assert bitslice.simulate_many(circuit, values) == [
            circuit.simulate(value) for value in values
        ]


class TestValidationAndFallback:
    """Error parity with the scalar path, and the scalar fallback."""

    def test_out_of_range_input_raises_like_scalar(self):
        circuit = ReversibleCircuit(3).append(cnot(0, 1))
        with pytest.raises(CircuitError, match="does not fit in 3 lines"):
            bitslice.simulate_many(circuit, [2, 8])
        with pytest.raises(CircuitError, match="does not fit in 3 lines"):
            circuit.simulate(8)

    def test_negative_input_raises(self):
        circuit = ReversibleCircuit(3)
        with pytest.raises(CircuitError):
            bitslice.simulate_many(circuit, [-1])

    def test_unsupported_gate_kind_raises_in_compile(self):
        class PhantomGate(Gate):
            @property
            def lines(self):
                return frozenset({0})

            @property
            def max_line(self):
                return 0

            def apply(self, value):
                return value ^ 1

            def inverse(self):
                return self

            def remapped(self, line_map):
                return self

        gate = PhantomGate()
        assert not bitslice.supports([gate])
        with pytest.raises(CircuitError, match="PhantomGate"):
            bitslice.compile_gates([gate])

        # The oracle capability falls back to the scalar loop and still
        # matches the reference answers exactly.
        circuit = ReversibleCircuit(2).append(gate).append(not_gate(1))
        oracle = CircuitOracle(circuit)
        assert oracle.evaluate_many([0, 1, 2, 3]) == [
            oracle.peek(value) for value in range(4)
        ]

    def test_compiled_cache_tracks_circuit_growth(self):
        """Appending gates after a batched call invalidates the cache."""
        circuit = ReversibleCircuit(4).append(cnot(0, 1))
        oracle = CircuitOracle(circuit)
        before = oracle.evaluate_many(list(range(16)))
        assert before == [circuit.simulate(value) for value in range(16)]
        circuit.append(mct([0, 2], 3)).append(not_gate(2))
        after = oracle.evaluate_many(list(range(16)))
        assert after == [circuit.simulate(value) for value in range(16)]
        assert after != before
