"""Property-based tests (hypothesis) for the circuit substrate."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import Control, MCTGate, SwapGate
from repro.circuits.line_permutation import LinePermutation
from repro.circuits.permutation import Permutation
from repro.circuits.transforms import (
    commute_negation_then_permutation,
    negation_circuit,
    permutation_circuit,
    transformed_circuit,
)

NUM_LINES = 4


@st.composite
def mct_gates(draw, num_lines: int = NUM_LINES):
    target = draw(st.integers(min_value=0, max_value=num_lines - 1))
    candidates = [line for line in range(num_lines) if line != target]
    count = draw(st.integers(min_value=0, max_value=len(candidates)))
    control_lines = draw(
        st.permutations(candidates).map(lambda lines: lines[:count])
    )
    polarities = draw(
        st.lists(st.booleans(), min_size=count, max_size=count)
    )
    controls = tuple(
        Control(line, polarity) for line, polarity in zip(control_lines, polarities)
    )
    return MCTGate(controls, target)


@st.composite
def circuits(draw, num_lines: int = NUM_LINES, max_gates: int = 12):
    gates = draw(st.lists(mct_gates(num_lines), max_size=max_gates))
    return ReversibleCircuit(num_lines, gates)


@st.composite
def line_permutations(draw, num_lines: int = NUM_LINES):
    return LinePermutation(draw(st.permutations(list(range(num_lines)))))


negations = st.lists(st.booleans(), min_size=NUM_LINES, max_size=NUM_LINES)
inputs = st.integers(min_value=0, max_value=(1 << NUM_LINES) - 1)


class TestCircuitInvariants:
    @given(circuits(), inputs)
    @settings(max_examples=80, deadline=None)
    def test_circuit_is_a_bijection(self, circuit, value):
        table = circuit.truth_table()
        assert sorted(table) == list(range(1 << NUM_LINES))
        assert table[value] == circuit.simulate(value)

    @given(circuits(), inputs)
    @settings(max_examples=80, deadline=None)
    def test_inverse_undoes_circuit(self, circuit, value):
        assert circuit.inverse().simulate(circuit.simulate(value)) == value

    @given(circuits(), circuits(), inputs)
    @settings(max_examples=60, deadline=None)
    def test_composition_is_sequential_application(self, first, second, value):
        assert first.then(second).simulate(value) == second.simulate(
            first.simulate(value)
        )

    @given(circuits())
    @settings(max_examples=40, deadline=None)
    def test_permutation_view_roundtrip(self, circuit):
        from repro.synthesis import synthesize

        permutation = Permutation.from_circuit(circuit)
        assert synthesize(permutation).functionally_equal(circuit)

    @given(mct_gates(), inputs)
    @settings(max_examples=100, deadline=None)
    def test_gates_are_involutions(self, gate, value):
        assert gate.apply(gate.apply(value)) == value


class TestTransformInvariants:
    @given(negations, inputs)
    @settings(max_examples=60, deadline=None)
    def test_negation_circuit_is_xor(self, nu, value):
        mask = sum(1 << index for index, flag in enumerate(nu) if flag)
        assert negation_circuit(nu).simulate(value) == value ^ mask

    @given(line_permutations(), inputs)
    @settings(max_examples=60, deadline=None)
    def test_permutation_circuit_matches_line_action(self, pi, value):
        assert permutation_circuit(pi).simulate(value) == pi.apply_to_vector(value)

    @given(negations, line_permutations(), inputs)
    @settings(max_examples=60, deadline=None)
    def test_fig4_commutation_identity(self, nu, pi, value):
        nu_prime, _ = commute_negation_then_permutation(nu, pi)
        left = negation_circuit(nu).then(permutation_circuit(pi))
        right = permutation_circuit(pi).then(negation_circuit(nu_prime))
        assert left.simulate(value) == right.simulate(value)

    @given(circuits(), negations, line_permutations(), inputs)
    @settings(max_examples=40, deadline=None)
    def test_transformed_circuit_factorises(self, base, nu, pi, value):
        wrapped = transformed_circuit(base, nu_x=nu, pi_x=pi)
        mask = sum(1 << index for index, flag in enumerate(nu) if flag)
        assert wrapped.simulate(value) == base.simulate(
            pi.apply_to_vector(value ^ mask)
        )


class TestLinePermutationInvariants:
    @given(line_permutations(), line_permutations(), inputs)
    @settings(max_examples=60, deadline=None)
    def test_composition_action(self, outer, inner, value):
        composed = outer.compose(inner)
        assert composed.apply_to_vector(value) == outer.apply_to_vector(
            inner.apply_to_vector(value)
        )

    @given(line_permutations(), inputs)
    @settings(max_examples=60, deadline=None)
    def test_inverse_action(self, pi, value):
        assert pi.inverse().apply_to_vector(pi.apply_to_vector(value)) == value

    @given(line_permutations())
    @settings(max_examples=40, deadline=None)
    def test_cycle_decomposition_reconstructs_permutation(self, pi):
        rebuilt = LinePermutation.from_cycles(len(pi), *pi.cycles())
        assert rebuilt == pi


class TestSwapInvariants:
    @given(
        st.integers(min_value=0, max_value=NUM_LINES - 1),
        st.integers(min_value=0, max_value=NUM_LINES - 1),
        inputs,
    )
    @settings(max_examples=60, deadline=None)
    def test_swap_equals_three_cnots(self, line_a, line_b, value):
        if line_a == line_b:
            return
        swap = SwapGate(line_a, line_b)
        expected = swap.apply(value)
        for gate in swap.to_cnots():
            value = gate.apply(value)
        assert value == expected
