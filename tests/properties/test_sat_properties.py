"""Property-based tests for the SAT substrate and the hardness encodings."""

from __future__ import annotations

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import CNF, Clause
from repro.sat.dimacs import cnf_to_dimacs, parse_dimacs
from repro.sat.solver import enumerate_models, solve


@st.composite
def cnf_formulas(draw, max_variables: int = 4, max_clauses: int = 6):
    num_variables = draw(st.integers(min_value=1, max_value=max_variables))
    num_clauses = draw(st.integers(min_value=1, max_value=max_clauses))
    clauses = []
    for _ in range(num_clauses):
        size = draw(st.integers(min_value=1, max_value=num_variables))
        variables = draw(
            st.permutations(list(range(1, num_variables + 1))).map(
                lambda vs: vs[:size]
            )
        )
        signs = draw(st.lists(st.booleans(), min_size=size, max_size=size))
        clauses.append(
            Clause([v if s else -v for v, s in zip(variables, signs)])
        )
    return CNF(clauses, num_variables)


def brute_force_satisfiable(formula: CNF) -> bool:
    for bits in itertools.product([False, True], repeat=formula.num_variables):
        if formula.evaluate({i + 1: b for i, b in enumerate(bits)}):
            return True
    return False


class TestSolverProperties:
    @given(cnf_formulas())
    @settings(max_examples=80, deadline=None)
    def test_solver_agrees_with_brute_force(self, formula):
        assert solve(formula).satisfiable == brute_force_satisfiable(formula)

    @given(cnf_formulas())
    @settings(max_examples=60, deadline=None)
    def test_returned_models_satisfy_the_formula(self, formula):
        result = solve(formula)
        if result.satisfiable:
            assert formula.evaluate(result.assignment)

    @given(cnf_formulas(max_variables=3, max_clauses=4))
    @settings(max_examples=40, deadline=None)
    def test_enumeration_yields_distinct_models(self, formula):
        models = [tuple(sorted(m.items())) for m in enumerate_models(formula)]
        assert len(models) == len(set(models))

    @given(cnf_formulas())
    @settings(max_examples=60, deadline=None)
    def test_dimacs_roundtrip(self, formula):
        assert parse_dimacs(cnf_to_dimacs(formula)) == formula


class TestEncodingProperties:
    @given(cnf_formulas(max_variables=3, max_clauses=3))
    @settings(max_examples=25, deadline=None)
    def test_encoding_circuit_computes_phi_on_clean_ancillas(self, formula):
        from repro.core.hardness.encoding import unique_sat_encoding_circuit

        circuit, layout = unique_sat_encoding_circuit(formula)
        for bits in itertools.product((0, 1), repeat=formula.num_variables):
            value = sum(bit << layout.variable_lines[i] for i, bit in enumerate(bits))
            output = circuit.simulate(value)
            phi = formula.evaluate_vector([bool(b) for b in bits])
            assert (output >> layout.result_line) & 1 == int(phi)

    @given(cnf_formulas(max_variables=3, max_clauses=3))
    @settings(max_examples=20, deadline=None)
    def test_encoding_circuit_is_reversible(self, formula):
        from repro.core.hardness.encoding import unique_sat_encoding_circuit

        circuit, layout = unique_sat_encoding_circuit(formula)
        table = circuit.truth_table()
        assert sorted(table) == list(range(1 << layout.num_lines))
