"""Property-based tests for synthesis, optimisation and cost metrics."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.metrics import depth, metrics, quantum_cost
from repro.circuits.permutation import Permutation
from repro.circuits.random import random_circuit, random_permutation
from repro.synthesis import optimize, synthesize_basic, synthesize_bidirectional
from repro.synthesis.decomposition import to_toffoli_gate_set

seeds = st.integers(min_value=0, max_value=2**32 - 1)
widths = st.integers(min_value=2, max_value=4)


class TestSynthesisProperties:
    @given(seeds, widths)
    @settings(max_examples=40, deadline=None)
    def test_both_variants_realise_the_permutation(self, seed, width):
        permutation = random_permutation(width, random.Random(seed))
        for synthesiser in (synthesize_basic, synthesize_bidirectional):
            circuit = synthesiser(permutation)
            assert Permutation.from_circuit(circuit) == permutation

    @given(seeds, widths)
    @settings(max_examples=30, deadline=None)
    def test_gate_counts_respect_the_mmd_upper_bound(self, seed, width):
        """Every step repairs at most ``width`` bits, over ``2**width`` steps."""
        permutation = random_permutation(width, random.Random(seed))
        bound = width * (1 << width)
        assert synthesize_basic(permutation).num_gates <= bound
        assert synthesize_bidirectional(permutation).num_gates <= bound


class TestOptimisationProperties:
    @given(seeds, widths, st.integers(min_value=0, max_value=30))
    @settings(max_examples=50, deadline=None)
    def test_optimize_preserves_function_and_never_grows(self, seed, width, gates):
        circuit = random_circuit(width, gates, random.Random(seed))
        optimised = optimize(circuit)
        assert optimised.num_gates <= circuit.num_gates
        assert optimised.functionally_equal(circuit)

    @given(seeds, widths)
    @settings(max_examples=30, deadline=None)
    def test_optimize_is_idempotent(self, seed, width):
        circuit = random_circuit(width, 20, random.Random(seed))
        once = optimize(circuit)
        twice = optimize(once)
        assert twice.num_gates == once.num_gates


class TestMetricsProperties:
    @given(seeds, widths, st.integers(min_value=0, max_value=25))
    @settings(max_examples=50, deadline=None)
    def test_metric_sanity_bounds(self, seed, width, gates):
        circuit = random_circuit(width, gates, random.Random(seed))
        report = metrics(circuit)
        assert 0 <= report.depth <= report.gate_count
        assert report.quantum_cost >= report.gate_count
        assert report.t_count >= 0
        assert report.ancillas_for_toffoli_form == max(0, report.max_controls - 2)

    @given(seeds, widths)
    @settings(max_examples=25, deadline=None)
    def test_toffoli_expansion_preserves_function_and_lowers_arity(self, seed, width):
        circuit = random_circuit(width, 12, random.Random(seed))
        expanded = to_toffoli_gate_set(circuit)
        mask = (1 << width) - 1
        for probe in range(0, 1 << width):
            assert expanded.simulate(probe) & mask == circuit.simulate(probe)
        from repro.circuits.gates import MCTGate

        assert all(
            gate.num_controls <= 2
            for gate in expanded
            if isinstance(gate, MCTGate)
        )

    @given(seeds, widths, st.integers(min_value=0, max_value=25))
    @settings(max_examples=30, deadline=None)
    def test_quantum_cost_is_additive_over_concatenation(self, seed, width, gates):
        rng = random.Random(seed)
        first = random_circuit(width, gates, rng)
        second = random_circuit(width, gates, rng)
        assert quantum_cost(first.then(second)) == quantum_cost(first) + quantum_cost(
            second
        )

    @given(seeds, widths, st.integers(min_value=1, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_depth_of_concatenation_bounded_by_sum(self, seed, width, gates):
        rng = random.Random(seed)
        first = random_circuit(width, gates, rng)
        second = random_circuit(width, gates, rng)
        combined = first.then(second)
        assert depth(combined) <= depth(first) + depth(second)
