"""Property-based tests for the quantum substrate."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.random import random_circuit
from repro.quantum.apply import apply_circuit, apply_x
from repro.quantum.statevector import MINUS, ONE, PLUS, ZERO, product_state
from repro.quantum.swap_test import swap_test_probability

LABELS = [ZERO, ONE, PLUS, MINUS]

label_lists = st.lists(st.sampled_from(LABELS), min_size=1, max_size=4)


@st.composite
def circuits_and_states(draw):
    labels = draw(label_lists)
    seed = draw(st.integers(min_value=0, max_value=2**32 - 1))
    circuit = random_circuit(len(labels), 3 * len(labels), random.Random(seed))
    return circuit, product_state(labels)


class TestStateInvariants:
    @given(label_lists)
    @settings(max_examples=60, deadline=None)
    def test_product_states_are_normalised(self, labels):
        assert product_state(labels).is_normalized()

    @given(label_lists, label_lists)
    @settings(max_examples=60, deadline=None)
    def test_swap_test_probability_range(self, labels_a, labels_b):
        if len(labels_a) != len(labels_b):
            return
        probability = swap_test_probability(
            product_state(labels_a), product_state(labels_b)
        )
        assert 0.5 - 1e-9 <= probability <= 1.0 + 1e-9

    @given(label_lists)
    @settings(max_examples=40, deadline=None)
    def test_swap_test_of_identical_states_is_one(self, labels):
        state = product_state(labels)
        assert abs(swap_test_probability(state, state) - 1.0) < 1e-9


class TestCircuitActionInvariants:
    @given(circuits_and_states())
    @settings(max_examples=50, deadline=None)
    def test_applying_a_circuit_preserves_the_norm(self, pair):
        circuit, state = pair
        assert apply_circuit(circuit, state).is_normalized()

    @given(circuits_and_states(), circuits_and_states())
    @settings(max_examples=40, deadline=None)
    def test_unitarity_preserves_inner_products(self, pair_a, pair_b):
        circuit, state_a = pair_a
        _, state_b = pair_b
        if state_a.num_qubits != state_b.num_qubits:
            return
        before = abs(state_a.inner_product(state_b))
        after = abs(
            apply_circuit(circuit, state_a).inner_product(
                apply_circuit(circuit, state_b)
            )
        )
        assert abs(before - after) < 1e-9

    @given(label_lists, st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_x_on_plus_or_minus_changes_nothing_observable(self, labels, qubit):
        """The key fact behind Algorithm 1: X acts trivially on |+>, and on
        |-> only up to global phase."""
        if qubit >= len(labels):
            return
        if labels[qubit] not in (PLUS, MINUS):
            return
        state = product_state(labels)
        flipped = apply_x(state, qubit)
        assert abs(abs(state.inner_product(flipped)) - 1.0) < 1e-9
