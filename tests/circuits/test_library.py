"""Unit tests for the benchmark-function library."""

from __future__ import annotations

import pytest

from repro.bits import popcount
from repro.circuits import library
from repro.exceptions import CircuitError


class TestSmallCircuits:
    def test_figure2_example(self):
        circuit = library.figure2_example()
        assert circuit.num_lines == 3
        assert circuit.simulate(0b011) == 0b111

    def test_toffoli_chain_function(self):
        circuit = library.toffoli_chain(4)
        # Lines 0,1 set -> flips line 2; then lines 1,2 set -> flips line 3.
        assert circuit.simulate(0b0011) == 0b1111

    def test_toffoli_chain_needs_three_lines(self):
        with pytest.raises(CircuitError):
            library.toffoli_chain(2)

    def test_cnot_ladder(self):
        circuit = library.cnot_ladder(3)
        assert circuit.simulate(0b001) == 0b111

    def test_gray_code_and_inverse(self):
        forward = library.gray_code(5)
        backward = library.inverse_gray_code(5)
        for value in range(32):
            gray = forward.simulate(value)
            assert gray == value ^ (value >> 1)
            assert backward.simulate(gray) == value


class TestArithmetic:
    def test_increment_wraps_modulo(self):
        circuit = library.increment(4)
        for value in range(16):
            assert circuit.simulate(value) == (value + 1) % 16

    def test_decrement_is_inverse_of_increment(self):
        inc = library.increment(3)
        dec = library.decrement(3)
        assert inc.then(dec).is_identity()

    def test_ripple_adder_adds_in_place(self):
        adder = library.ripple_adder(3)
        for a in range(8):
            for b in range(8):
                output = adder.simulate(a | (b << 3))
                assert output & 0b111 == a
                assert output >> 3 == (a + b) % 8

    def test_ripple_adder_single_bit(self):
        adder = library.ripple_adder(1)
        assert adder.simulate(0b11) == 0b01  # 1 + 1 = 0 (mod 2), a preserved


class TestWirings:
    def test_bit_reversal(self):
        circuit = library.bit_reversal(4)
        assert circuit.simulate(0b0001) == 0b1000
        assert circuit.simulate(0b0110) == 0b0110

    def test_cyclic_line_shift(self):
        circuit = library.cyclic_line_shift(4, shift=1)
        assert circuit.simulate(0b0001) == 0b0010
        assert circuit.simulate(0b1000) == 0b0001

    def test_hidden_shift_is_xor_mask(self):
        circuit = library.hidden_shift(0b101, 3)
        for value in range(8):
            assert circuit.simulate(value) == value ^ 0b101

    def test_hidden_shift_rejects_oversized_mask(self):
        with pytest.raises(CircuitError):
            library.hidden_shift(0b1000, 3)


class TestHwbAndCatalogue:
    def test_hidden_weighted_bit_semantics(self):
        circuit = library.hidden_weighted_bit(4)
        for value in range(16):
            weight = popcount(value)
            rotated = ((value << weight) | (value >> (4 - weight))) & 0xF if weight % 4 else value
            assert circuit.simulate(value) == rotated

    def test_catalogue_entries_build_valid_circuits(self):
        for name, factory in library.catalogue(4).items():
            circuit = factory()
            assert circuit.num_lines == 4, name
            assert sorted(circuit.truth_table()) == list(range(16)), name

    def test_catalogue_scales_with_line_count(self):
        assert "adder" in library.catalogue(6)
        assert "adder" not in library.catalogue(5)
        assert "hwb" not in library.catalogue(9)
