"""Unit tests for repro.circuits.transforms (including the Fig. 4 identity)."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.line_permutation import LinePermutation
from repro.circuits.random import (
    random_circuit,
    random_line_permutation,
    random_negation,
)
from repro.circuits.transforms import (
    apply_input_negation,
    apply_input_permutation,
    apply_output_negation,
    apply_output_permutation,
    commute_negation_then_permutation,
    commute_permutation_then_negation,
    negation_circuit,
    negation_mask,
    permutation_circuit,
    transformed_circuit,
)
from repro.exceptions import CircuitError


class TestNegationCircuit:
    def test_negation_mask_packs_bits(self):
        assert negation_mask([True, False, True]) == 0b101

    def test_negation_circuit_xors_mask(self):
        nu = [True, False, True, False]
        circuit = negation_circuit(nu)
        for value in range(16):
            assert circuit.simulate(value) == value ^ 0b0101

    def test_empty_negation_is_identity(self):
        assert negation_circuit([False, False]).is_identity()


class TestPermutationCircuit:
    def test_permutation_circuit_matches_line_permutation(self, rng):
        for _ in range(20):
            pi = random_line_permutation(5, rng)
            circuit = permutation_circuit(pi)
            for _ in range(10):
                value = rng.getrandbits(5)
                assert circuit.simulate(value) == pi.apply_to_vector(value)

    def test_identity_permutation_has_no_gates(self):
        assert permutation_circuit(LinePermutation.identity(4)).num_gates == 0

    def test_accepts_plain_sequences(self):
        circuit = permutation_circuit([1, 0])
        assert circuit.simulate(0b01) == 0b10


class TestApplyHelpers:
    def test_input_negation_semantics(self, small_random_circuit, rng):
        nu = random_negation(4, rng)
        mask = negation_mask(nu)
        wrapped = apply_input_negation(small_random_circuit, nu)
        for value in range(16):
            assert wrapped.simulate(value) == small_random_circuit.simulate(value ^ mask)

    def test_output_negation_semantics(self, small_random_circuit, rng):
        nu = random_negation(4, rng)
        mask = negation_mask(nu)
        wrapped = apply_output_negation(small_random_circuit, nu)
        for value in range(16):
            assert wrapped.simulate(value) == small_random_circuit.simulate(value) ^ mask

    def test_input_permutation_semantics(self, small_random_circuit, rng):
        pi = random_line_permutation(4, rng)
        wrapped = apply_input_permutation(small_random_circuit, pi)
        for value in range(16):
            assert wrapped.simulate(value) == small_random_circuit.simulate(
                pi.apply_to_vector(value)
            )

    def test_output_permutation_semantics(self, small_random_circuit, rng):
        pi = random_line_permutation(4, rng)
        wrapped = apply_output_permutation(small_random_circuit, pi)
        for value in range(16):
            assert wrapped.simulate(value) == pi.apply_to_vector(
                small_random_circuit.simulate(value)
            )

    def test_size_mismatch_rejected(self, small_random_circuit):
        with pytest.raises(CircuitError):
            apply_input_negation(small_random_circuit, [True, False])
        with pytest.raises(CircuitError):
            apply_input_permutation(small_random_circuit, [0, 1, 2])


class TestTransformedCircuit:
    def test_all_sides_composed_in_canonical_order(self, rng):
        base = random_circuit(4, 12, rng)
        nu_x = random_negation(4, rng)
        pi_x = random_line_permutation(4, rng)
        nu_y = random_negation(4, rng)
        pi_y = random_line_permutation(4, rng)
        combined = transformed_circuit(base, nu_x=nu_x, pi_x=pi_x, nu_y=nu_y, pi_y=pi_y)
        mask_x = negation_mask(nu_x)
        mask_y = negation_mask(nu_y)
        for value in range(16):
            expected = pi_y.apply_to_vector(
                base.simulate(pi_x.apply_to_vector(value ^ mask_x)) ^ mask_y
            )
            assert combined.simulate(value) == expected

    def test_none_components_are_skipped(self, small_random_circuit):
        unchanged = transformed_circuit(small_random_circuit)
        assert unchanged.functionally_equal(small_random_circuit)


class TestFigure4Identity:
    def test_commute_negation_then_permutation(self, rng):
        for _ in range(25):
            nu = random_negation(5, rng)
            pi = random_line_permutation(5, rng)
            nu_prime, pi_same = commute_negation_then_permutation(nu, pi)
            # C_pi C_nu == C_nu' C_pi as circuits.
            left = negation_circuit(nu).then(permutation_circuit(pi))
            right = permutation_circuit(pi_same).then(negation_circuit(nu_prime))
            assert left.functionally_equal(right)

    def test_commute_permutation_then_negation(self, rng):
        for _ in range(25):
            nu = random_negation(5, rng)
            pi = random_line_permutation(5, rng)
            pi_same, nu_prime = commute_permutation_then_negation(pi, nu)
            # C_nu C_pi == C_pi C_nu' as circuits.
            left = permutation_circuit(pi).then(negation_circuit(nu))
            right = negation_circuit(nu_prime).then(permutation_circuit(pi_same))
            assert left.functionally_equal(right)

    def test_commute_roundtrip(self, rng):
        nu = random_negation(6, rng)
        pi = random_line_permutation(6, rng)
        nu_prime, _ = commute_negation_then_permutation(nu, pi)
        _, nu_back = commute_permutation_then_negation(pi, nu_prime)
        assert nu_back == [bool(v) for v in nu]

    def test_commute_size_mismatch(self):
        with pytest.raises(CircuitError):
            commute_negation_then_permutation([True], LinePermutation([0, 1]))
        with pytest.raises(CircuitError):
            commute_permutation_then_negation(LinePermutation([0, 1]), [True])
