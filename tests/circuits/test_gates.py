"""Unit tests for repro.circuits.gates."""

from __future__ import annotations

import pytest

from repro.circuits.gates import (
    Control,
    MCTGate,
    SwapGate,
    cnot,
    fredkin,
    mct,
    not_gate,
    toffoli,
)
from repro.exceptions import GateError


class TestControl:
    def test_positive_control_fires_on_one(self):
        control = Control(2, positive=True)
        assert control.is_satisfied_by(0b100)
        assert not control.is_satisfied_by(0b011)

    def test_negative_control_fires_on_zero(self):
        control = Control(1, positive=False)
        assert control.is_satisfied_by(0b000)
        assert not control.is_satisfied_by(0b010)

    def test_negated_flips_polarity(self):
        control = Control(0, positive=True)
        assert control.negated() == Control(0, positive=False)

    def test_negative_line_rejected(self):
        with pytest.raises(GateError):
            Control(-1)


class TestMCTGate:
    def test_not_gate_always_flips_target(self):
        gate = not_gate(1)
        assert gate.apply(0b000) == 0b010
        assert gate.apply(0b010) == 0b000

    def test_cnot_flips_only_when_control_set(self):
        gate = cnot(0, 2)
        assert gate.apply(0b001) == 0b101
        assert gate.apply(0b000) == 0b000

    def test_negative_cnot_flips_when_control_clear(self):
        gate = cnot(0, 2, positive=False)
        assert gate.apply(0b000) == 0b100
        assert gate.apply(0b001) == 0b001

    def test_toffoli_requires_both_controls(self):
        gate = toffoli(0, 1, 2)
        assert gate.apply(0b011) == 0b111
        assert gate.apply(0b001) == 0b001
        assert gate.apply(0b010) == 0b010

    def test_mixed_polarity_mct(self):
        gate = mct([0, 1, 2], 3, polarities=[True, False, True])
        # Fires when line0=1, line1=0, line2=1.
        assert gate.apply(0b0101) == 0b1101
        assert gate.apply(0b0111) == 0b0111

    def test_gate_is_involution(self):
        gate = mct([0, 2], 1, polarities=[True, False])
        for value in range(8):
            assert gate.apply(gate.apply(value)) == value

    def test_inverse_is_self(self):
        gate = toffoli(0, 1, 2)
        assert gate.inverse() is gate

    def test_target_overlapping_control_rejected(self):
        with pytest.raises(GateError):
            MCTGate((Control(1),), 1)

    def test_duplicate_control_rejected(self):
        with pytest.raises(GateError):
            MCTGate((Control(0), Control(0, positive=False)), 1)

    def test_controls_are_order_normalised(self):
        gate_a = MCTGate((Control(2), Control(0)), 1)
        gate_b = MCTGate((Control(0), Control(2)), 1)
        assert gate_a == gate_b
        assert hash(gate_a) == hash(gate_b)

    def test_lines_and_max_line(self):
        gate = mct([0, 3], 5)
        assert gate.lines == frozenset({0, 3, 5})
        assert gate.max_line == 5

    def test_remapped(self):
        gate = toffoli(0, 1, 2)
        remapped = gate.remapped([2, 1, 0])
        assert remapped.target == 0
        assert remapped.control_lines == (1, 2)

    def test_with_polarity_flipped(self):
        gate = toffoli(0, 1, 2)
        flipped = gate.with_polarity_flipped(0)
        polarities = {control.line: control.positive for control in flipped.controls}
        assert polarities == {0: False, 1: True}

    def test_with_polarity_flipped_missing_line(self):
        with pytest.raises(GateError):
            toffoli(0, 1, 2).with_polarity_flipped(3)

    def test_polarity_count_mismatch_rejected(self):
        with pytest.raises(GateError):
            mct([0, 1], 2, polarities=[True])

    def test_str_forms(self):
        assert "NOT" in str(not_gate(0))
        assert "MCT" in str(toffoli(0, 1, 2))


class TestSwapGate:
    def test_swap_exchanges_bits(self):
        gate = SwapGate(0, 2)
        assert gate.apply(0b001) == 0b100
        assert gate.apply(0b100) == 0b001
        assert gate.apply(0b101) == 0b101

    def test_swap_is_symmetric_value(self):
        assert SwapGate(3, 1) == SwapGate(1, 3)

    def test_swap_same_line_rejected(self):
        with pytest.raises(GateError):
            SwapGate(2, 2)

    def test_swap_to_cnots_equivalent(self):
        gate = SwapGate(0, 1)
        for value in range(4):
            expected = gate.apply(value)
            result = value
            for cnot_gate in gate.to_cnots():
                result = cnot_gate.apply(result)
            assert result == expected

    def test_swap_remapped(self):
        gate = SwapGate(0, 1)
        assert gate.remapped([2, 0, 1]) == SwapGate(0, 2)


class TestFredkin:
    def test_fredkin_swaps_only_when_control_set(self):
        gates = fredkin(0, 1, 2)

        def run(value: int) -> int:
            for gate in gates:
                value = gate.apply(value)
            return value

        # Control clear: targets unchanged.
        assert run(0b010) == 0b010
        assert run(0b100) == 0b100
        # Control set: lines 1 and 2 swap.
        assert run(0b011) == 0b101
        assert run(0b101) == 0b011
        assert run(0b111) == 0b111
