"""Unit tests for repro.circuits.permutation."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import not_gate
from repro.circuits.permutation import Permutation
from repro.circuits.random import random_permutation
from repro.exceptions import PermutationError


class TestConstruction:
    def test_identity(self):
        identity = Permutation.identity(3)
        assert identity.is_identity()
        assert identity.size == 8

    def test_rejects_non_permutation(self):
        with pytest.raises(PermutationError):
            Permutation([0, 0, 1, 2])

    def test_rejects_non_power_of_two_length(self):
        with pytest.raises(PermutationError):
            Permutation([0, 1, 2])

    def test_from_circuit(self):
        circuit = ReversibleCircuit(2, [not_gate(0)])
        permutation = Permutation.from_circuit(circuit)
        assert list(permutation.mapping) == [1, 0, 3, 2]

    def test_from_function(self):
        permutation = Permutation.from_function(lambda x: x ^ 0b11, 2)
        assert permutation(0) == 3
        assert permutation(3) == 0


class TestAlgebra:
    def test_inverse(self, rng):
        permutation = random_permutation(4, rng)
        inverse = permutation.inverse()
        for value in range(16):
            assert inverse(permutation(value)) == value

    def test_compose_order(self):
        shift = Permutation.from_function(lambda x: (x + 1) % 8, 3)
        double_shift = shift.compose(shift)
        assert double_shift(0) == 2

    def test_matmul_matches_compose(self, rng):
        p = random_permutation(3, rng)
        q = random_permutation(3, rng)
        assert (p @ q) == p.compose(q)

    def test_compose_size_mismatch(self):
        with pytest.raises(PermutationError):
            Permutation.identity(2).compose(Permutation.identity(3))

    def test_apply_bits(self):
        permutation = Permutation.from_function(lambda x: x ^ 0b01, 2)
        assert permutation.apply_bits([0, 0]) == [1, 0]


class TestAnalysis:
    def test_cycles_of_swap(self):
        permutation = Permutation([1, 0, 3, 2])
        assert sorted(permutation.cycles()) == [(0, 1), (2, 3)]

    def test_fixed_points(self):
        permutation = Permutation([0, 2, 1, 3])
        assert permutation.fixed_points() == [0, 3]

    def test_order(self):
        cycle3 = Permutation([1, 2, 0, 3])
        assert cycle3.order() == 3
        assert Permutation.identity(2).order() == 1

    def test_parity(self):
        transposition = Permutation([1, 0, 2, 3])
        assert transposition.parity() == 1
        assert Permutation.identity(2).parity() == 0

    def test_hamming_weight_profile_counts_all_entries(self, rng):
        permutation = random_permutation(3, rng)
        profile = permutation.hamming_weight_profile()
        assert sum(profile.values()) == 8

    def test_equality_and_hash(self):
        a = Permutation([1, 0, 3, 2])
        b = Permutation([1, 0, 3, 2])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Permutation.identity(2)
