"""Unit tests for repro.circuits.line_permutation."""

from __future__ import annotations

import pytest

from repro.circuits.line_permutation import LinePermutation
from repro.exceptions import PermutationError


class TestConstruction:
    def test_identity(self):
        pi = LinePermutation.identity(4)
        assert pi.is_identity()
        assert pi.mapping == (0, 1, 2, 3)

    def test_rejects_non_permutation(self):
        with pytest.raises(PermutationError):
            LinePermutation([0, 0, 1])

    def test_from_cycles(self):
        pi = LinePermutation.from_cycles(4, (0, 2, 1))
        assert pi[0] == 2
        assert pi[2] == 1
        assert pi[1] == 0
        assert pi[3] == 3

    def test_from_cycles_rejects_overlap(self):
        with pytest.raises(PermutationError):
            LinePermutation.from_cycles(4, (0, 1), (1, 2))

    def test_from_cycles_rejects_out_of_range(self):
        with pytest.raises(PermutationError):
            LinePermutation.from_cycles(3, (0, 5))


class TestSemantics:
    def test_apply_to_vector_moves_bits(self):
        pi = LinePermutation([1, 2, 0])  # line0->line1, line1->line2, line2->line0
        assert pi.apply_to_vector(0b001) == 0b010
        assert pi.apply_to_vector(0b010) == 0b100
        assert pi.apply_to_vector(0b100) == 0b001

    def test_apply_to_bits(self):
        pi = LinePermutation([2, 0, 1])
        assert pi.apply_to_bits([1, 0, 0]) == [0, 0, 1]

    def test_apply_to_bits_length_mismatch(self):
        with pytest.raises(PermutationError):
            LinePermutation([0, 1]).apply_to_bits([1, 0, 0])

    def test_inverse_roundtrip(self):
        pi = LinePermutation([2, 0, 3, 1])
        inverse = pi.inverse()
        for value in range(16):
            assert inverse.apply_to_vector(pi.apply_to_vector(value)) == value

    def test_compose_order(self):
        first = LinePermutation([1, 0, 2])
        second = LinePermutation([0, 2, 1])
        composed = second.compose(first)
        # Line 0 goes to 1 under `first`, then 1 goes to 2 under `second`.
        assert composed[0] == 2

    def test_compose_size_mismatch(self):
        with pytest.raises(PermutationError):
            LinePermutation([0, 1]).compose(LinePermutation([0, 1, 2]))

    def test_to_permutation_agrees_with_vector_action(self):
        pi = LinePermutation([1, 2, 0])
        lifted = pi.to_permutation()
        for value in range(8):
            assert lifted(value) == pi.apply_to_vector(value)

    def test_cycles(self):
        pi = LinePermutation([1, 0, 3, 2])
        assert sorted(pi.cycles()) == [(0, 1), (2, 3)]

    def test_equality_with_sequences(self):
        pi = LinePermutation([2, 1, 0])
        assert pi == [2, 1, 0]
        assert pi == (2, 1, 0)
        assert pi == LinePermutation([2, 1, 0])
        assert pi != LinePermutation([0, 1, 2])
