"""Unit tests for the RevLib .real reader/writer."""

from __future__ import annotations

import pytest

from repro.circuits.gates import MCTGate, SwapGate
from repro.circuits.io.real import circuit_to_real, parse_real, read_real, write_real
from repro.circuits.random import random_circuit
from repro.exceptions import ParseError

EXAMPLE = """
# toffoli example
.version 2.0
.numvars 3
.variables a b c
.inputs a b c
.outputs a b c
.constants ---
.garbage ---
.begin
t3 a b c
t1 a
t2 -a b
f2 b c
.end
"""


class TestParsing:
    def test_parse_example(self):
        circuit = parse_real(EXAMPLE)
        assert circuit.num_lines == 3
        assert circuit.num_gates == 4
        assert isinstance(circuit.gates[0], MCTGate)
        assert circuit.gates[0].num_controls == 2
        assert isinstance(circuit.gates[3], SwapGate)

    def test_negative_control_parsed(self):
        circuit = parse_real(EXAMPLE)
        gate = circuit.gates[2]
        control = gate.controls[0]
        assert control.line == 0
        assert not control.positive

    def test_variables_inferred_from_numvars(self):
        circuit = parse_real(".numvars 2\n.begin\nt1 x1\n.end\n")
        assert circuit.num_lines == 2

    def test_numvars_inferred_from_variables(self):
        circuit = parse_real(".variables p q r\n.begin\nt1 r\n.end\n")
        assert circuit.num_lines == 3

    def test_missing_headers_rejected(self):
        with pytest.raises(ParseError):
            parse_real(".begin\nt1 a\n.end\n")

    def test_gate_outside_body_rejected(self):
        with pytest.raises(ParseError):
            parse_real(".numvars 1\nt1 x0\n")

    def test_unknown_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_real(".numvars 1\n.variables a\n.begin\nt1 z\n.end\n")

    def test_unknown_gate_type_rejected(self):
        with pytest.raises(ParseError):
            parse_real(".numvars 1\n.variables a\n.begin\nq1 a\n.end\n")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_real(".numvars 2\n.variables a b\n.begin\nt3 a b\n.end\n")

    def test_numvars_variables_conflict_rejected(self):
        with pytest.raises(ParseError):
            parse_real(".numvars 3\n.variables a b\n.begin\n.end\n")

    def test_controlled_fredkin_expanded(self):
        circuit = parse_real(
            ".numvars 3\n.variables a b c\n.begin\nf3 a b c\n.end\n"
        )
        # Controlled swap: control a, swap b and c.
        assert circuit.simulate(0b011) == 0b101
        assert circuit.simulate(0b010) == 0b010


class TestRoundTrip:
    def test_serialise_parse_roundtrip(self, rng):
        for _ in range(5):
            circuit = random_circuit(5, 15, rng)
            restored = parse_real(circuit_to_real(circuit))
            assert restored.functionally_equal(circuit)

    def test_swap_survives_roundtrip(self):
        from repro.circuits.circuit import ReversibleCircuit

        circuit = ReversibleCircuit(3, [SwapGate(0, 2)])
        restored = parse_real(circuit_to_real(circuit))
        assert restored.functionally_equal(circuit)

    def test_file_roundtrip(self, tmp_path, rng):
        circuit = random_circuit(4, 10, rng)
        path = tmp_path / "example.real"
        write_real(circuit, path)
        restored = read_real(path)
        assert restored.functionally_equal(circuit)
        assert restored.name == "example"
