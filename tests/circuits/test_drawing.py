"""Unit tests for the ASCII circuit renderer."""

from __future__ import annotations

import pytest

from repro.circuits import library
from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.drawing import draw
from repro.circuits.gates import SwapGate, cnot, mct, not_gate, toffoli


class TestDraw:
    def test_figure2_unicode(self):
        text = draw(library.figure2_example())
        lines = text.splitlines()
        assert len(lines) == 3
        assert "●" in lines[0]
        assert "●" in lines[1]
        assert "⊕" in lines[2]

    def test_figure2_ascii(self):
        text = draw(library.figure2_example(), ascii_only=True)
        assert "*" in text
        assert "+" in text
        assert "●" not in text

    def test_negative_control_glyph(self):
        circuit = ReversibleCircuit(2, [cnot(0, 1, positive=False)])
        text = draw(circuit)
        assert "○" in text.splitlines()[0]

    def test_swap_glyphs(self):
        circuit = ReversibleCircuit(3, [SwapGate(0, 2)])
        lines = draw(circuit).splitlines()
        assert "✕" in lines[0]
        assert "│" in lines[1]
        assert "✕" in lines[2]

    def test_bridge_through_untouched_middle_line(self):
        circuit = ReversibleCircuit(3, [mct([0], 2)])
        lines = draw(circuit).splitlines()
        assert "│" in lines[1]

    def test_idle_lines_are_plain_wires(self):
        circuit = ReversibleCircuit(3, [not_gate(0)])
        lines = draw(circuit).splitlines()
        assert "⊕" in lines[0]
        assert set(lines[2].split()[-1]) == {"─"}

    def test_custom_labels_and_width(self):
        circuit = ReversibleCircuit(2, [cnot(0, 1)])
        text = draw(circuit, line_labels=["carry", "sum"])
        lines = text.splitlines()
        assert lines[0].startswith("carry")
        assert lines[1].startswith("  sum")

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            draw(library.figure2_example(), line_labels=["a", "b"])

    def test_empty_circuit_draws_wires_only(self):
        text = draw(ReversibleCircuit(2))
        assert len(text.splitlines()) == 2
        assert "⊕" not in text

    def test_one_column_per_gate(self):
        circuit = ReversibleCircuit(2, [not_gate(0), not_gate(1), cnot(0, 1)])
        top = draw(circuit, column_spacing=1).splitlines()[0]
        # Three gate columns: NOT target, wire, control.
        assert top.count("⊕") == 1
        assert top.count("●") == 1


class TestDrawnGateOrdering:
    def test_columns_follow_application_order(self):
        circuit = ReversibleCircuit(2, [not_gate(0), cnot(0, 1)])
        lines = draw(circuit).splitlines()
        first_gate_column = lines[0].index("⊕")
        second_gate_column = lines[0].index("●")
        assert first_gate_column < second_gate_column

    def test_toffoli_column_spans_all_three_lines(self):
        lines = draw(ReversibleCircuit(3, [toffoli(0, 2, 1)])).splitlines()
        column = lines[0].index("●")
        assert lines[1][column] == "⊕"
        assert lines[2][column] == "●"
