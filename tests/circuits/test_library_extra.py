"""Unit tests for the extended benchmark-function library."""

from __future__ import annotations

import pytest

from repro.bits import parity
from repro.circuits import library
from repro.exceptions import CircuitError


class TestMultiplier:
    def test_two_bit_multiplier_accumulates_product(self):
        circuit = library.multiplier(2)
        assert circuit.num_lines == 8
        for a in range(4):
            for b in range(4):
                for p in range(4):  # a few accumulator presets
                    value = a | (b << 2) | (p << 4)
                    output = circuit.simulate(value)
                    assert output & 0b11 == a
                    assert (output >> 2) & 0b11 == b
                    assert output >> 4 == (p + a * b) % 16

    def test_one_bit_multiplier_is_a_toffoli_like_accumulator(self):
        circuit = library.multiplier(1)
        # (a, b, p) -> (a, b, p + a*b mod 4) on 4 lines.
        assert circuit.simulate(0b0011) == 0b0111
        assert circuit.simulate(0b0001) == 0b0001

    def test_multiplier_is_reversible(self):
        table = library.multiplier(1).truth_table()
        assert sorted(table) == list(range(16))

    def test_invalid_width_rejected(self):
        with pytest.raises(CircuitError):
            library.multiplier(0)


class TestParityAccumulator:
    def test_parity_lands_on_line_zero(self):
        circuit = library.parity_accumulator(5)
        for value in range(32):
            output = circuit.simulate(value)
            assert output & 1 == parity(value)
            assert output >> 1 == value >> 1

    def test_single_line_is_identity(self):
        assert library.parity_accumulator(1).is_identity()


class TestFredkinStage:
    def test_swaps_pairs_when_control_set(self):
        circuit = library.fredkin_stage(5)
        # control = line 0; pairs (1,2) and (3,4).
        assert circuit.simulate(0b00011) == 0b00101
        assert circuit.simulate(0b01001) == 0b10001

    def test_identity_when_control_clear(self):
        circuit = library.fredkin_stage(5)
        for value in range(0, 32, 2):  # control bit clear
            assert circuit.simulate(value) == value

    def test_odd_trailing_line_untouched(self):
        circuit = library.fredkin_stage(4)
        assert circuit.simulate(0b1001) == 0b1001

    def test_needs_three_lines(self):
        with pytest.raises(CircuitError):
            library.fredkin_stage(2)


class TestCatalogueExtensions:
    def test_new_entries_present(self):
        entries = library.catalogue(4)
        assert "parity" in entries
        assert "fredkin_stage" in entries
        assert "multiplier" in entries

    def test_multiplier_only_on_multiples_of_four(self):
        assert "multiplier" not in library.catalogue(6)

    def test_all_entries_still_valid(self):
        for name, factory in library.catalogue(8).items():
            circuit = factory()
            assert circuit.num_lines == 8, name
            # spot-check reversibility on a sample of inputs
            outputs = {circuit.simulate(value) for value in range(0, 256, 17)}
            assert len(outputs) == len(range(0, 256, 17)), name
