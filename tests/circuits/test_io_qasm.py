"""Unit tests for the OpenQASM exporter/importer."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import SwapGate, mct, not_gate, toffoli
from repro.circuits.io.qasm import circuit_to_qasm, qasm_to_circuit
from repro.circuits.random import random_circuit
from repro.exceptions import ParseError


class TestExport:
    def test_header_and_register(self):
        text = circuit_to_qasm(ReversibleCircuit(3, [not_gate(0)]))
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[3];" in text
        assert "x q[0];" in text

    def test_toffoli_exported_as_ccx(self):
        text = circuit_to_qasm(ReversibleCircuit(3, [toffoli(0, 1, 2)]))
        assert "ccx q[0], q[1], q[2];" in text

    def test_negative_controls_wrapped_in_x(self):
        gate = mct([0, 1], 2, polarities=[False, True])
        text = circuit_to_qasm(ReversibleCircuit(3, [gate]))
        assert text.count("x q[0];") == 2

    def test_large_mct_uses_mcx(self):
        gate = mct([0, 1, 2], 3)
        text = circuit_to_qasm(ReversibleCircuit(4, [gate]))
        assert "mcx" in text


class TestImport:
    def test_missing_qreg_rejected(self):
        with pytest.raises(ParseError):
            qasm_to_circuit("OPENQASM 2.0;\nx q[0];")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            qasm_to_circuit("OPENQASM 2.0;\nqreg q[1];\nx q[0]")

    def test_unsupported_statement_rejected(self):
        with pytest.raises(ParseError):
            qasm_to_circuit("OPENQASM 2.0;\nqreg q[1];\nh q[0];")

    def test_comments_ignored(self):
        circuit = qasm_to_circuit(
            "OPENQASM 2.0;\nqreg q[2];\n// a comment\ncx q[0], q[1];\n"
        )
        assert circuit.num_gates == 1


class TestRoundTrip:
    def test_random_circuits_roundtrip(self, rng):
        for _ in range(5):
            circuit = random_circuit(5, 15, rng)
            restored = qasm_to_circuit(circuit_to_qasm(circuit))
            assert restored.functionally_equal(circuit)

    def test_swap_roundtrip(self):
        circuit = ReversibleCircuit(4, [SwapGate(1, 3)])
        restored = qasm_to_circuit(circuit_to_qasm(circuit))
        assert restored.functionally_equal(circuit)
