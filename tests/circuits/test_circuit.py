"""Unit tests for repro.circuits.circuit."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import SwapGate, cnot, not_gate, toffoli
from repro.circuits.random import random_circuit
from repro.exceptions import CircuitError


class TestConstruction:
    def test_empty_circuit_is_identity(self):
        circuit = ReversibleCircuit(3)
        assert circuit.is_identity()
        assert circuit.num_gates == 0

    def test_zero_lines_rejected(self):
        with pytest.raises(CircuitError):
            ReversibleCircuit(0)

    def test_gate_beyond_lines_rejected(self):
        circuit = ReversibleCircuit(2)
        with pytest.raises(CircuitError):
            circuit.append(not_gate(5))

    def test_append_returns_self_for_chaining(self):
        circuit = ReversibleCircuit(2)
        assert circuit.append(not_gate(0)) is circuit

    def test_extend_and_len(self):
        circuit = ReversibleCircuit(3, [not_gate(0)])
        circuit.extend([cnot(0, 1), toffoli(0, 1, 2)])
        assert len(circuit) == 3

    def test_copy_is_independent(self):
        circuit = ReversibleCircuit(2, [not_gate(0)])
        duplicate = circuit.copy()
        duplicate.append(not_gate(1))
        assert circuit.num_gates == 1
        assert duplicate.num_gates == 2

    def test_gate_counts(self):
        circuit = ReversibleCircuit(
            4, [not_gate(0), cnot(0, 1), toffoli(0, 1, 2), SwapGate(2, 3)]
        )
        assert circuit.gate_counts() == {
            "NOT": 1,
            "CNOT": 1,
            "TOFFOLI": 1,
            "SWAP": 1,
        }


class TestSimulation:
    def test_figure2_semantics(self, toffoli_circuit):
        # o2 = i2 XOR (i0 AND i1), other lines unchanged.
        assert toffoli_circuit.simulate(0b011) == 0b111
        assert toffoli_circuit.simulate(0b111) == 0b011
        assert toffoli_circuit.simulate(0b001) == 0b001

    def test_simulate_accepts_bit_list(self, toffoli_circuit):
        assert toffoli_circuit.simulate([1, 1, 0]) == 0b111
        assert toffoli_circuit.simulate_bits([1, 1, 0]) == [1, 1, 1]

    def test_simulate_rejects_out_of_range(self, toffoli_circuit):
        with pytest.raises(CircuitError):
            toffoli_circuit.simulate(8)
        with pytest.raises(CircuitError):
            toffoli_circuit.simulate([1, 0])

    def test_truth_table_is_permutation(self, small_random_circuit):
        table = small_random_circuit.truth_table()
        assert sorted(table) == list(range(16))

    def test_functionally_equal_detects_difference(self):
        identity = ReversibleCircuit(2)
        flip = ReversibleCircuit(2, [not_gate(0)])
        assert not identity.functionally_equal(flip)
        assert identity.functionally_equal(ReversibleCircuit(2))

    def test_functionally_equal_different_widths(self):
        assert not ReversibleCircuit(2).functionally_equal(ReversibleCircuit(3))


class TestComposition:
    def test_inverse_roundtrip(self, small_random_circuit):
        composed = small_random_circuit.then(small_random_circuit.inverse())
        assert composed.is_identity()

    def test_then_order(self):
        first = ReversibleCircuit(2, [not_gate(0)])
        second = ReversibleCircuit(2, [cnot(0, 1)])
        combined = first.then(second)
        # NOT on line0 then CNOT(0->1): input 00 -> 01 -> 11.
        assert combined.simulate(0b00) == 0b11

    def test_matmul_is_operator_order(self):
        first = ReversibleCircuit(2, [not_gate(0)])
        second = ReversibleCircuit(2, [cnot(0, 1)])
        combined = second @ first  # apply first, then second
        assert combined.simulate(0b00) == 0b11

    def test_then_rejects_mismatched_widths(self):
        with pytest.raises(CircuitError):
            ReversibleCircuit(2).then(ReversibleCircuit(3))

    def test_remapped_relabels_lines(self, toffoli_circuit):
        remapped = toffoli_circuit.remapped([2, 1, 0])
        # Target is now line 0, controls on lines 1 and 2.
        assert remapped.simulate(0b110) == 0b111

    def test_remapped_rejects_non_permutation(self, toffoli_circuit):
        with pytest.raises(CircuitError):
            toffoli_circuit.remapped([0, 0, 1])

    def test_with_lines_embeds(self, toffoli_circuit):
        wide = toffoli_circuit.with_lines(5)
        assert wide.num_lines == 5
        assert wide.simulate(0b00011) == 0b00111

    def test_with_lines_cannot_shrink(self, toffoli_circuit):
        with pytest.raises(CircuitError):
            toffoli_circuit.with_lines(2)

    def test_decomposed_swaps_preserves_function(self, rng):
        circuit = ReversibleCircuit(4, [SwapGate(0, 3), cnot(1, 2), SwapGate(1, 2)])
        expanded = circuit.decomposed_swaps()
        assert expanded.functionally_equal(circuit)
        assert all(not isinstance(gate, SwapGate) for gate in expanded)


class TestDunder:
    def test_structural_equality_and_hash(self):
        a = ReversibleCircuit(2, [not_gate(0)])
        b = ReversibleCircuit(2, [not_gate(0)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != ReversibleCircuit(2, [not_gate(1)])

    def test_repr_and_str_mention_name(self):
        circuit = ReversibleCircuit(2, [not_gate(0)], name="demo")
        assert "demo" in repr(circuit)
        assert "demo" in str(circuit)

    def test_iteration_yields_gates(self, small_random_circuit):
        assert list(small_random_circuit) == list(small_random_circuit.gates)
