"""Unit tests for repro.circuits.random."""

from __future__ import annotations

import random

from repro.circuits.gates import MCTGate
from repro.circuits.random import (
    coerce_rng,
    random_circuit,
    random_line_permutation,
    random_mct_gate,
    random_negation,
    random_non_identity_line_permutation,
    random_non_identity_negation,
    random_permutation,
)


class TestCoerceRng:
    def test_none_gives_fresh_generator(self):
        assert isinstance(coerce_rng(None), random.Random)

    def test_int_seeds_deterministically(self):
        assert coerce_rng(5).random() == coerce_rng(5).random()

    def test_existing_generator_passes_through(self):
        rng = random.Random(1)
        assert coerce_rng(rng) is rng


class TestGenerators:
    def test_random_negation_shape(self, rng):
        nu = random_negation(6, rng)
        assert len(nu) == 6
        assert all(isinstance(value, bool) for value in nu)

    def test_random_non_identity_negation_negates_something(self, rng):
        for _ in range(20):
            assert any(random_non_identity_negation(3, rng))

    def test_random_line_permutation_is_valid(self, rng):
        pi = random_line_permutation(7, rng)
        assert sorted(pi.mapping) == list(range(7))

    def test_random_non_identity_line_permutation_moves_a_line(self, rng):
        for _ in range(20):
            assert not random_non_identity_line_permutation(3, rng).is_identity()

    def test_random_permutation_is_valid(self, rng):
        permutation = random_permutation(4, rng)
        assert sorted(permutation.mapping) == list(range(16))

    def test_seeded_runs_are_reproducible(self):
        a = random_circuit(5, 20, rng=99)
        b = random_circuit(5, 20, rng=99)
        assert a == b

    def test_random_mct_gate_respects_max_controls(self, rng):
        for _ in range(50):
            gate = random_mct_gate(6, rng, max_controls=2)
            assert gate.num_controls <= 2

    def test_random_mct_gate_positive_only(self, rng):
        for _ in range(50):
            gate = random_mct_gate(5, rng, allow_negative_controls=False)
            assert all(control.positive for control in gate.controls)

    def test_random_circuit_shape(self, rng):
        circuit = random_circuit(5, 17, rng)
        assert circuit.num_lines == 5
        assert circuit.num_gates == 17
        assert all(isinstance(gate, MCTGate) for gate in circuit)

    def test_random_circuit_is_reversible(self, rng):
        circuit = random_circuit(4, 25, rng)
        assert sorted(circuit.truth_table()) == list(range(16))
