"""Unit tests for the circuit cost metrics."""

from __future__ import annotations

from repro.circuits import library
from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import SwapGate, cnot, mct, not_gate, toffoli
from repro.circuits.metrics import depth, metrics, quantum_cost, t_count_estimate


class TestQuantumCost:
    def test_not_and_cnot_cost_one(self):
        circuit = ReversibleCircuit(2, [not_gate(0), cnot(0, 1)])
        assert quantum_cost(circuit) == 2

    def test_toffoli_costs_five(self):
        assert quantum_cost(ReversibleCircuit(3, [toffoli(0, 1, 2)])) == 5

    def test_swap_costs_three(self):
        assert quantum_cost(ReversibleCircuit(2, [SwapGate(0, 1)])) == 3

    def test_large_mct_table(self):
        circuit = ReversibleCircuit(5, [mct([0, 1, 2, 3], 4)])
        assert quantum_cost(circuit) == (1 << 5) - 3

    def test_empty_circuit_costs_zero(self):
        assert quantum_cost(ReversibleCircuit(3)) == 0


class TestTCount:
    def test_clifford_gates_cost_zero(self):
        circuit = ReversibleCircuit(3, [not_gate(0), cnot(0, 1), SwapGate(1, 2)])
        assert t_count_estimate(circuit) == 0

    def test_toffoli_costs_seven(self):
        assert t_count_estimate(ReversibleCircuit(3, [toffoli(0, 1, 2)])) == 7

    def test_four_control_mct(self):
        circuit = ReversibleCircuit(5, [mct([0, 1, 2, 3], 4)])
        # V-chain uses 2*(4-2)+1 = 5 Toffoli-equivalents.
        assert t_count_estimate(circuit) == 35


class TestDepth:
    def test_disjoint_gates_run_in_parallel(self):
        circuit = ReversibleCircuit(4, [not_gate(0), not_gate(1), cnot(2, 3)])
        assert depth(circuit) == 1

    def test_dependent_gates_stack(self):
        circuit = ReversibleCircuit(3, [cnot(0, 1), cnot(1, 2), cnot(0, 1)])
        assert depth(circuit) == 3

    def test_empty_circuit_has_zero_depth(self):
        assert depth(ReversibleCircuit(2)) == 0

    def test_depth_never_exceeds_gate_count(self, rng):
        from repro.circuits.random import random_circuit

        circuit = random_circuit(5, 25, rng)
        assert depth(circuit) <= circuit.num_gates


class TestMetricsBundle:
    def test_figure2_metrics(self):
        report = metrics(library.figure2_example())
        assert report.num_lines == 3
        assert report.gate_count == 1
        assert report.quantum_cost == 5
        assert report.t_count == 7
        assert report.depth == 1
        assert report.max_controls == 2
        assert report.ancillas_for_toffoli_form == 0

    def test_as_dict_keys(self):
        report = metrics(library.increment(4)).as_dict()
        assert set(report) == {
            "lines",
            "gates",
            "quantum_cost",
            "t_count",
            "depth",
            "max_controls",
            "ancillas",
        }

    def test_ancilla_estimate(self):
        circuit = ReversibleCircuit(6, [mct([0, 1, 2, 3, 4], 5)])
        assert metrics(circuit).ancillas_for_toffoli_form == 3
