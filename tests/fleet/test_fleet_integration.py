"""The headline fleet scenario: kill a worker mid-run, lose nothing.

Three real daemons on loopback execute one manifest as three shards.
One worker is killed while its shard is in flight; the coordinator must
reassign the shard, the retry must resume from the mirrored records
without re-querying a single settled pair, and the merged store must
come out byte-identical to an unsharded serial run — with every worker
running **cache-less**, so the byte-identity cannot be an artifact of
shared cache hits.
"""

from __future__ import annotations

import json
import threading
import time
from collections.abc import Iterable, Iterator

import pytest

from repro.core.engine import MatchingConfig
from repro.core.equivalence import EquivalenceType
from repro.exceptions import DaemonError
from repro.fleet import FleetCoordinator
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    DaemonClient,
    MatchingDaemon,
    MatchingService,
    OverlapExecutor,
    SerialExecutor,
    generate_corpus,
)
from repro.service.executor import PairTask, TaskOutcome
from repro.service.pipeline import shard_index

TIMEOUT = 30.0
SEED = 7
CLASSES = (EquivalenceType.I_I, EquivalenceType.N_I)
PAIRS_PER_CLASS = 4  # 8 pairs over 3 shards: every shard is non-trivial


class SlowSerialExecutor(SerialExecutor):
    """Sleeps after each pair, keeping shard runs alive long enough for
    the kill to land mid-run deterministically."""

    name = "slow-serial"

    def __init__(self, delay: float) -> None:
        super().__init__()
        self._delay = delay

    def stream(
        self, tasks: Iterable[PairTask], config: MatchingConfig
    ) -> Iterator[TaskOutcome]:
        for outcome in super().stream(tasks, config):
            time.sleep(self._delay)
            yield outcome


def make_corpus(path):
    return generate_corpus(
        path,
        num_lines=3,
        classes=CLASSES,
        families=("random",),
        pairs_per_class=PAIRS_PER_CLASS,
        seed=SEED,
    )


def start_worker(tmp_path, name, delay=0.0):
    executor = (
        OverlapExecutor(SlowSerialExecutor(delay)) if delay else None
    )
    kwargs = {"executor": executor} if executor is not None else {}
    daemon = MatchingDaemon(
        store_dir=tmp_path / f"worker-{name}",
        host="127.0.0.1",
        port=0,
        cache=None,
        **kwargs,
    )
    daemon.start()
    return daemon


def serial_baseline(manifest, store_path):
    """The unsharded, cache-less serial run every fleet run must equal."""
    service = MatchingService(
        MatchingConfig(), executor=SerialExecutor(), cache=None
    )
    report = service.run_manifest(manifest, store_path=store_path, seed=SEED)
    return report


def kill_when_busy(victim: MatchingDaemon, fired: threading.Event) -> None:
    """Stop the victim as soon as it has flushed at least one record."""
    deadline = time.monotonic() + TIMEOUT
    address = victim.address
    while time.monotonic() < deadline:
        try:
            with DaemonClient.from_address(address, timeout=5.0) as client:
                runs = client.status()["runs"]
        except DaemonError:
            return  # already gone
        if any(run["done"] >= 1 for run in runs):
            victim.stop()
            fired.set()
            return
        time.sleep(0.02)


class TestKillAWorker:
    def test_reassigned_fleet_run_matches_serial_run_byte_for_byte(
        self, tmp_path
    ):
        corpus = tmp_path / "corpus"
        manifest = make_corpus(corpus)

        serial_store = tmp_path / "serial.jsonl"
        serial_report = serial_baseline(corpus, serial_store)
        assert serial_report.total == len(manifest.entries) == 8

        # The victim is the worker whose shard holds the most pairs, so
        # the kill is guaranteed to land while work remains.
        shard_sizes = [0, 0, 0]
        for entry in manifest.entries:
            shard_sizes[shard_index(entry.pair_id, 3)] += 1
        victim_index = shard_sizes.index(max(shard_sizes))
        assert shard_sizes[victim_index] >= 2

        workers = [
            start_worker(tmp_path, name, delay=0.4)
            for name in ("a", "b", "c")
        ]
        victim = workers[victim_index]
        fired = threading.Event()
        killer = threading.Thread(
            target=kill_when_busy, args=(victim, fired), daemon=True
        )
        metrics = MetricsRegistry()
        try:
            coordinator = FleetCoordinator(
                [worker.address for worker in workers],
                work_dir=tmp_path / "fleet",
                metrics=metrics,
                heartbeat_s=2.0,
                hang_timeout_s=20.0,
                timeout=10.0,
            )
            killer.start()
            report = coordinator.run(corpus, seed=SEED)
            killer.join(TIMEOUT)
        finally:
            for worker in workers:
                try:
                    worker.stop()
                except Exception:  # noqa: BLE001 - teardown best effort
                    pass
        assert fired.is_set(), "the victim was never killed mid-run"

        # --- the headline: byte-identical to the serial run -----------
        assert report.output.read_bytes() == serial_store.read_bytes()
        assert report.merged_records == 8
        assert report.failed == serial_report.failed

        # --- the shard moved ------------------------------------------
        assert report.reassignments >= 1
        moved = [shard for shard in report.shards if shard.reassigned_from]
        assert any(
            shard.reassigned_from[0] == victim.address for shard in moved
        )
        victim_peer = next(
            peer for peer in report.peers if peer.address == victim.address
        )
        assert victim_peer.healthy is False
        assert victim_peer.reason in ("dead", "hung", "cancelled")
        assert metrics.counter("repro_fleet_shards_total").value(
            outcome="reassigned"
        ) >= 1
        assert metrics.counter("repro_fleet_peer_failures_total").total() >= 1

        # --- zero oracle queries on settled pairs ---------------------
        # The retry run, asked from its final owner daemon: every pair
        # the coordinator mirrored before the kill replays from the
        # pre-seeded store (`resumed`), and only the remainder executes.
        shard = next(
            shard for shard in moved
            if shard.reassigned_from[0] == victim.address
        )
        owner = next(
            worker for worker in workers
            if worker.address == shard.peer
        )
        # The owner daemon is stopped by now; read its accounting from
        # the coordinator's view plus the run's own store totals.
        assert len(shard.settled) == shard_sizes[victim_index]
        # Fleet-level counters: the coordinator counts every pair once,
        # at first settle.  Each of the 8 pairs was executed exactly
        # once somewhere in the fleet — the retry's store-replays of
        # mirrored pairs are deduplicated, never double-counted.
        assert report.executed == 8
        assert report.resumed == 0 and report.cache_hits == 0
        assert owner is not victim

    def test_retry_run_reports_zero_queries_for_settled_pairs(self, tmp_path):
        """The per-daemon proof: resume accounting straight from the
        retry daemon's status and metrics ops while it is still up."""
        corpus = tmp_path / "corpus"
        manifest = make_corpus(corpus)
        shard_sizes = [0, 0, 0]
        for entry in manifest.entries:
            shard_sizes[shard_index(entry.pair_id, 3)] += 1
        victim_index = shard_sizes.index(max(shard_sizes))

        workers = [
            start_worker(tmp_path, name, delay=0.4)
            for name in ("a", "b", "c")
        ]
        victim = workers[victim_index]
        fired = threading.Event()
        killer = threading.Thread(
            target=kill_when_busy, args=(victim, fired), daemon=True
        )
        try:
            coordinator = FleetCoordinator(
                [worker.address for worker in workers],
                work_dir=tmp_path / "fleet",
                heartbeat_s=2.0,
                hang_timeout_s=20.0,
                timeout=10.0,
            )
            killer.start()
            report = coordinator.run(corpus, seed=SEED)
            killer.join(TIMEOUT)
            assert fired.is_set()
            shard = next(
                s for s in report.shards if s.reassigned_from
            )
            owner = next(
                worker for worker in workers
                if worker.address == shard.peer
            )
            with DaemonClient.from_address(
                owner.address, timeout=10.0
            ) as client:
                summary = client.status(shard.remote_run_id)["run"]["summary"]
                snapshot = client.metrics()["metrics"]
            # At least one pair settled before the kill, and the retry
            # replayed every one of them from the pre-seeded store.
            assert summary["resumed"] >= 1
            assert summary["executed"] == summary["total"] - summary["resumed"]
            assert summary["cache_hits"] == 0  # workers run cache-less
            resumed_samples = [
                sample["value"]
                for sample in snapshot["metrics"]["repro_run_pairs_total"][
                    "samples"
                ]
                if sample["labels"].get("outcome") == "resumed"
            ]
            assert sum(resumed_samples) >= summary["resumed"]
        finally:
            for worker in workers:
                try:
                    worker.stop()
                except Exception:  # noqa: BLE001 - teardown best effort
                    pass


class TestFleetAgainstSerial:
    def test_clean_three_worker_run_is_byte_identical_too(self, tmp_path):
        """No failures at all: the 3-shard merge still equals serial."""
        corpus = tmp_path / "corpus"
        make_corpus(corpus)
        serial_store = tmp_path / "serial.jsonl"
        serial_baseline(corpus, serial_store)
        workers = [
            start_worker(tmp_path, name) for name in ("a", "b", "c")
        ]
        try:
            coordinator = FleetCoordinator(
                [worker.address for worker in workers],
                work_dir=tmp_path / "fleet",
                timeout=10.0,
            )
            report = coordinator.run(corpus, seed=SEED)
        finally:
            for worker in workers:
                worker.stop()
        assert report.reassignments == 0
        assert report.output.read_bytes() == serial_store.read_bytes()
        merged = [
            json.loads(line)
            for line in report.output.read_text().splitlines()
        ]
        assert [record["index"] for record in merged] == list(range(8))
