"""Crash-safety and monotonicity of the fleet run-id counter."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import FleetError
from repro.fleet import FleetRunIdCounter


class TestAllocation:
    def test_ids_are_monotonic_and_padded(self, tmp_path):
        counter = FleetRunIdCounter(tmp_path / "counter")
        assert counter.allocate() == "fleet-0001"
        assert counter.allocate() == "fleet-0002"
        assert counter.last() == 2

    def test_last_is_zero_before_any_allocation(self, tmp_path):
        assert FleetRunIdCounter(tmp_path / "counter").last() == 0

    def test_prefix_and_width_are_configurable(self, tmp_path):
        counter = FleetRunIdCounter(tmp_path / "c", prefix="run", width=6)
        assert counter.allocate() == "run-000001"

    def test_survives_a_fresh_instance(self, tmp_path):
        path = tmp_path / "counter"
        FleetRunIdCounter(path).allocate()
        # A coordinator restart builds a new counter over the same file.
        assert FleetRunIdCounter(path).allocate() == "fleet-0002"

    def test_creates_missing_parent_directories(self, tmp_path):
        counter = FleetRunIdCounter(tmp_path / "deep" / "state" / "counter")
        assert counter.allocate() == "fleet-0001"

    def test_no_tmp_file_left_behind(self, tmp_path):
        counter = FleetRunIdCounter(tmp_path / "counter")
        counter.allocate()
        assert [entry.name for entry in tmp_path.iterdir()] == ["counter"]


class TestCorruption:
    def test_corrupt_counter_refuses(self, tmp_path):
        path = tmp_path / "counter"
        path.write_text("not a number\n", encoding="utf-8")
        with pytest.raises(FleetError, match="corrupt"):
            FleetRunIdCounter(path).allocate()

    def test_negative_counter_refuses(self, tmp_path):
        path = tmp_path / "counter"
        path.write_text("-3\n", encoding="utf-8")
        with pytest.raises(FleetError, match="negative"):
            FleetRunIdCounter(path).last()


class TestConcurrency:
    def test_concurrent_allocations_never_collide(self, tmp_path):
        counter = FleetRunIdCounter(tmp_path / "counter")
        ids: list[str] = []
        lock = threading.Lock()

        def allocate() -> None:
            for _ in range(10):
                value = counter.allocate()
                with lock:
                    ids.append(value)

        threads = [threading.Thread(target=allocate) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(ids) == 40
        assert len(set(ids)) == 40
        assert counter.last() == 40
