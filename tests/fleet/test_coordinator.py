"""Unit-level coordinator behaviour: peers, validation, small real fleets.

The full kill-a-worker scenario lives in ``test_fleet_integration.py``;
here each moving part is exercised against at most a couple of real
loopback daemons.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.exceptions import FleetError
from repro.fleet import FleetCoordinator, FleetPeer, normalize_peer
from repro.obs.metrics import MetricsRegistry
from repro.service import MatchingDaemon, StatsObserver, generate_corpus
from repro.service.events import RunCompleted, RunStarted

from repro.core.equivalence import EquivalenceType

CLASSES = (EquivalenceType.I_I, EquivalenceType.N_I)


def make_corpus(path, pairs_per_class=1, seed=7):
    return generate_corpus(
        path,
        num_lines=3,
        classes=CLASSES,
        families=("random",),
        pairs_per_class=pairs_per_class,
        seed=seed,
    )


def start_worker(tmp_path, name, **kwargs):
    daemon = MatchingDaemon(
        store_dir=tmp_path / f"worker-{name}",
        host="127.0.0.1",
        port=0,
        cache=None,
        **kwargs,
    )
    daemon.start()
    return daemon


class TestNormalizePeer:
    def test_bare_host_port_becomes_tcp(self):
        assert normalize_peer("worker-a:7700") == "tcp:worker-a:7700"

    def test_explicit_forms_pass_through(self):
        assert normalize_peer("tcp:worker-a:7700") == "tcp:worker-a:7700"
        assert normalize_peer("unix:/tmp/d.sock") == "unix:/tmp/d.sock"

    def test_garbage_is_refused(self):
        for bad in ("worker-a", "worker-a:port", "http:worker:80x"):
            with pytest.raises(FleetError, match="not a peer address"):
                normalize_peer(bad)

    def test_peer_objects_normalize_too(self):
        assert FleetPeer("worker-a:7700").address == "tcp:worker-a:7700"


class TestConstruction:
    def test_needs_at_least_one_peer(self, tmp_path):
        with pytest.raises(FleetError, match="at least one peer"):
            FleetCoordinator([], work_dir=tmp_path)

    def test_timeouts_must_be_positive(self, tmp_path):
        with pytest.raises(FleetError, match="positive"):
            FleetCoordinator(
                ["h:1"], work_dir=tmp_path, heartbeat_s=0
            )
        with pytest.raises(FleetError, match="positive"):
            FleetCoordinator(
                ["h:1"], work_dir=tmp_path, hang_timeout_s=-1
            )

    def test_max_attempts_must_be_positive(self, tmp_path):
        with pytest.raises(FleetError, match="max_attempts"):
            FleetCoordinator(["h:1"], work_dir=tmp_path, max_attempts=0)


class TestCheckPeers:
    def test_dead_peer_is_marked_unhealthy(self, tmp_path):
        coordinator = FleetCoordinator(
            ["127.0.0.1:1"], work_dir=tmp_path, timeout=2.0
        )
        (probe,) = coordinator.check_peers()
        assert probe["healthy"] is False
        assert "error" in probe
        assert coordinator.peers[0].healthy is False

    def test_live_peer_reports_healthy_with_pid(self, tmp_path):
        worker = start_worker(tmp_path, "a")
        try:
            _, _, address = worker.address.partition(":")
            coordinator = FleetCoordinator(
                [f"tcp:{address}"], work_dir=tmp_path, timeout=5.0
            )
            (probe,) = coordinator.check_peers()
            assert probe["healthy"] is True
            assert isinstance(probe["pid"], int)
        finally:
            worker.stop()

    def test_recovered_peer_is_rehabilitated(self, tmp_path):
        worker = start_worker(tmp_path, "a")
        try:
            coordinator = FleetCoordinator(
                [worker.address], work_dir=tmp_path, timeout=5.0
            )
            coordinator.peers[0].healthy = False
            (probe,) = coordinator.check_peers()
            assert probe["healthy"] is True
        finally:
            worker.stop()


class TestRun:
    def test_no_healthy_peers_fails_fast(self, tmp_path):
        make_corpus(tmp_path / "corpus")
        metrics = MetricsRegistry()
        coordinator = FleetCoordinator(
            ["127.0.0.1:1"], work_dir=tmp_path / "fleet",
            metrics=metrics, timeout=2.0,
        )
        with pytest.raises(FleetError, match="no healthy peers"):
            coordinator.run(tmp_path / "corpus")
        assert metrics.counter("repro_fleet_runs_total").value(
            state="failed"
        ) == 1

    def test_missing_manifest_fails_before_dispatch(self, tmp_path):
        coordinator = FleetCoordinator(
            ["127.0.0.1:1"], work_dir=tmp_path / "fleet"
        )
        with pytest.raises(FleetError, match="manifest not found"):
            coordinator.run(tmp_path / "nowhere")

    def test_single_worker_fleet_completes_and_reports(self, tmp_path):
        corpus = tmp_path / "corpus"
        make_corpus(corpus)
        worker = start_worker(tmp_path, "a")
        stats = StatsObserver()
        events: list = []

        class Recorder:
            def notify(self, event) -> None:
                events.append(event)

        metrics = MetricsRegistry()
        try:
            coordinator = FleetCoordinator(
                [worker.address],
                work_dir=tmp_path / "fleet",
                observers=[stats, Recorder()],
                metrics=metrics,
                timeout=10.0,
            )
            report = coordinator.run(corpus, seed=7)
        finally:
            worker.stop()
        assert report.run_id == "fleet-0001"
        assert report.total == 2
        assert report.merged_records == 2
        assert report.failed == 0
        assert report.executed == 2
        assert report.reassignments == 0
        assert report.output.exists()
        # Observers saw one logical run: boundaries once, each pair once.
        kinds = [type(event).__name__ for event in events]
        assert kinds.count("RunStarted") == 1
        assert kinds.count("RunCompleted") == 1
        assert kinds.count("TaskStarted") == 2
        started = [e for e in events if isinstance(e, RunStarted)]
        assert started[0].executor == "fleet[1]"
        completed = [e for e in events if isinstance(e, RunCompleted)]
        assert completed[0].report.total == 2
        assert metrics.counter("repro_fleet_shards_total").value(
            outcome="completed"
        ) == 1
        assert metrics.counter("repro_fleet_runs_total").value(
            state="completed"
        ) == 1
        assert metrics.histogram("repro_fleet_run_seconds").count() == 1

    def test_two_worker_fleet_partitions_the_manifest(self, tmp_path):
        corpus = tmp_path / "corpus"
        make_corpus(corpus, pairs_per_class=2)  # 4 pairs
        workers = [start_worker(tmp_path, name) for name in ("a", "b")]
        try:
            coordinator = FleetCoordinator(
                [worker.address for worker in workers],
                work_dir=tmp_path / "fleet",
                timeout=10.0,
            )
            report = coordinator.run(corpus, seed=7)
        finally:
            for worker in workers:
                worker.stop()
        assert report.total == report.merged_records == 4
        assert len(report.shards) == 2
        shard_pairs = [len(shard.settled) for shard in report.shards]
        assert sum(shard_pairs) == 4
        # Shard stores land under the run directory, merged on top.
        for shard in report.shards:
            assert shard.store_path.exists()
        merged = [
            json.loads(line)
            for line in report.output.read_text().splitlines()
        ]
        assert [record["index"] for record in merged] == [0, 1, 2, 3]

    def test_run_ids_advance_across_runs(self, tmp_path):
        corpus = tmp_path / "corpus"
        make_corpus(corpus)
        worker = start_worker(tmp_path, "a")
        try:
            coordinator = FleetCoordinator(
                [worker.address], work_dir=tmp_path / "fleet", timeout=10.0
            )
            first = coordinator.run(corpus, seed=7)
            second = coordinator.run(corpus, seed=7)
        finally:
            worker.stop()
        assert (first.run_id, second.run_id) == ("fleet-0001", "fleet-0002")

    def test_shard_exhaustion_names_the_last_failure(self, tmp_path):
        corpus = tmp_path / "corpus"
        make_corpus(corpus)
        worker = start_worker(tmp_path, "a")
        address = worker.address
        worker.stop()
        # The port answered the constructor-time normalization but is
        # dead by run time; every attempt must fail and say why.
        deadline = time.monotonic() + 10.0
        coordinator = FleetCoordinator(
            [address], work_dir=tmp_path / "fleet",
            timeout=2.0, max_attempts=2,
        )
        with pytest.raises(FleetError, match="no healthy peers"):
            coordinator.run(corpus)
        assert time.monotonic() < deadline
