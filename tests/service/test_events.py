"""Unit tests for the service event protocol and the stock observers.

The contract under test: a run's event stream opens with ``RunStarted``,
closes with ``RunCompleted``, brackets every executed pair between its
``TaskStarted`` and its ``TaskCompleted``/``TaskFailed``, reports every
store append as a ``StoreFlushed``, and marks pairs answered without
execution as ``CacheHit`` (source ``"cache"`` or ``"store"``).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.service.cache import build_cache
from repro.service.events import (
    CacheHit,
    EventLogObserver,
    Observer,
    ProgressObserver,
    ReportSummary,
    RunCompleted,
    RunStarted,
    StatsObserver,
    StoreFlushed,
    TaskCompleted,
    TaskFailed,
    TaskStarted,
    event_from_dict,
)
from repro.service.pipeline import MatchingService
from repro.service.workload import generate_corpus


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A small corpus: the tractable classes x 2 families (one adversarial)."""
    root = tmp_path_factory.mktemp("events_corpus")
    generate_corpus(
        root,
        num_lines=4,
        classes=None,
        families=("random", "adversarial"),
        pairs_per_class=1,
        seed=13,
    )
    return root


class TestEventStreamShape:
    def test_cold_run_event_ordering(self, corpus, tmp_path):
        store = tmp_path / "results.jsonl"
        events = list(
            MatchingService().stream(corpus, store_path=store, seed=3)
        )
        assert isinstance(events[0], RunStarted)
        assert isinstance(events[-1], RunCompleted)
        total = events[0].total
        assert events[0].executor == "serial"
        assert events[0].store_path == str(store)

        started = [e for e in events if isinstance(e, TaskStarted)]
        finished = [e for e in events if isinstance(e, (TaskCompleted, TaskFailed))]
        flushes = [e for e in events if isinstance(e, StoreFlushed)]
        assert len(started) == len(finished) == len(flushes) == total
        # Every pair's TaskStarted precedes its completion event.
        positions = {
            (type(e).__name__, getattr(e, "index", None)): i
            for i, e in enumerate(events)
            if isinstance(e, (TaskStarted, TaskCompleted, TaskFailed))
        }
        for event in finished:
            assert (
                positions[("TaskStarted", event.index)]
                < positions[(type(event).__name__, event.index)]
            )
        # Flush counters are cumulative and end at the total.
        assert [e.records_written for e in flushes] == list(range(1, total + 1))
        assert events[-1].report.executed == total

    def test_warm_run_yields_cache_hits_and_no_tasks(self, corpus):
        service = MatchingService(cache=build_cache())
        service.run_manifest(corpus, seed=3)
        events = list(service.stream(corpus, seed=3))
        hits = [e for e in events if isinstance(e, CacheHit)]
        assert len(hits) == events[0].total
        assert all(hit.source == "cache" for hit in hits)
        assert not any(isinstance(e, (TaskStarted, TaskCompleted)) for e in events)

    def test_resumed_pairs_surface_as_store_hits(self, corpus, tmp_path):
        store = tmp_path / "results.jsonl"
        MatchingService().run_manifest(corpus, store_path=store, seed=3)
        events = list(
            MatchingService().stream(corpus, store_path=store, resume=True, seed=3)
        )
        hits = [e for e in events if isinstance(e, CacheHit)]
        assert len(hits) == events[0].total
        assert all(hit.source == "store" for hit in hits)

    def test_failures_surface_as_task_failed(self, corpus):
        from repro.core.engine import MatchingConfig

        events = list(
            MatchingService(MatchingConfig(max_queries=1)).stream(corpus, seed=3)
        )
        failed = [e for e in events if isinstance(e, TaskFailed)]
        assert failed
        assert all("Error" in e.error for e in failed)

    def test_events_serialise_to_json(self, corpus):
        for event in MatchingService().stream(corpus, seed=3):
            payload = json.loads(json.dumps(event.to_dict()))
            assert payload["event"] == event.kind


class TestStatsObserver:
    def test_counts_a_cold_and_warm_run(self, corpus):
        stats = StatsObserver()
        service = MatchingService(cache=build_cache(), observers=[stats])
        cold = service.run_manifest(corpus, seed=3)
        assert stats.runs_started == stats.runs_completed == 1
        assert stats.started == stats.completed + stats.failed == cold.total
        assert stats.cache_hits == 0 and stats.store_flushes == 0
        service.run_manifest(corpus, seed=3)
        assert stats.runs_completed == 2
        assert stats.cache_hits == cold.total
        assert stats.started == cold.total  # warm run submitted nothing
        assert stats.as_dict()["cache_hits"] == cold.total

    def test_satisfies_the_observer_protocol(self):
        assert isinstance(StatsObserver(), Observer)
        assert isinstance(ProgressObserver(stream=io.StringIO()), Observer)

    def test_accumulates_duration_timings(self):
        stats = StatsObserver()
        for duration in (0.5, 0.25, 0.75):  # dyadic: sums are exact
            stats.notify(TaskCompleted(index=0, pair_id="p",
                                       record={}, duration_s=duration))
        stats.notify(TaskCompleted(index=1, pair_id="q", record={}))
        stats.notify(CacheHit(index=2, pair_id="r", source="cache",
                              record={}, duration_s=0.25))
        stats.notify(CacheHit(index=3, pair_id="s", source="store",
                              record={}))  # store resume: no duration
        timings = stats.as_dict()["timings"]
        assert timings["completed"] == {
            "count": 3, "total_s": 1.5, "min_s": 0.25, "max_s": 0.75,
        }
        assert timings["cache_hit"] == {
            "count": 1, "total_s": 0.25, "min_s": 0.25, "max_s": 0.25,
        }

    def test_live_run_populates_completed_timings(self, corpus):
        stats = StatsObserver()
        MatchingService(observers=[stats]).run_manifest(corpus, seed=3)
        timing = stats.completed_timing
        assert timing.count == stats.completed > 0
        assert timing.min_s is not None and timing.min_s >= 0.0
        assert timing.max_s >= timing.min_s
        assert timing.total_s >= timing.max_s


class TestProgressObserver:
    def test_line_per_n_pairs(self, corpus):
        out = io.StringIO()
        observer = ProgressObserver(stream=out, every=2)
        report = MatchingService(observers=[observer]).run_manifest(corpus, seed=3)
        lines = out.getvalue().splitlines()
        assert lines[0].startswith(f"run started: {report.total} pairs")
        assert lines[-1].startswith(f"run completed: {report.total}/{report.total}")
        # One progress line per 2 finished pairs, between the banners.
        assert len(lines) == 2 + report.total // 2
        assert all("[" in line for line in lines[1:-1])

    def test_rejects_nonpositive_cadence(self):
        with pytest.raises(ValueError):
            ProgressObserver(every=0)
        with pytest.raises(ValueError):
            ProgressObserver(every=-3)

    def test_exact_line_formats(self):
        """The lines are a stable, parseable contract, not just noise."""
        out = io.StringIO()
        observer = ProgressObserver(stream=out, every=2)
        observer.notify(RunStarted(total=3, executor="serial",
                                   store_path=None, seed=7, shard=None))
        observer.notify(TaskCompleted(index=0, pair_id="pair-a",
                                      record={"status": "ok"}))
        observer.notify(TaskFailed(index=1, pair_id="pair-b",
                                   record={"status": "failed"}))
        observer.notify(CacheHit(index=2, pair_id=None, source="cache",
                                 record={}))
        observer.notify(RunCompleted(report=ReportSummary(
            total=3, matched=1, failed=1, resumed=0, cache_hits=1,
            executed=2, elapsed=0.5, executor="serial",
        )))
        assert out.getvalue().splitlines() == [
            "run started: 3 pairs via serial",
            # every=2: pair 1 is silent, pair 2 prints, pair 3 (a cache
            # hit with no pair_id: index label, '?' status) is silent.
            "[2/3] pair-b: failed",
            "run completed: 3/3 pairs, 1 failed",
        ]

    def test_every_n_batching_and_index_fallback(self):
        out = io.StringIO()
        observer = ProgressObserver(stream=out, every=3)
        observer.notify(RunStarted(total=4, executor="serial",
                                   store_path=None, seed=None, shard=None))
        for index in range(4):
            observer.notify(CacheHit(index=index, pair_id=None,
                                     source="cache", record={}))
        observer.notify(RunCompleted(report=ReportSummary(
            total=4, matched=0, failed=0, resumed=0, cache_hits=4,
            executed=0, elapsed=0.1, executor="serial",
        )))
        lines = out.getvalue().splitlines()
        # Only the third pair hits the cadence; missing pair_id falls
        # back to the index and a record without "status" prints '?'.
        assert lines == [
            "run started: 4 pairs via serial",
            "[3/4] 2: ?",
            "run completed: 4/4 pairs, 0 failed",
        ]


class TestEventLogObserver:
    def test_writes_one_json_line_per_event(self, corpus, tmp_path):
        log_path = tmp_path / "events.jsonl"
        with EventLogObserver(log_path) as log:
            MatchingService(observers=[log]).run_manifest(corpus, seed=3)
        entries = [
            json.loads(line) for line in log_path.read_text().splitlines()
        ]
        assert entries[0]["event"] == "RunStarted"
        assert entries[-1]["event"] == "RunCompleted"
        kinds = {entry["event"] for entry in entries}
        assert {"TaskStarted"} <= kinds
        assert entries[-1]["total"] == entries[0]["total"]

    def test_close_is_idempotent(self, tmp_path):
        log = EventLogObserver(tmp_path / "events.jsonl")
        log.close()
        log.close()


class TestEventRoundTrip:
    """to_dict -> event_from_dict must be lossless enough for observers."""

    def test_each_event_kind_round_trips(self):
        events = [
            RunStarted(total=3, executor="serial", store_path="s.jsonl",
                       seed=7, shard=(1, 4)),
            TaskStarted(index=2, pair_id="p", equivalence="N-I"),
            CacheHit(index=0, pair_id="p", source="store",
                     record={"status": "resumed"}),
            TaskCompleted(index=1, pair_id=None, record={"status": "ok"}),
            TaskFailed(index=2, pair_id="q", record={"error": "E: boom"}),
            StoreFlushed(path="s.jsonl", records_written=4),
        ]
        for event in events:
            rebuilt = event_from_dict(json.loads(json.dumps(event.to_dict())))
            assert rebuilt == event

    def test_duration_fields_round_trip(self):
        """`duration_s` is part of the wire form — telemetry survives a
        relay, both as a value and as its `None` absence."""
        timed = [
            CacheHit(index=0, pair_id="p", source="cache",
                     record={"status": "cached"}, duration_s=0.0025),
            TaskCompleted(index=1, pair_id="q", record={"status": "ok"},
                          duration_s=0.75),
            TaskFailed(index=2, pair_id="r", record={"error": "E"},
                       duration_s=1.5),
        ]
        for event in timed:
            payload = json.loads(json.dumps(event.to_dict()))
            assert payload["duration_s"] == event.duration_s
            rebuilt = event_from_dict(payload)
            assert rebuilt == event
            assert rebuilt.duration_s == event.duration_s
        # Store resumes and older producers send null durations.
        bare = TaskCompleted(index=0, pair_id="p", record={"status": "ok"})
        assert bare.duration_s is None
        assert event_from_dict(bare.to_dict()).duration_s is None

    def test_run_completed_comes_back_as_summary(self, corpus):
        stream = MatchingService().stream(corpus, seed=3)
        completed = [e for e in stream if isinstance(e, RunCompleted)][0]
        rebuilt = event_from_dict(completed.to_dict())
        assert isinstance(rebuilt, RunCompleted)
        summary = rebuilt.report
        assert isinstance(summary, ReportSummary)
        assert summary.total == completed.report.total
        assert summary.matched == completed.report.matched
        assert summary.executed == completed.report.executed
        assert summary.executor == completed.report.executor
        # The summary round-trips through to_dict identically: observers
        # downstream of a relay see the same counters.
        assert RunCompleted(report=summary).to_dict() == completed.to_dict()
        assert str(summary.total) in summary.summary()

    def test_rebuilt_events_drive_stats_observer_identically(self, corpus):
        direct, relayed = StatsObserver(), StatsObserver()
        for event in MatchingService().stream(corpus, seed=3):
            direct.notify(event)
            relayed.notify(event_from_dict(event.to_dict()))
        assert relayed.as_dict() == direct.as_dict()

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="not a service event"):
            event_from_dict({"event": "Nonsense"})
        with pytest.raises(ValueError, match="not a service event"):
            event_from_dict({"total": 3})
