"""Socket-level integration tests for the matching daemon.

Every test here talks to a real :class:`MatchingDaemon` over a real
socket (TCP loopback by default, a Unix socket where the transport
itself is under test) — the protocol framing, threading and shutdown
behaviour are the subject, so nothing is mocked.
"""

from __future__ import annotations

import json
import socket
import time
from collections.abc import Iterable, Iterator

import pytest

from repro.core.engine import MatchingConfig
from repro.core.equivalence import EquivalenceType
from repro.exceptions import DaemonError
from repro.service import (
    DaemonClient,
    MatchingDaemon,
    OverlapExecutor,
    RunState,
    SerialExecutor,
    StatsObserver,
    generate_corpus,
)
from repro.service.executor import PairTask, TaskOutcome
from repro.service.pipeline import ResultStore

TIMEOUT = 30.0

CLASSES = (EquivalenceType.I_I, EquivalenceType.N_I)


def make_corpus(path, seed=7):
    return generate_corpus(
        path,
        num_lines=3,
        classes=CLASSES,
        families=("random",),
        pairs_per_class=1,
        seed=seed,
    )


class SlowSerialExecutor(SerialExecutor):
    """A serial executor that sleeps after each pair — keeps runs 'active'
    long enough for cancellation and queueing races to be deterministic."""

    name = "slow-serial"

    def __init__(self, delay: float) -> None:
        super().__init__()
        self._delay = delay

    def stream(
        self, tasks: Iterable[PairTask], config: MatchingConfig
    ) -> Iterator[TaskOutcome]:
        for outcome in super().stream(tasks, config):
            time.sleep(self._delay)
            yield outcome


@pytest.fixture
def corpus(tmp_path):
    make_corpus(tmp_path / "corpus")
    return tmp_path / "corpus"


def start_daemon(tmp_path, **kwargs):
    daemon = MatchingDaemon(
        store_dir=tmp_path / "runs", host="127.0.0.1", port=0, **kwargs
    )
    daemon.start()
    return daemon


def client_for(daemon: MatchingDaemon) -> DaemonClient:
    return DaemonClient.from_address(daemon.address, timeout=TIMEOUT)


def raw_connection(daemon: MatchingDaemon) -> socket.socket:
    """A bare TCP connection, for speaking the protocol by hand."""
    _, _, rest = daemon.address.partition(":")
    host, _, port = rest.rpartition(":")
    connection = socket.create_connection((host, int(port)), timeout=TIMEOUT)
    return connection


def wait_until(predicate, timeout=TIMEOUT, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.fixture
def daemon(tmp_path):
    server = start_daemon(tmp_path)
    yield server
    server.stop()


@pytest.fixture
def slow_daemon(tmp_path):
    server = start_daemon(
        tmp_path, executor=OverlapExecutor(SlowSerialExecutor(0.4))
    )
    yield server
    server.stop()


class TestRoundTrip:
    def test_ping(self, daemon):
        with client_for(daemon) as client:
            response = client.ping()
        assert response["ok"] is True
        assert response["protocol"] == "repro-daemon/v1"
        assert isinstance(response["pid"], int)

    def test_submit_manifest_completes_and_persists(self, daemon, corpus):
        with client_for(daemon) as client:
            ack = client.submit(corpus, seed=7)
            assert ack["run_id"] == "run-0001"
            stats = StatsObserver()
            state = client.watch(ack["run_id"], [stats])
            status = client.status(ack["run_id"])["run"]
        assert state == RunState.COMPLETED
        assert stats.runs_started == 1
        assert stats.completed + stats.failed == 2
        assert status["state"] == RunState.COMPLETED
        assert status["summary"]["total"] == 2
        records = ResultStore(ack["store"]).load()
        assert len(records) == 2

    def test_pairs_submission(self, daemon, corpus):
        with client_for(daemon) as client:
            pair = {
                "circuit1": str(corpus / "random-i-i-000-c1.real"),
                "circuit2": str(corpus / "random-i-i-000-c2.real"),
                "equivalence": "I-I",
            }
            ack = client.submit(pairs=[pair], seed=1)
            state = client.watch(ack["run_id"])
            status = client.status(ack["run_id"])["run"]
        assert state == RunState.COMPLETED
        assert status["source"] == "pairs[1]"
        records = ResultStore(ack["store"]).load()
        assert list(records) == ["pair-0000"]

    def test_unix_socket_transport(self, tmp_path, corpus):
        daemon = MatchingDaemon(
            store_dir=tmp_path / "runs", socket_path=tmp_path / "d.sock"
        )
        daemon.start()
        try:
            assert daemon.address == f"unix:{tmp_path / 'd.sock'}"
            with DaemonClient(
                socket_path=tmp_path / "d.sock", timeout=TIMEOUT
            ) as client:
                assert client.ping()["ok"] is True
                ack = client.submit(corpus, seed=7)
                assert client.watch(ack["run_id"]) == RunState.COMPLETED
        finally:
            daemon.stop()
        assert not (tmp_path / "d.sock").exists()


class TestSharedCache:
    def test_second_submit_spends_zero_oracle_queries(self, daemon, corpus):
        """The acceptance criterion: a warm resubmission never builds an
        oracle — every pair is answered by the shared result cache."""
        with client_for(daemon) as client:
            first = client.submit(corpus, seed=7)
            assert client.watch(first["run_id"]) == RunState.COMPLETED
            second = client.submit(corpus, seed=7)
            assert client.watch(second["run_id"]) == RunState.COMPLETED
            summary = client.status(second["run_id"])["run"]["summary"]
            stats = client.stats()
        assert summary["executed"] == 0
        assert summary["cache_hits"] == summary["total"] == 2
        assert stats["cache"]["hits"] >= 2
        # The cached records still reach the second run's own store.
        records = ResultStore(second["store"]).load()
        assert len(records) == 2
        assert all(record["status"] == "cached" for record in records.values())

    def test_wide_resubmission_spends_zero_queries(self, daemon, tmp_path):
        """The PR-5 acceptance criterion at the daemon layer: a warm
        resubmission of a *wide* (>= 16-line) corpus — keyed by sampled
        probe fingerprints, since exact tabulation is unaffordable —
        executes nothing, and the stats op attributes the hits to the
        probe scheme on the wire."""
        wide = tmp_path / "wide"
        generate_corpus(
            wide,
            families=("wide",),
            classes=(EquivalenceType.I_P, EquivalenceType.P_I),
            pairs_per_class=1,
            seed=23,
        )
        with client_for(daemon) as client:
            first = client.submit(wide, seed=7)
            assert client.watch(first["run_id"]) == RunState.COMPLETED
            second = client.submit(wide, seed=7)
            assert client.watch(second["run_id"]) == RunState.COMPLETED
            summary = client.status(second["run_id"])["run"]["summary"]
            stats = client.stats()
        assert summary["executed"] == 0
        assert summary["cache_hits"] == summary["total"] == 2
        scheme_hits = stats["cache"]["scheme_hits"]
        assert scheme_hits.get("probe", 0) >= 2
        assert "unversioned" not in scheme_hits

    def test_cache_shared_across_clients_and_submission_kinds(
        self, daemon, corpus
    ):
        with client_for(daemon) as client:
            ack = client.submit(corpus, seed=7)
            assert client.watch(ack["run_id"]) == RunState.COMPLETED
        # A different client, submitting one of the same pairs ad hoc.
        with client_for(daemon) as other:
            pair = {
                "circuit1": str(corpus / "random-i-i-000-c1.real"),
                "circuit2": str(corpus / "random-i-i-000-c2.real"),
                "equivalence": "I-I",
            }
            ack = other.submit(pairs=[pair])
            assert other.watch(ack["run_id"]) == RunState.COMPLETED
            summary = other.status(ack["run_id"])["run"]["summary"]
        assert summary["executed"] == 0
        assert summary["cache_hits"] == 1


class TestConcurrency:
    def test_submit_while_previous_run_is_active_queues(
        self, slow_daemon, corpus
    ):
        with client_for(slow_daemon) as client:
            first = client.submit(corpus, seed=7)
            wait_until(
                lambda: client.status(first["run_id"])["run"]["state"]
                == RunState.RUNNING,
                message="first run to start",
            )
            second = client.submit(corpus, seed=7, store=str(corpus / "2.jsonl"))
            assert client.status(second["run_id"])["run"]["state"] == RunState.QUEUED
            assert client.watch(first["run_id"]) == RunState.COMPLETED
            assert client.watch(second["run_id"]) == RunState.COMPLETED

    def test_queue_full_rejects_submit(self, tmp_path, corpus):
        daemon = start_daemon(
            tmp_path,
            executor=OverlapExecutor(SlowSerialExecutor(0.4)),
            max_queued=1,
        )
        try:
            with client_for(daemon) as client:
                first = client.submit(corpus, seed=7)
                wait_until(
                    lambda: client.status(first["run_id"])["run"]["state"]
                    == RunState.RUNNING,
                    message="first run to start",
                )
                client.submit(corpus, seed=7)  # fills the single queue slot
                with pytest.raises(DaemonError, match="queue is full"):
                    client.submit(corpus, seed=7)
        finally:
            daemon.stop()

    def test_multiple_clients_interleave(self, daemon, corpus):
        with client_for(daemon) as one, client_for(daemon) as two:
            ack = one.submit(corpus, seed=7)
            # The second client probes and submits while the first watches.
            assert two.ping()["ok"] is True
            other = two.submit(corpus, seed=7, store=str(corpus / "b.jsonl"))
            assert one.watch(ack["run_id"]) == RunState.COMPLETED
            assert two.watch(other["run_id"]) == RunState.COMPLETED
            states = {
                run["run_id"]: run["state"] for run in one.status()["runs"]
            }
        assert states == {
            ack["run_id"]: RunState.COMPLETED,
            other["run_id"]: RunState.COMPLETED,
        }


class TestCancellation:
    def test_cancel_running_run_keeps_flushed_records(
        self, slow_daemon, corpus
    ):
        with client_for(slow_daemon) as client:
            ack = client.submit(corpus, seed=7)
            wait_until(
                lambda: client.status(ack["run_id"])["run"]["done"] >= 1,
                message="one pair to finish",
            )
            response = client.cancel(ack["run_id"])
            assert response["ok"] is True
            wait_until(
                lambda: client.status(ack["run_id"])["run"]["state"]
                in RunState.FINAL,
                message="run to settle",
            )
            status = client.status(ack["run_id"])["run"]
            stats = client.stats()
        assert status["state"] == RunState.CANCELLED
        assert stats["runs"]["cancelled"] == 1
        records = ResultStore(ack["store"]).load()
        assert 1 <= len(records) <= 2  # whatever was flushed survives

    def test_cancel_queued_run_settles_immediately(self, slow_daemon, corpus):
        with client_for(slow_daemon) as client:
            first = client.submit(corpus, seed=7)
            wait_until(
                lambda: client.status(first["run_id"])["run"]["state"]
                == RunState.RUNNING,
                message="first run to start",
            )
            second = client.submit(corpus, seed=7, store=str(corpus / "2.jsonl"))
            response = client.cancel(second["run_id"])
            assert response["state"] == RunState.CANCELLED
            # Watching a cancelled queued run terminates immediately.
            assert client.watch(second["run_id"]) == RunState.CANCELLED
            assert client.watch(first["run_id"]) == RunState.COMPLETED

    def test_cancelled_run_resumes_on_resubmit(self, slow_daemon, corpus):
        with client_for(slow_daemon) as client:
            ack = client.submit(corpus, seed=7)
            wait_until(
                lambda: client.status(ack["run_id"])["run"]["done"] >= 1,
                message="one pair to finish",
            )
            client.cancel(ack["run_id"])
            wait_until(
                lambda: client.status(ack["run_id"])["run"]["state"]
                in RunState.FINAL,
                message="run to settle",
            )
            resumed = client.submit(
                corpus, seed=7, resume=True, store=ack["store"]
            )
            assert client.watch(resumed["run_id"]) == RunState.COMPLETED
            summary = client.status(resumed["run_id"])["run"]["summary"]
        assert summary["resumed"] >= 1
        assert len(ResultStore(ack["store"]).load()) == 2


class TestShutdown:
    def test_shutdown_idle_daemon(self, tmp_path):
        daemon = start_daemon(tmp_path)
        with client_for(daemon) as client:
            response = client.shutdown()
        assert response["shutting_down"] is True
        daemon.serve_forever()  # returns: the daemon is already stopped

    def test_shutdown_mid_run_is_clean_and_store_resumable(
        self, tmp_path, corpus
    ):
        daemon = start_daemon(
            tmp_path, executor=OverlapExecutor(SlowSerialExecutor(0.4))
        )
        with client_for(daemon) as client:
            ack = client.submit(corpus, seed=7)
            wait_until(
                lambda: client.status(ack["run_id"])["run"]["done"] >= 1,
                message="one pair to finish",
            )
            client.shutdown()
        daemon.serve_forever()  # blocks only until the stop completes
        # The interrupted run kept everything already flushed...
        records = ResultStore(ack["store"]).load()
        assert len(records) >= 1
        # ...and a fresh daemon resumes it to completion.
        second = start_daemon(tmp_path / "second")
        try:
            with client_for(second) as client:
                resumed = client.submit(
                    corpus, seed=7, resume=True, store=ack["store"]
                )
                assert client.watch(resumed["run_id"]) == RunState.COMPLETED
                summary = client.status(resumed["run_id"])["run"]["summary"]
            assert summary["resumed"] >= 1
        finally:
            second.stop()
        assert len(ResultStore(ack["store"]).load()) == 2

    def test_submit_after_shutdown_is_refused(self, tmp_path):
        daemon = start_daemon(tmp_path)
        with client_for(daemon) as client:
            client.shutdown()
        daemon.serve_forever()
        with pytest.raises(DaemonError):
            client_for(daemon).ping()


class TestFailurePaths:
    def test_malformed_frame_keeps_connection_usable(self, daemon):
        connection = raw_connection(daemon)
        try:
            reader = connection.makefile("r", encoding="utf-8")
            connection.sendall(b"this is not json\n")
            error = json.loads(reader.readline())
            assert error["ok"] is False
            assert "malformed frame" in error["error"]
            # Same connection, valid frame: the daemon kept listening.
            connection.sendall(b'{"op": "ping"}\n')
            assert json.loads(reader.readline())["ok"] is True
            # A frame that is valid JSON but not an object is malformed too.
            connection.sendall(b"[1, 2]\n")
            error = json.loads(reader.readline())
            assert error["ok"] is False
        finally:
            connection.close()

    def test_unknown_op_and_unknown_run(self, daemon):
        with client_for(daemon) as client:
            with pytest.raises(DaemonError, match="unknown op"):
                client.request({"op": "frobnicate"})
            with pytest.raises(DaemonError, match="unknown run"):
                client.status("run-9999")
            with pytest.raises(DaemonError, match="unknown run"):
                list(client.events("run-9999"))

    def test_submit_validation_errors(self, daemon, tmp_path):
        with client_for(daemon) as client:
            with pytest.raises(DaemonError, match="exactly one of"):
                client.request({"op": "submit"})
            with pytest.raises(DaemonError, match="manifest not found"):
                client.submit(tmp_path / "nope")
            with pytest.raises(DaemonError, match="circuit not found"):
                client.submit(
                    pairs=[
                        {
                            "circuit1": str(tmp_path / "a.real"),
                            "circuit2": str(tmp_path / "b.real"),
                            "equivalence": "I-I",
                        }
                    ]
                )
            with pytest.raises(DaemonError, match="missing 'equivalence'"):
                client.submit(pairs=[{"circuit1": "x", "circuit2": "y"}])

    def test_client_disconnect_mid_events_leaves_daemon_healthy(
        self, slow_daemon, corpus
    ):
        with client_for(slow_daemon) as client:
            ack = client.submit(corpus, seed=7)
        # Subscribe by hand, read the ack and the first frame, then vanish.
        connection = raw_connection(slow_daemon)
        reader = connection.makefile("r", encoding="utf-8")
        connection.sendall(
            (json.dumps({"op": "events", "run_id": ack["run_id"]}) + "\n").encode()
        )
        assert json.loads(reader.readline())["ok"] is True
        reader.readline()  # one event frame, then hang up mid-stream
        connection.close()
        # The daemon shrugs it off: the run completes, new clients work.
        with client_for(slow_daemon) as client:
            assert client.ping()["ok"] is True
            assert client.watch(ack["run_id"]) == RunState.COMPLETED

    def test_failed_run_is_reported_not_fatal(self, daemon, tmp_path, corpus):
        # A manifest that parses but references a missing circuit file
        # makes the run fail server-side; the daemon must survive it.
        broken = tmp_path / "broken"
        broken.mkdir()
        manifest = json.loads((corpus / "manifest.json").read_text())
        (broken / "manifest.json").write_text(json.dumps(manifest))
        with client_for(daemon) as client:
            ack = client.submit(broken)
            wait_until(
                lambda: client.status(ack["run_id"])["run"]["state"]
                in RunState.FINAL,
                message="broken run to settle",
            )
            status = client.status(ack["run_id"])["run"]
            assert status["state"] == RunState.FAILED
            assert status["error"]
            # Daemon still serves: a good run right after succeeds.
            ack = client.submit(corpus, seed=7)
            assert client.watch(ack["run_id"]) == RunState.COMPLETED


class TestEventStream:
    def test_replay_after_completion_is_complete_and_ordered(
        self, daemon, corpus
    ):
        with client_for(daemon) as client:
            ack = client.submit(corpus, seed=7)
            client.watch(ack["run_id"])
            frames = []
            stream = client.events(ack["run_id"])
            while True:
                try:
                    frames.append(next(stream))
                except StopIteration as stop:
                    final_state = stop.value
                    break
        assert final_state == RunState.COMPLETED
        kinds = [frame["event"] for frame in frames]
        assert kinds[0] == "RunStarted"
        assert kinds[-1] == "RunCompleted"
        assert kinds.count("TaskStarted") == 2
        assert kinds.count("StoreFlushed") == 2

    def test_no_replay_on_finished_run_yields_nothing(self, daemon, corpus):
        with client_for(daemon) as client:
            ack = client.submit(corpus, seed=7)
            client.watch(ack["run_id"])
            frames = list(client.events(ack["run_id"], replay=False))
        assert frames == []

    def test_watch_drives_stock_observers_like_in_process(
        self, daemon, corpus
    ):
        stats = StatsObserver()
        with client_for(daemon) as client:
            ack = client.submit(corpus, seed=7)
            client.watch(ack["run_id"], [stats])
        assert stats.as_dict()["runs_started"] == 1
        assert stats.as_dict()["runs_completed"] == 1
        assert stats.as_dict()["started"] == 2
        assert stats.as_dict()["completed"] + stats.as_dict()["failed"] == 2
        assert stats.as_dict()["store_flushes"] == 2


class TestConstruction:
    def test_transport_choice_is_mandatory_and_exclusive(self, tmp_path):
        with pytest.raises(DaemonError, match="exactly one transport"):
            MatchingDaemon(store_dir=tmp_path)
        with pytest.raises(DaemonError, match="exactly one transport"):
            MatchingDaemon(
                store_dir=tmp_path, socket_path=tmp_path / "s", host="::1", port=1
            )
        with pytest.raises(DaemonError, match="needs a port"):
            MatchingDaemon(store_dir=tmp_path, host="127.0.0.1")

    def test_bad_queue_bound(self, tmp_path):
        with pytest.raises(DaemonError, match="max_queued"):
            MatchingDaemon(
                store_dir=tmp_path, host="127.0.0.1", port=0, max_queued=0
            )

    def test_client_address_parsing(self):
        with pytest.raises(DaemonError, match="not a daemon address"):
            DaemonClient.from_address("http://example.com")
        with pytest.raises(DaemonError, match="exactly one transport"):
            DaemonClient()


class TestReviewRegressions:
    """Fixes surfaced by review: validation, hijack protection, memory."""

    def test_submit_resume_without_store_is_rejected(self, daemon, corpus):
        with client_for(daemon) as client:
            with pytest.raises(DaemonError, match="resume requires"):
                client.submit(corpus, resume=True)

    def test_starting_over_a_live_unix_socket_is_refused(self, tmp_path):
        path = tmp_path / "d.sock"
        first = MatchingDaemon(store_dir=tmp_path / "a", socket_path=path)
        first.start()
        try:
            second = MatchingDaemon(store_dir=tmp_path / "b", socket_path=path)
            with pytest.raises(DaemonError, match="already serving"):
                second.start()
            # The live daemon is unharmed by the probe.
            with DaemonClient(socket_path=path, timeout=TIMEOUT) as client:
                assert client.ping()["ok"] is True
        finally:
            first.stop()
        # Now the socket file is stale; a new daemon binds over it.
        path.touch()
        third = MatchingDaemon(store_dir=tmp_path / "c", socket_path=path)
        third.start()
        try:
            with DaemonClient(socket_path=path, timeout=TIMEOUT) as client:
                assert client.ping()["ok"] is True
        finally:
            third.stop()

    def test_history_limit_bounds_replay_but_keeps_status(
        self, tmp_path, corpus
    ):
        daemon = start_daemon(tmp_path, history_limit=1)
        try:
            with client_for(daemon) as client:
                first = client.submit(corpus, seed=7)
                assert client.watch(first["run_id"]) == RunState.COMPLETED
                second = client.submit(corpus, seed=7)
                assert client.watch(second["run_id"]) == RunState.COMPLETED
                # The third submit trims run-0001's history (run-0002 is
                # the single retained finished run).
                third = client.submit(corpus, seed=7)
                assert client.watch(third["run_id"]) == RunState.COMPLETED
                assert list(client.events(first["run_id"])) == []
                replay = list(client.events(second["run_id"]))
                assert replay and replay[-1]["event"] == "RunCompleted"
                # Status and summary survive the trim.
                status = client.status(first["run_id"])["run"]
                assert status["state"] == RunState.COMPLETED
                assert status["summary"]["total"] == 2
        finally:
            daemon.stop()

    def test_client_timeout_raises_daemon_error_not_traceback(
        self, slow_daemon, corpus
    ):
        with client_for(slow_daemon) as submitter:
            ack = submitter.submit(corpus, seed=7)
        impatient = DaemonClient.from_address(slow_daemon.address, timeout=0.05)
        with impatient:
            # A quiet-but-open connection is a timeout, not a loss — the
            # distinction lets heartbeat callers probe before reconnecting.
            with pytest.raises(DaemonError, match="no frame within"):
                # The run takes ~0.8s; a 50ms timeout trips mid-stream.
                impatient.watch(ack["run_id"])
        with client_for(slow_daemon) as client:
            assert client.watch(ack["run_id"]) == RunState.COMPLETED

    def test_resume_with_different_pairs_reruns_instead_of_replaying(
        self, daemon, corpus
    ):
        def pair(stem):
            return {
                "circuit1": str(corpus / f"{stem}-c1.real"),
                "circuit2": str(corpus / f"{stem}-c2.real"),
                "equivalence": "I-I",
            }

        with client_for(daemon) as client:
            first = client.submit(pairs=[pair("random-i-i-000")], seed=1)
            assert client.watch(first["run_id"]) == RunState.COMPLETED
            # Resume the SAME pair against the same store: replayed.
            same = client.submit(
                pairs=[pair("random-i-i-000")], seed=1,
                resume=True, store=first["store"],
            )
            assert client.watch(same["run_id"]) == RunState.COMPLETED
            summary = client.status(same["run_id"])["run"]["summary"]
            assert summary["resumed"] == 1 and summary["executed"] == 0
            # Resume a DIFFERENT pair against that store: the positional
            # id collides (pair-0000) but the content digest does not —
            # the pair must re-run, not inherit the old pair's record.
            other = client.submit(
                pairs=[pair("random-n-i-000")], seed=1,
                resume=True, store=first["store"],
            )
            assert client.watch(other["run_id"]) == RunState.COMPLETED
            summary = client.status(other["run_id"])["run"]["summary"]
            assert summary["resumed"] == 0

    def test_slow_events_subscriber_is_dropped_not_buffered(self):
        from repro.service.daemon import (
            _DROPPED,
            SUBSCRIBER_BUFFER_LIMIT,
            DaemonJob,
        )

        job = DaemonJob("run-0001")
        subscription = job.subscribe(replay=False)
        for index in range(SUBSCRIBER_BUFFER_LIMIT + 2):
            job.publish({"event": "TaskStarted", "index": index})
        drained = []
        while True:
            item = subscription.get()
            if item is _DROPPED:
                break
            drained.append(item)
        assert len(drained) == SUBSCRIBER_BUFFER_LIMIT
        # The job forgot the subscriber: later publishes skip it.
        job.publish({"event": "TaskStarted", "index": -1})
        assert subscription.empty()


class TestAuth:
    def test_ops_require_auth_but_ping_does_not(self, tmp_path):
        daemon = start_daemon(tmp_path, auth_token="sesame")
        try:
            with DaemonClient.from_address(
                daemon.address, timeout=TIMEOUT
            ) as client:
                client.ping()  # the liveness/version handshake stays open
                with pytest.raises(DaemonError, match="authentication required"):
                    client.stats()
                # The refusal was an error frame, not a hang-up: the same
                # connection can authenticate and proceed.
                response = client.request({"op": "auth", "token": "sesame"})
                assert response["authenticated"] is True
                assert "uptime" in client.stats()
        finally:
            daemon.stop()

    def test_bad_token_is_an_error_frame_not_a_hangup(self, tmp_path):
        daemon = start_daemon(tmp_path, auth_token="sesame")
        try:
            with DaemonClient.from_address(
                daemon.address, timeout=TIMEOUT
            ) as client:
                with pytest.raises(DaemonError, match="auth failed"):
                    client.request({"op": "auth", "token": "wrong"})
                response = client.request({"op": "auth", "token": "sesame"})
                assert response["authenticated"] is True
        finally:
            daemon.stop()

    def test_client_handshake_is_transparent(self, tmp_path, corpus):
        daemon = start_daemon(tmp_path, auth_token="sesame")
        try:
            with DaemonClient.from_address(
                daemon.address, timeout=TIMEOUT, auth_token="sesame"
            ) as client:
                ack = client.submit(str(corpus), seed=7)
                assert client.watch(ack["run_id"]) == RunState.COMPLETED
        finally:
            daemon.stop()

    def test_wrong_client_token_raises_on_connect(self, tmp_path):
        daemon = start_daemon(tmp_path, auth_token="sesame")
        try:
            client = DaemonClient.from_address(
                daemon.address, timeout=TIMEOUT, auth_token="wrong"
            )
            with pytest.raises(DaemonError, match="auth failed"):
                client.connect()
        finally:
            daemon.stop()

    def test_auth_is_a_noop_without_a_configured_token(self, daemon):
        with client_for(daemon) as client:
            response = client.request({"op": "auth", "token": "anything"})
            assert response["authenticated"] is True

    def test_non_loopback_tcp_refused_without_token(self, tmp_path):
        daemon = MatchingDaemon(
            store_dir=tmp_path / "runs", host="0.0.0.0", port=0
        )
        with pytest.raises(DaemonError, match="non-loopback"):
            daemon.start()

    def test_non_loopback_tcp_starts_with_token_or_insecure(self, tmp_path):
        for kwargs in ({"auth_token": "sesame"}, {"insecure": True}):
            daemon = MatchingDaemon(
                store_dir=tmp_path / "runs", host="0.0.0.0", port=0, **kwargs
            )
            daemon.start()
            daemon.stop()


class TestFetchStore:
    def test_records_come_back_in_file_order(self, daemon, corpus):
        with client_for(daemon) as client:
            ack = client.submit(str(corpus), seed=7)
            assert client.watch(ack["run_id"]) == RunState.COMPLETED
            response = client.fetch_store(ack["run_id"])
            assert response["state"] == RunState.COMPLETED
            assert response["torn_lines"] == 0
            with open(ack["store"], "r", encoding="utf-8") as handle:
                on_disk = [
                    json.loads(line) for line in handle if line.strip()
                ]
            assert response["records"] == on_disk
            assert len(on_disk) == 2

    def test_unknown_run_is_an_error(self, daemon):
        with client_for(daemon) as client:
            with pytest.raises(DaemonError, match="unknown run"):
                client.fetch_store("run-9999")

    def test_torn_trailing_line_is_skipped_and_counted(self, daemon, corpus):
        with client_for(daemon) as client:
            ack = client.submit(str(corpus), seed=7)
            assert client.watch(ack["run_id"]) == RunState.COMPLETED
            with open(ack["store"], "a", encoding="utf-8") as handle:
                handle.write('{"pair_id": "torn')
            response = client.fetch_store(ack["run_id"])
            assert response["torn_lines"] == 1
            assert len(response["records"]) == 2


class TestShardSubmit:
    def test_shards_partition_the_manifest(self, daemon, corpus):
        with client_for(daemon) as client:
            totals = []
            for index in range(2):
                ack = client.submit(str(corpus), seed=7, shard=(index, 2))
                assert client.watch(ack["run_id"]) == RunState.COMPLETED
                summary = client.status(ack["run_id"])["run"]["summary"]
                totals.append(summary["total"])
            assert sum(totals) == 2  # every manifest pair in exactly one shard

    def test_shard_accepts_the_string_form(self, daemon, corpus):
        with client_for(daemon) as client:
            ack = client.submit(str(corpus), seed=7, shard="0/1")
            assert client.watch(ack["run_id"]) == RunState.COMPLETED
            assert client.status(ack["run_id"])["run"]["summary"]["total"] == 2

    def test_shard_requires_a_manifest(self, daemon, corpus):
        manifest = json.loads(
            (corpus / "manifest.json").read_text(encoding="utf-8")
        )
        entry = manifest["entries"][0]
        pair = {
            "circuit1": str(corpus / entry["circuit1"]),
            "circuit2": str(corpus / entry["circuit2"]),
            "equivalence": entry["equivalence"],
        }
        with client_for(daemon) as client:
            with pytest.raises(DaemonError, match="requires a manifest"):
                client.submit(pairs=[pair], shard=(0, 2))

    def test_malformed_shards_are_rejected(self, daemon, corpus):
        with client_for(daemon) as client:
            with pytest.raises(DaemonError, match="shard"):
                client.request({
                    "op": "submit", "manifest": str(corpus), "shard": [1],
                })
            with pytest.raises(DaemonError):
                client.submit(str(corpus), shard="2/2")  # index out of range


class TestRecordsPreseed:
    def test_preseeded_resume_spends_zero_queries(self, daemon, corpus):
        with client_for(daemon) as client:
            first = client.submit(str(corpus), seed=7)
            assert client.watch(first["run_id"]) == RunState.COMPLETED
            records = client.fetch_store(first["run_id"])["records"]
            retry = client.submit(
                str(corpus), seed=7, records=records, resume=True
            )
            assert client.watch(retry["run_id"]) == RunState.COMPLETED
            summary = client.status(retry["run_id"])["run"]["summary"]
            assert summary["resumed"] == len(records) == 2
            assert summary["executed"] == 0
            assert summary["cache_hits"] == 0
            # The retry's store holds exactly the seeded records.
            assert client.fetch_store(retry["run_id"])["records"] == records

    def test_partial_seed_runs_only_the_missing_pairs(self, daemon, corpus):
        with client_for(daemon) as client:
            first = client.submit(str(corpus), seed=7, shard=(0, 2))
            assert client.watch(first["run_id"]) == RunState.COMPLETED
            records = client.fetch_store(first["run_id"])["records"]
            retry = client.submit(
                str(corpus), seed=7, records=records, resume=True
            )
            assert client.watch(retry["run_id"]) == RunState.COMPLETED
            summary = client.status(retry["run_id"])["run"]["summary"]
            assert summary["resumed"] == len(records)
            assert summary["total"] == 2

    def test_records_must_carry_pair_ids(self, daemon, corpus):
        with client_for(daemon) as client:
            with pytest.raises(DaemonError, match="pair_id"):
                client.submit(
                    str(corpus), records=[{"result": None}], resume=True
                )


class TestEventsReconnect:
    def test_stream_survives_one_disconnect_without_duplicates(
        self, slow_daemon, corpus
    ):
        with client_for(slow_daemon) as client:
            ack = client.submit(str(corpus), seed=7)
            stream = client.events(ack["run_id"])
            first = next(stream)
            assert first["event"] == "RunStarted"
            # Sever the transport under the generator's feet; the next
            # read sees EOF, and the generator must reconnect, replay
            # and skip what it already delivered.
            client._connection.shutdown(socket.SHUT_RDWR)
            events = [first]
            while True:
                try:
                    events.append(next(stream))
                except StopIteration as stop:
                    state = stop.value
                    break
            assert state == RunState.COMPLETED
            kinds = [event["event"] for event in events]
            assert kinds.count("RunStarted") == 1
            assert kinds.count("RunCompleted") == 1
            settled = [
                event["pair_id"] for event in events
                if event["event"] in ("TaskCompleted", "TaskFailed", "CacheHit")
            ]
            assert sorted(settled) == sorted(set(settled))
            assert len(settled) == 2

    def test_second_disconnect_raises(self, slow_daemon, corpus):
        from repro.exceptions import DaemonConnectionError

        with client_for(slow_daemon) as client:
            ack = client.submit(str(corpus), seed=7)
            stream = client.events(ack["run_id"], reconnects=0)
            next(stream)
            client._connection.shutdown(socket.SHUT_RDWR)
            with pytest.raises(DaemonConnectionError):
                while True:
                    next(stream)

    def test_no_reconnect_without_replay(self, slow_daemon, corpus):
        from repro.exceptions import DaemonConnectionError

        with client_for(slow_daemon) as client:
            ack = client.submit(str(corpus), seed=7)
            stream = client.events(ack["run_id"], replay=False)
            next(stream)
            client._connection.shutdown(socket.SHUT_RDWR)
            with pytest.raises(DaemonConnectionError):
                while True:
                    next(stream)
