"""Batched-vs-scalar fingerprint invariance, and the peek_table cliff.

Batching is an evaluation strategy, never an identity: for every
registered scheme the digests produced with ``batched=True`` and
``batched=False`` must be byte-identical on every target — including
the wide (16-24 line) corpus family, where the probe tier is the only
functional identity.  The second half pins the ``peek_table`` cost
cliff fix: sampled-probe fingerprints of an opaque wide oracle touch
exactly ``probe_count`` inputs, never the exponential table.
"""

from __future__ import annotations

import random

import pytest

from repro.circuits.io import real
from repro.circuits.random import random_circuit
from repro.oracles.oracle import CircuitOracle, FunctionOracle, PermutationOracle
from repro.circuits.permutation import Permutation
from repro.service.fingerprint import (
    DEFAULT_PROBE_COUNT,
    FINGERPRINT_SCHEMES,
    SampledProbeFingerprinter,
    FingerprintContext,
    build_registry,
    config_digest,
)
from repro.core.engine import MatchingConfig
from repro.service.workload import CorpusManifest, generate_corpus

CORPUS_SEED = 20240601


@pytest.fixture(scope="module")
def wide_family_circuits(tmp_path_factory):
    """Every circuit of a generated ``wide`` (16-24 line) corpus."""
    root = tmp_path_factory.mktemp("fp_wide_corpus")
    manifest = generate_corpus(
        root, families=("wide",), pairs_per_class=1, seed=CORPUS_SEED
    )
    circuits = []
    for entry in manifest.entries:
        circuits.append(real.read_real(root / entry.circuit1))
        circuits.append(real.read_real(root / entry.circuit2))
    assert circuits and all(c.num_lines >= 16 for c in circuits)
    return circuits


class TestBatchedDigestInvariance:
    @pytest.mark.parametrize("scheme", FINGERPRINT_SCHEMES)
    def test_wide_corpus_digests_identical(self, scheme, wide_family_circuits):
        batched = build_registry(scheme, batched=True)
        scalar = build_registry(scheme, batched=False)
        for circuit in wide_family_circuits:
            fp_batched = batched.fingerprint(circuit)
            fp_scalar = scalar.fingerprint(circuit)
            assert fp_batched.key == fp_scalar.key
            assert fp_batched.digest == fp_scalar.digest

    @pytest.mark.parametrize("scheme", FINGERPRINT_SCHEMES)
    def test_narrow_targets_digests_identical(self, scheme, rng):
        """Below the width limit the exact tier batches too."""
        circuit = random_circuit(6, 24, rng)
        targets = [
            circuit,
            CircuitOracle(circuit, with_inverse=True),
            Permutation(list(circuit.truth_table())),
            PermutationOracle(Permutation(list(circuit.truth_table()))),
        ]
        batched = build_registry(scheme, batched=True)
        scalar = build_registry(scheme, batched=False)
        for target in targets:
            assert (
                batched.fingerprint(target).key
                == scalar.fingerprint(target).key
            )

    def test_batched_flag_is_not_part_of_the_config_digest(self):
        """Cache keys never fork on the evaluation strategy."""
        config = MatchingConfig()
        assert config_digest(config) == config_digest(config)
        # The registry knob itself leaves every produced key unchanged
        # (asserted above), so the config digest has nothing to record.


class _CountingOracle(FunctionOracle):
    """An opaque oracle that counts evaluations and forbids tabulation."""

    def __init__(self, num_lines: int) -> None:
        mask = (1 << num_lines) - 1
        super().__init__(lambda value: value ^ mask, num_lines)
        self.evaluations = 0

    def _evaluate(self, value: int) -> int:
        self.evaluations += 1
        return super()._evaluate(value)

    def peek_table(self):  # pragma: no cover - the cliff this test pins
        raise AssertionError(
            "peek_table would materialise 2**num_lines entries; the probe "
            "fingerprinter must stay on the bounded probe set"
        )


class TestPeekTableCliff:
    def test_width_16_oracle_is_probed_not_tabulated(self):
        """The fingerprint of a 16-line opaque oracle costs 64 evaluations,
        not a 65536-entry table."""
        oracle = _CountingOracle(16)
        fp = build_registry("auto").fingerprint(oracle)
        assert fp.scheme == "probe"
        assert oracle.evaluations == DEFAULT_PROBE_COUNT
        assert oracle.total_queries == 0  # white-box, never charged

    def test_scalar_reference_path_is_also_bounded(self):
        oracle = _CountingOracle(16)
        strategy = SampledProbeFingerprinter(batched=False)
        strategy.fingerprint(oracle, FingerprintContext())
        assert oracle.evaluations == DEFAULT_PROBE_COUNT

    def test_probe_count_scales_the_cost(self):
        oracle = _CountingOracle(18)
        registry = build_registry("probe", probe_count=7)
        registry.fingerprint(oracle)
        assert oracle.evaluations == 7
