"""Unit tests for the result caches and the engine cache adapter."""

from __future__ import annotations

import json
import threading
import warnings

import pytest

from repro.circuits import library
from repro.circuits.random import random_circuit
from repro.core.engine import MatchingConfig, MatchingEngine
from repro.core.equivalence import EquivalenceType
from repro.core.verify import make_instance
from repro.exceptions import ServiceError
from repro.service.cache import (
    DiskCache,
    EngineCacheAdapter,
    LRUCache,
    TieredCache,
    build_cache,
    migrate_cache,
)
from repro.service.fingerprint import build_registry
from repro.service.serialize import result_to_dict


def _record(tag: str) -> dict:
    return {"matcher": tag, "result": {"queries": 1}}


class TestLRUCache:
    def test_roundtrip_and_stats(self):
        cache = LRUCache(maxsize=4)
        assert cache.get("missing") is None
        cache.put("key", _record("a"))
        assert cache.get("key") == _record("a")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_evicts_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", _record("a"))
        cache.put("b", _record("b"))
        cache.get("a")  # refresh a; b is now the LRU entry
        cache.put("c", _record("c"))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert len(cache) == 2


class TestDiskCache:
    def test_persists_across_instances(self, tmp_path):
        directory = tmp_path / "cache"
        DiskCache(directory).put("key", _record("a"))
        reopened = DiskCache(directory)
        assert reopened.get("key") == _record("a")
        assert len(reopened) == 1

    def test_corrupt_file_reads_as_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("key", _record("a"))
        for path in tmp_path.glob("*.json"):
            path.write_text("{ torn", encoding="utf-8")
        assert cache.get("key") is None

    def test_envelope_key_mismatch_reads_as_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("key", _record("a"))
        path = next(tmp_path.glob("*.json"))
        envelope = json.loads(path.read_text())
        envelope["key"] = "some-other-key"
        path.write_text(json.dumps(envelope), encoding="utf-8")
        assert cache.get("key") is None

    def test_torn_entry_warns_misses_and_is_repaired_by_writeback(
        self, tmp_path
    ):
        cache = DiskCache(tmp_path)
        cache.put("key", _record("a"))
        path = next(tmp_path.glob("*.json"))
        # A reader on NFS-style shared storage can see a half-synced
        # file even though our own writers publish atomically.
        path.write_text('{"key": "key", "rec', encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="torn shared-disk write"):
            assert cache.get("key") is None
        cache.put("key", _record("a"))  # the recomputation's write-back
        assert cache.get("key") == _record("a")

    def test_invalid_utf8_warns_and_misses(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("key", _record("a"))
        path = next(tmp_path.glob("*.json"))
        path.write_bytes(b"\xff\xfe not a utf-8 json file")
        with pytest.warns(RuntimeWarning, match="undecodable cache entry"):
            assert cache.get("key") is None

    def test_non_object_envelope_warns_and_misses(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("key", _record("a"))
        path = next(tmp_path.glob("*.json"))
        path.write_text('["not", "an", "envelope"]', encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="not an envelope object"):
            assert cache.get("key") is None

    def test_unreadable_file_is_a_silent_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("key", _record("a"))
        path = next(tmp_path.glob("*.json"))
        path.unlink()
        path.mkdir()  # open() now refuses with an OSError, not a parse error
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert cache.get("key") is None


class TestTieredCache:
    def test_put_writes_both_and_slow_hit_promotes(self, tmp_path):
        fast, slow = LRUCache(maxsize=8), DiskCache(tmp_path)
        tiered = TieredCache(fast, slow)
        tiered.put("key", _record("a"))
        assert len(fast) == 1 and len(slow) == 1

        cold_fast = LRUCache(maxsize=8)
        tiered = TieredCache(cold_fast, slow)
        assert tiered.get("key") == _record("a")  # served by the slow tier
        assert len(cold_fast) == 1  # ...and promoted

    def test_build_cache_shapes(self, tmp_path):
        assert isinstance(build_cache(), LRUCache)
        tiered = build_cache(disk_dir=tmp_path)
        assert isinstance(tiered, TieredCache)
        assert isinstance(tiered.slow, DiskCache)

    def test_concurrent_lookups_promote_exactly_once(self, tmp_path):
        """Two threads race a cold fast tier onto the same slow-tier hit:
        the wrapper's lock serialises them, so the entry is promoted into
        L1 exactly once and the books still balance."""
        slow = DiskCache(tmp_path)
        slow.put("key", _record("a"))
        fast = LRUCache(maxsize=8)
        tiered = TieredCache(fast, slow)

        barrier = threading.Barrier(2)
        results: list[dict | None] = []

        def lookup() -> None:
            barrier.wait()
            results.append(tiered.get("key"))

        threads = [threading.Thread(target=lookup) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert results == [_record("a"), _record("a")]
        assert fast.stats.stores == 1  # exactly one L1 promotion
        assert len(fast) == 1
        stats = tiered.stats
        assert stats.hits == 2 and stats.misses == 0
        assert stats.hits + stats.misses == stats.lookups == 2


class TestEngineCacheAdapter:
    def test_store_then_lookup_roundtrip(self, rng):
        base = random_circuit(4, 12, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_P, rng)
        config = MatchingConfig()
        engine = MatchingEngine(config)
        result = engine.match(c1, c2, EquivalenceType.I_P, rng=3)

        adapter = EngineCacheAdapter(LRUCache())
        assert adapter.lookup(c1, c2, EquivalenceType.I_P, config) is None
        adapter.store(c1, c2, EquivalenceType.I_P, config, result, "i-p/x")
        hit = adapter.lookup(c1, c2, EquivalenceType.I_P, config)
        assert hit is not None
        cached_result, matcher = hit
        assert matcher == "i-p/x"
        assert result_to_dict(cached_result) == result_to_dict(result)
        # A different policy is a different key.
        assert (
            adapter.lookup(c1, c2, EquivalenceType.I_P, MatchingConfig(epsilon=0.5))
            is None
        )

    def test_mutation_between_batches_is_not_served_a_stale_key(self, rng):
        # The lookup->store memo must not outlive one pair: mutating a
        # circuit in place and looking it up again recomputes the key.
        circuit = random_circuit(4, 8, rng)
        adapter = EngineCacheAdapter(LRUCache())
        config = MatchingConfig()
        engine = MatchingEngine(config)
        result = engine.match(circuit, circuit.copy(), EquivalenceType.I_I)
        adapter.lookup(circuit, circuit, EquivalenceType.I_I, config)
        key_before = adapter.key_for(circuit, circuit, EquivalenceType.I_I, config)
        adapter.store(circuit, circuit, EquivalenceType.I_I, config, result)

        mutation = random_circuit(4, 1, rng)
        circuit.append(mutation.gates[0])
        assert (
            adapter.key_for(circuit, circuit, EquivalenceType.I_I, config)
            != key_before
        )
        assert adapter.lookup(circuit, circuit, EquivalenceType.I_I, config) is None

    def test_failure_records_read_as_miss(self, rng):
        cache = LRUCache()
        adapter = EngineCacheAdapter(cache)
        circuit = random_circuit(4, 8, rng)
        config = MatchingConfig()
        key = adapter.key_for(circuit, circuit, EquivalenceType.I_P, config)
        cache.put(key, {"matcher": "x", "error": "boom", "result": None})
        assert adapter.lookup(circuit, circuit, EquivalenceType.I_P, config) is None

    def test_match_many_consults_the_cache(self, rng):
        base = random_circuit(4, 12, rng)
        pairs = [
            make_instance(base, equivalence, rng)[:2] + (equivalence,)
            for equivalence in (EquivalenceType.I_P, EquivalenceType.P_I)
        ]
        engine = MatchingEngine()
        adapter = EngineCacheAdapter(LRUCache())

        cold = engine.match_many(pairs, rng=5, result_cache=adapter)
        assert cold.cache_hits == 0 and cold.num_matched == 2

        warm = engine.match_many(pairs, rng=5, result_cache=adapter)
        assert warm.cache_hits == 2
        assert all(entry.cached for entry in warm.entries)
        # Aggregates count queries *spent by this batch*: a fully cached
        # batch built no oracles, whatever the per-entry results record.
        assert warm.classical_queries == 0 and warm.quantum_queries == 0
        assert cold.classical_queries > 0
        assert [entry.matcher for entry in warm.entries] == [
            entry.matcher for entry in cold.entries
        ]
        assert [result_to_dict(entry.result) for entry in warm.entries] == [
            result_to_dict(entry.result) for entry in cold.entries
        ]
        assert "from cache" in warm.summary()
        assert "cached" in warm.to_table()

    def test_wide_pair_is_cacheable_via_probe_fingerprints(self, rng):
        """v1 stranded wide pairs on structural identity; the probe tier
        keys them functionally, so a resynthesised representation hits."""
        circuit = library.increment(16)
        adapter = EngineCacheAdapter(LRUCache())
        config = MatchingConfig()
        key = adapter.key_for(circuit, circuit, EquivalenceType.I_I, config)
        assert ":probe:" in key
        # A structurally different but functionally equal representation
        # computes the same key — the hit v1 could never produce.
        twin = circuit.copy()
        gate = random_circuit(16, 1, rng).gates[0]
        twin.append(gate)
        twin.append(gate)  # self-inverse: applied twice == identity
        assert (
            adapter.key_for(twin, twin, EquivalenceType.I_I, config) == key
        )

    def test_injected_registry_overrides_the_config(self, rng):
        circuit = random_circuit(4, 8, rng)
        config = MatchingConfig()  # auto: 4 lines would be exact
        adapter = EngineCacheAdapter(
            LRUCache(), registry=build_registry("probe")
        )
        key = adapter.key_for(circuit, circuit, EquivalenceType.I_I, config)
        assert ":probe:" in key


class TestSchemeHitCounters:
    def test_hits_are_attributed_per_scheme(self, rng):
        cache = LRUCache()
        narrow = random_circuit(4, 8, rng)
        wide = library.increment(16)
        adapter = EngineCacheAdapter(cache)
        config = MatchingConfig()
        exact_key = adapter.key_for(narrow, narrow, EquivalenceType.I_I, config)
        probe_key = adapter.key_for(wide, wide, EquivalenceType.I_I, config)
        for key in (exact_key, probe_key):
            cache.put(key, _record("x"))
            cache.get(key)
            cache.get(key)
        cache.get("not a versioned key")  # miss: no scheme attribution
        assert cache.stats.scheme_hits == {"exact": 2, "probe": 2}
        assert cache.stats.hits == 4 and cache.stats.misses == 1

    def test_foreign_keys_count_as_unversioned(self):
        cache = LRUCache()
        cache.put("v1-style-key", _record("x"))
        cache.get("v1-style-key")
        assert cache.stats.scheme_hits == {"unversioned": 1}


class TestMigrateCache:
    def _plant_v1(self, directory, name="00aa.json"):
        path = directory / name
        path.write_text(
            json.dumps(
                {
                    "key": "I-P|4:function:fwd:ab|4:function:fwd:ab|0123",
                    "record": _record("v1"),
                }
            )
        )
        return path

    def test_v1_entries_are_clean_misses_for_v2_lookups(self, tmp_path, rng):
        disk = DiskCache(tmp_path)
        self._plant_v1(tmp_path)
        adapter = EngineCacheAdapter(disk)
        circuit = random_circuit(4, 8, rng)
        assert (
            adapter.lookup(circuit, circuit, EquivalenceType.I_P, MatchingConfig())
            is None
        )

    def test_migrate_counts_by_version(self, tmp_path, rng):
        disk = DiskCache(tmp_path)
        adapter = EngineCacheAdapter(disk)
        circuit = random_circuit(4, 8, rng)
        config = MatchingConfig()
        key = adapter.key_for(circuit, circuit, EquivalenceType.I_P, config)
        disk.put(key, _record("v2"))
        self._plant_v1(tmp_path)
        (tmp_path / "junk.json").write_text("{not json")
        counts = migrate_cache(tmp_path)
        assert counts == {"v2": 1, "v1": 1, "unreadable": 1, "dropped": 0}
        assert len(disk) == 3  # a dry run deletes nothing

    def test_drop_v1_deletes_only_stale_entries(self, tmp_path, rng):
        disk = DiskCache(tmp_path)
        adapter = EngineCacheAdapter(disk)
        circuit = random_circuit(4, 8, rng)
        config = MatchingConfig()
        key = adapter.key_for(circuit, circuit, EquivalenceType.I_P, config)
        disk.put(key, _record("v2"))
        self._plant_v1(tmp_path)
        (tmp_path / "junk.json").write_text("{not json")
        counts = migrate_cache(tmp_path, drop_v1=True)
        assert counts["dropped"] == 2
        assert len(disk) == 1
        assert disk.get(key) == _record("v2")  # current entries survive

    def test_missing_directory_is_an_error(self, tmp_path):
        with pytest.raises(ServiceError):
            migrate_cache(tmp_path / "nope")
