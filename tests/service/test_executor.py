"""Unit tests for the execution backends.

The load-bearing property is the acceptance criterion of the service
subsystem: a :class:`ParallelExecutor` with four workers produces
byte-identical per-pair results to a :class:`SerialExecutor` for the same
seed, because every task carries its own derived RNG seed and shares no
state with its neighbours.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.circuits.random import random_circuit
from repro.core.engine import MatchingConfig
from repro.core.equivalence import EquivalenceType
from repro.core.verify import make_instance
from repro.service.executor import (
    PairTask,
    ParallelExecutor,
    SerialExecutor,
    derive_seed,
)


@pytest.fixture
def tasks(rng):
    """A mixed batch: tractable classes plus one UNIQUE-SAT-hard failure."""
    classes = [
        EquivalenceType.I_N,
        EquivalenceType.I_P,
        EquivalenceType.P_I,
        EquivalenceType.N_I,
        EquivalenceType.NP_I,
        EquivalenceType.N_N,  # hard: records an error instead of witnesses
    ]
    batch = []
    for index, equivalence in enumerate(classes):
        base = random_circuit(4, 16, rng)
        c1, c2, _ = make_instance(base, equivalence, rng)
        batch.append(
            PairTask(
                index=index,
                circuit1=c1,
                circuit2=c2,
                equivalence=equivalence.label,
                seed=derive_seed(1234, index),
                pair_id=f"pair-{index}",
            )
        )
    return batch


class TestDeriveSeed:
    def test_deterministic_and_decorrelated(self):
        assert derive_seed(7, 0) == derive_seed(7, 0)
        assert derive_seed(7, 0) != derive_seed(7, 1)
        assert derive_seed(7, 0) != derive_seed(8, 0)

    def test_none_base_stays_none(self):
        assert derive_seed(None, 5) is None


class TestSerialExecutor:
    def test_outcomes_in_order_with_errors_recorded(self, tasks):
        outcomes = SerialExecutor().execute(tasks, MatchingConfig())
        assert [outcome.index for outcome in outcomes] == list(range(len(tasks)))
        assert [outcome.pair_id for outcome in outcomes] == [
            task.pair_id for task in tasks
        ]
        hard = outcomes[-1]
        assert not hard.matched and "UNIQUE-SAT" in hard.error
        for outcome in outcomes[:-1]:
            assert outcome.matched and outcome.matcher is not None

    def test_results_are_plain_json(self, tasks):
        outcomes = SerialExecutor().execute(tasks[:2], MatchingConfig())
        json.dumps([outcome.result for outcome in outcomes])  # must not raise


class TestParallelExecutor:
    def test_four_workers_byte_identical_to_serial(self, tasks):
        config = MatchingConfig()
        serial = SerialExecutor().execute(tasks, config)
        parallel = ParallelExecutor(workers=4).execute(tasks, config)
        serial_bytes = json.dumps(
            [dataclasses.asdict(outcome) for outcome in serial], sort_keys=True
        ).encode("utf-8")
        parallel_bytes = json.dumps(
            [dataclasses.asdict(outcome) for outcome in parallel], sort_keys=True
        ).encode("utf-8")
        assert serial_bytes == parallel_bytes

    def test_chunk_size_one_still_ordered(self, tasks):
        outcomes = ParallelExecutor(workers=2, chunk_size=1).execute(
            tasks, MatchingConfig()
        )
        assert [outcome.index for outcome in outcomes] == list(range(len(tasks)))

    def test_single_worker_falls_back_to_serial_path(self, tasks):
        outcomes = ParallelExecutor(workers=1).execute(tasks[:2], MatchingConfig())
        assert len(outcomes) == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(chunk_size=0)
