"""Unit tests for the execution backends.

The load-bearing property is the acceptance criterion of the service
subsystem: every backend — serial, four-process parallel, overlap —
produces byte-identical per-task outcomes for the same seed, because
every task carries its own derived RNG seed and shares no state with its
neighbours; backends differ only in the arrival order of
:meth:`Executor.stream`.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.circuits.random import random_circuit
from repro.core.engine import MatchingConfig
from repro.core.equivalence import EquivalenceType
from repro.core.verify import make_instance
from repro.service.executor import (
    OverlapExecutor,
    PairTask,
    ParallelExecutor,
    SerialExecutor,
    TaskOutcome,
    derive_seed,
)


def _canonical(outcomes) -> bytes:
    """Outcomes as canonical JSON bytes, sorted by task index.

    ``duration_s`` is dropped: it is telemetry (``compare=False`` on the
    dataclass), measured per process, and never part of the byte-identity
    contract between serial and parallel execution.
    """
    payload = []
    for outcome in outcomes:
        data = dataclasses.asdict(outcome)
        data.pop("duration_s", None)
        payload.append(data)
    return json.dumps(
        sorted(payload, key=lambda outcome: outcome["index"]),
        sort_keys=True,
    ).encode("utf-8")


@pytest.fixture
def tasks(rng):
    """A mixed batch: tractable classes plus one UNIQUE-SAT-hard failure."""
    classes = [
        EquivalenceType.I_N,
        EquivalenceType.I_P,
        EquivalenceType.P_I,
        EquivalenceType.N_I,
        EquivalenceType.NP_I,
        EquivalenceType.N_N,  # hard: records an error instead of witnesses
    ]
    batch = []
    for index, equivalence in enumerate(classes):
        base = random_circuit(4, 16, rng)
        c1, c2, _ = make_instance(base, equivalence, rng)
        batch.append(
            PairTask(
                index=index,
                circuit1=c1,
                circuit2=c2,
                equivalence=equivalence.label,
                seed=derive_seed(1234, index),
                pair_id=f"pair-{index}",
            )
        )
    return batch


class TestDeriveSeed:
    def test_deterministic_and_decorrelated(self):
        assert derive_seed(7, 0) == derive_seed(7, 0)
        assert derive_seed(7, 0) != derive_seed(7, 1)
        assert derive_seed(7, 0) != derive_seed(8, 0)

    def test_none_base_stays_none(self):
        assert derive_seed(None, 5) is None


class TestSerialExecutor:
    def test_stream_preserves_task_order_with_errors_recorded(self, tasks):
        outcomes = list(SerialExecutor().stream(tasks, MatchingConfig()))
        assert [outcome.index for outcome in outcomes] == list(range(len(tasks)))
        assert [outcome.pair_id for outcome in outcomes] == [
            task.pair_id for task in tasks
        ]
        hard = outcomes[-1]
        assert not hard.matched and "UNIQUE-SAT" in hard.error
        for outcome in outcomes[:-1]:
            assert outcome.matched and outcome.matcher is not None

    def test_stream_consumes_tasks_lazily(self, tasks):
        """One task in, one outcome out — the overlap-enabling property."""
        pulled = []

        def task_source():
            for task in tasks[:3]:
                pulled.append(task.index)
                yield task

        stream = SerialExecutor().stream(task_source(), MatchingConfig())
        assert pulled == []
        next(stream)
        assert pulled == [0]
        next(stream)
        assert pulled == [0, 1]

    def test_results_are_plain_json(self, tasks):
        outcomes = SerialExecutor().stream(tasks[:2], MatchingConfig())
        json.dumps([outcome.result for outcome in outcomes])  # must not raise


class TestExecuteDeprecationShim:
    def test_execute_warns_and_matches_sorted_stream(self, tasks):
        config = MatchingConfig()
        streamed = list(SerialExecutor().stream(tasks, config))
        with pytest.warns(DeprecationWarning, match="SerialExecutor.execute"):
            executed = SerialExecutor().execute(tasks, config)
        assert executed == streamed

    def test_execute_sorts_parallel_arrivals_by_index(self, tasks):
        with pytest.warns(DeprecationWarning, match="ParallelExecutor.execute"):
            outcomes = ParallelExecutor(workers=2, chunk_size=1).execute(
                tasks, MatchingConfig()
            )
        assert [outcome.index for outcome in outcomes] == list(range(len(tasks)))


class TestParallelExecutor:
    def test_four_workers_byte_identical_to_serial(self, tasks):
        config = MatchingConfig()
        serial = SerialExecutor().stream(tasks, config)
        parallel = ParallelExecutor(workers=4).stream(tasks, config)
        assert _canonical(serial) == _canonical(parallel)

    def test_chunked_stream_covers_every_task(self, tasks):
        outcomes = list(
            ParallelExecutor(workers=2, chunk_size=1).stream(
                tasks, MatchingConfig()
            )
        )
        assert sorted(outcome.index for outcome in outcomes) == list(
            range(len(tasks))
        )

    def test_single_worker_falls_back_to_serial_path(self, tasks):
        outcomes = list(
            ParallelExecutor(workers=1).stream(tasks[:2], MatchingConfig())
        )
        assert len(outcomes) == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(chunk_size=0)


class TestOverlapExecutor:
    def test_byte_identical_to_inner_serial(self, tasks):
        config = MatchingConfig()
        serial = SerialExecutor().stream(tasks, config)
        overlap = OverlapExecutor().stream(tasks, config)
        assert _canonical(serial) == _canonical(overlap)

    def test_preserves_inner_order(self, tasks):
        outcomes = list(OverlapExecutor(buffer_size=2).stream(tasks, MatchingConfig()))
        assert [outcome.index for outcome in outcomes] == list(range(len(tasks)))

    def test_name_reflects_inner_backend(self):
        assert OverlapExecutor().name == "overlap[serial]"
        assert OverlapExecutor(ParallelExecutor(workers=2)).name == "overlap[parallel]"

    def test_producer_exceptions_reach_the_consumer(self, tasks):
        bad = PairTask(
            index=0,
            circuit1=tasks[0].circuit1,
            circuit2=tasks[0].circuit2,
            equivalence="NOT-A-CLASS",
        )
        with pytest.raises(ValueError, match="unknown equivalence label"):
            list(OverlapExecutor().stream([bad], MatchingConfig()))

    def test_rejects_bad_buffer(self):
        with pytest.raises(ValueError):
            OverlapExecutor(buffer_size=0)

    def test_abandoning_the_stream_does_not_deadlock(self):
        """Closing the generator early must unblock a producer stuck on a
        full queue (regression: join() used to wait forever)."""

        class Firehose(SerialExecutor):
            name = "firehose"

            def stream(self, tasks, config):
                for index in range(1000):
                    yield TaskOutcome(index=index, pair_id=None, equivalence="I-I")

        stream = OverlapExecutor(Firehose(), buffer_size=2).stream(
            [], MatchingConfig()
        )
        assert next(stream).index == 0
        stream.close()  # must return promptly, not hang on join()
