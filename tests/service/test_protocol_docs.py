"""docs/protocol.md is executable: its example session runs verbatim
against a real daemon, so the documented wire protocol cannot drift
from the implementation.

Matching is structural, per the convention stated in the document:
documented keys must exist with the documented values, ``…`` is a
wildcard (prefix wildcard at the end of a string), and
machine-specific keys (pids, paths, timings, per-pair records) are
present-but-not-compared.
"""

from __future__ import annotations

import json
import re
import socket
from pathlib import Path

import pytest

from repro.circuits.io import write_real
from repro.circuits.library import hidden_weighted_bit
from repro.service import MatchingDaemon

DOC = Path(__file__).resolve().parents[2] / "docs" / "protocol.md"

WILDCARD = "…"  # …

#: Keys whose values are inherently machine- or timing-specific; the
#: doc shows a representative value, the test only checks presence.
VOLATILE = {"pid", "store", "store_path", "store_dir", "path", "uptime",
            "elapsed", "record"}


def parse_session(text: str) -> list[tuple[str, str]]:
    """Extract the ``C:``/``S:`` lines of every ```protocol fence."""
    steps: list[tuple[str, str]] = []
    for block in re.findall(r"```protocol\n(.*?)```", text, re.S):
        for line in block.splitlines():
            line = line.strip()
            if line.startswith("C: "):
                steps.append(("C", line[3:]))
            elif line.startswith("S: "):
                steps.append(("S", line[3:]))
            elif line:
                raise AssertionError(f"unparseable protocol line: {line!r}")
    return steps


def assert_matches(documented, actual, where="$") -> None:
    if isinstance(documented, str):
        if documented == WILDCARD:
            return
        if documented.endswith(WILDCARD):
            prefix = documented[:-1]
            assert isinstance(actual, str) and actual.startswith(prefix), (
                f"{where}: {actual!r} does not start with {prefix!r}"
            )
            return
        assert actual == documented, f"{where}: {actual!r} != {documented!r}"
    elif isinstance(documented, dict):
        assert isinstance(actual, dict), f"{where}: expected an object"
        for key, value in documented.items():
            assert key in actual, f"{where}.{key}: documented but absent"
            if key in VOLATILE:
                continue
            assert_matches(value, actual[key], f"{where}.{key}")
    elif isinstance(documented, list):
        assert isinstance(actual, list) and len(actual) == len(documented), (
            f"{where}: expected a {len(documented)}-element array"
        )
        for index, (doc_item, actual_item) in enumerate(zip(documented, actual)):
            assert_matches(doc_item, actual_item, f"{where}[{index}]")
    else:
        assert actual == documented, f"{where}: {actual!r} != {documented!r}"


def rewrite_paths(frame, substitutions: dict):
    """Point the documented circuit/manifest paths at the test's files."""
    if isinstance(frame, dict):
        return {
            key: (
                substitutions[key]
                if key in substitutions
                else rewrite_paths(value, substitutions)
            )
            for key, value in frame.items()
        }
    if isinstance(frame, list):
        return [rewrite_paths(item, substitutions) for item in frame]
    return frame


@pytest.fixture
def circuit_files(tmp_path):
    circuit = hidden_weighted_bit(3)
    c1, c2 = tmp_path / "c1.real", tmp_path / "c2.real"
    write_real(circuit, c1)
    write_real(circuit, c2)
    return str(c1), str(c2)


class TestProtocolDocument:
    def test_every_op_is_documented(self):
        text = DOC.read_text(encoding="utf-8")
        for op in ("ping", "submit", "status", "events", "cancel", "stats",
                   "shutdown"):
            assert f"`{op}`" in text, f"op {op} missing from protocol.md"
        assert "repro-daemon/v1" in text

    def test_documented_session_replays_against_a_live_daemon(
        self, tmp_path, circuit_files
    ):
        steps = parse_session(DOC.read_text(encoding="utf-8"))
        assert steps, "protocol.md lost its validated session"
        c1, c2 = circuit_files
        substitutions = {"circuit1": c1, "circuit2": c2}

        daemon = MatchingDaemon(
            store_dir=tmp_path / "runs", host="127.0.0.1", port=0
        )
        daemon.start()
        try:
            _, _, rest = daemon.address.partition(":")
            host, _, port = rest.rpartition(":")
            connection = socket.create_connection((host, int(port)), timeout=30)
            reader = connection.makefile("r", encoding="utf-8")
            try:
                for kind, payload in steps:
                    if kind == "C":
                        try:
                            frame = json.loads(payload)
                        except json.JSONDecodeError:
                            wire = payload  # the documented malformed frame
                        else:
                            wire = json.dumps(rewrite_paths(frame, substitutions))
                        connection.sendall((wire + "\n").encode("utf-8"))
                    else:
                        documented = json.loads(payload)
                        line = reader.readline()
                        assert line, f"daemon hung up before: {payload}"
                        assert_matches(documented, json.loads(line))
            finally:
                connection.close()
            daemon.serve_forever()  # returns once the documented shutdown lands
        finally:
            daemon.stop()
