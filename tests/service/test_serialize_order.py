"""Insertion-order independence of the serialisation layer.

Cache entries and JSONL records are digested byte-for-byte, so two
results that differ only in the *insertion order* of their metadata
dicts must serialise to identical JSON.  These tests shuffle key
insertion order explicitly and compare ``json.dumps`` output.
"""

from __future__ import annotations

import json
import random

from repro.core.equivalence import EquivalenceType
from repro.core.problem import MatchingResult
from repro.service.serialize import json_safe, result_to_dict

_ITEMS = [
    ("regime", "classical"),
    ("repetitions", 3),
    ("probe", {"beta": 2, "alpha": 1, "gamma": [3, 1, 2]}),
    ("elapsed", 0.25),
    ("matcher", "np-np"),
]


def _shuffled_dict(seed: int) -> dict:
    rng = random.Random(seed)
    items = list(_ITEMS)
    rng.shuffle(items)
    return {
        key: (
            dict(sorted(value.items(), key=lambda _: rng.random()))
            if isinstance(value, dict)
            else value
        )
        for key, value in items
    }


def test_json_safe_is_insertion_order_independent():
    baseline = json.dumps(json_safe(_shuffled_dict(0)))
    for seed in range(1, 8):
        assert json.dumps(json_safe(_shuffled_dict(seed))) == baseline


def test_json_safe_sorts_nested_dicts_too():
    safe = json_safe({"outer": {"b": 1, "a": {"d": 2, "c": 3}}})
    assert list(safe["outer"]) == ["a", "b"]
    assert list(safe["outer"]["a"]) == ["c", "d"]


def test_json_safe_stringifies_mixed_keys_deterministically():
    first = json_safe({1: "x", "1a": "y", 2: "z"})
    second = json_safe(dict(reversed(list({1: "x", "1a": "y", 2: "z"}.items()))))
    assert json.dumps(first) == json.dumps(second)
    assert set(first) == {"1", "1a", "2"}


def test_result_to_dict_bytes_are_stable_across_metadata_order():
    def result(seed: int) -> MatchingResult:
        return MatchingResult(
            equivalence=EquivalenceType.NP_NP,
            nu_x=(True, False),
            pi_x=[1, 0],
            queries=12,
            metadata=_shuffled_dict(seed),
        )

    baseline = json.dumps(result_to_dict(result(0)), sort_keys=True)
    for seed in range(1, 8):
        assert json.dumps(result_to_dict(result(seed)), sort_keys=True) == (
            baseline
        )
