"""Integration tests for the MatchingService pipeline.

Covers the service-level acceptance criteria: a warm cache re-run of a
manifest performs zero oracle queries, a parallel manifest run writes the
same records as a serial one, and an interrupted run resumes from its
JSONL store without re-executing finished pairs.
"""

from __future__ import annotations

import json

import pytest

from repro.circuits.random import random_circuit
from repro.core.engine import MatchingConfig
from repro.core.equivalence import EquivalenceType
from repro.core.verify import make_instance
from repro.exceptions import ServiceError
from repro.oracles.oracle import ReversibleOracle
from repro.quantum.oracle import QuantumCircuitOracle
from repro.service.cache import LRUCache, build_cache
from repro.service.executor import ParallelExecutor, SerialExecutor
from repro.service.pipeline import MatchingService, ResultStore
from repro.service.workload import generate_corpus


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """One small corpus shared by the pipeline tests (read-only)."""
    root = tmp_path_factory.mktemp("corpus")
    generate_corpus(root, num_lines=4, pairs_per_class=1, seed=42)
    return root


class TestResultStore:
    def test_append_load_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        assert store.load() == {}
        store.append({"pair_id": "a", "status": "ok"})
        store.append({"pair_id": "b", "status": "failed"})
        loaded = store.load()
        assert set(loaded) == {"a", "b"}

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.append({"pair_id": "a", "status": "ok"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"pair_id": "b", "stat')  # crash mid-append
        assert set(store.load()) == {"a"}

    def test_newest_record_wins(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        store.append({"pair_id": "a", "status": "failed"})
        store.append({"pair_id": "a", "status": "ok"})
        assert store.load()["a"]["status"] == "ok"


class TestRunManifest:
    def test_serial_run_matches_equivalent_families(self, corpus):
        report = MatchingService().run_manifest(corpus, seed=5)
        assert report.total == 24
        assert report.executed == 24
        for record in report.records:
            if record["family"] != "adversarial":
                assert record["status"] == "ok", record
        assert report.pairs_per_second > 0
        assert "pairs/s" in report.summary()
        assert "status" in report.to_table()

    def test_parallel_run_writes_identical_records(self, corpus):
        serial = MatchingService(executor=SerialExecutor()).run_manifest(
            corpus, seed=9
        )
        parallel = MatchingService(
            executor=ParallelExecutor(workers=4)
        ).run_manifest(corpus, seed=9)
        assert json.dumps(serial.records, sort_keys=True) == json.dumps(
            parallel.records, sort_keys=True
        )

    def test_verify_flags_adversarial_matches(self, corpus):
        report = MatchingService(verify=True).run_manifest(corpus, seed=5)
        verdicts = {
            record["family"]: record.get("verified")
            for record in report.records
            if record["status"] == "ok"
        }
        assert verdicts["random"] is True and verdicts["library"] is True
        adversarial_ok = [
            record
            for record in report.records
            if record["family"] == "adversarial" and record["status"] == "ok"
        ]
        # Near-misses that "match" under the promise must fail verification
        # (the trivial I-I matcher, and any randomised matcher that got
        # lucky) — that is exactly what the family exists to expose.
        assert adversarial_ok and all(
            record["verified"] is False for record in adversarial_ok
        )

    def test_store_records_stream_in_manifest_order(self, corpus, tmp_path):
        store_path = tmp_path / "results.jsonl"
        report = MatchingService().run_manifest(
            corpus, store_path=store_path, seed=5
        )
        lines = [
            json.loads(line)
            for line in store_path.read_text().splitlines()
            if line
        ]
        assert [record["pair_id"] for record in lines] == [
            record["pair_id"] for record in report.records
        ]


class TestWarmCache:
    def test_warm_rerun_executes_nothing(self, corpus):
        service = MatchingService(cache=build_cache())
        cold = service.run_manifest(corpus, seed=5)
        warm = service.run_manifest(corpus, seed=5)
        assert cold.executed == 24 and cold.cache_hits == 0
        assert warm.executed == 0 and warm.cache_hits == 24
        assert warm.matched == cold.matched and warm.failed == cold.failed

    def test_warm_rerun_performs_zero_oracle_queries(self, corpus, monkeypatch):
        service = MatchingService(cache=build_cache())
        service.run_manifest(corpus, seed=5)

        def forbidden(self, *args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("warm cache run touched an oracle")

        monkeypatch.setattr(ReversibleOracle, "query", forbidden)
        monkeypatch.setattr(ReversibleOracle, "query_inverse", forbidden)
        monkeypatch.setattr(QuantumCircuitOracle, "query_state", forbidden)
        monkeypatch.setattr(QuantumCircuitOracle, "query_basis", forbidden)
        warm = service.run_manifest(corpus, seed=5)
        assert warm.cache_hits == 24
        assert warm.classical_queries == 0 and warm.quantum_queries == 0

    def test_disk_cache_survives_service_restart(self, corpus, tmp_path):
        cache_dir = tmp_path / "cache"
        MatchingService(cache=build_cache(disk_dir=cache_dir)).run_manifest(
            corpus, seed=5
        )
        fresh = MatchingService(cache=build_cache(disk_dir=cache_dir))
        warm = fresh.run_manifest(corpus, seed=5)
        assert warm.executed == 0 and warm.cache_hits == 24


class TestResume:
    def test_resume_skips_done_pairs(self, corpus, tmp_path):
        store_path = tmp_path / "results.jsonl"
        MatchingService().run_manifest(corpus, store_path=store_path, seed=5)
        # Simulate a crash: keep only the first 10 records.
        lines = store_path.read_text().splitlines()
        store_path.write_text("\n".join(lines[:10]) + "\n", encoding="utf-8")

        report = MatchingService().run_manifest(
            corpus, store_path=store_path, resume=True, seed=5
        )
        assert report.resumed == 10
        assert report.executed == report.total - 10
        assert {
            record["status"] for record in report.records[:10]
        } == {"resumed"}
        # The store is now complete again.
        assert len(ResultStore(store_path).load()) == report.total

    def test_resumed_pairs_reuse_their_original_seed_slot(self, corpus, tmp_path):
        # A full run and a crash+resume run must produce identical stores
        # (modulo record order), because per-pair seeds derive from the
        # manifest position, not from the executed batch.
        full_store = tmp_path / "full.jsonl"
        MatchingService().run_manifest(corpus, store_path=full_store, seed=5)
        crash_store = tmp_path / "crash.jsonl"
        MatchingService().run_manifest(corpus, store_path=crash_store, seed=5)
        lines = crash_store.read_text().splitlines()
        crash_store.write_text("\n".join(lines[:7]) + "\n", encoding="utf-8")
        MatchingService().run_manifest(
            corpus, store_path=crash_store, resume=True, seed=5
        )
        full = ResultStore(full_store).load()
        resumed = ResultStore(crash_store).load()
        assert full == resumed

    def test_resume_requires_store(self, corpus):
        with pytest.raises(ServiceError, match="resume requires"):
            MatchingService().run_manifest(corpus, resume=True)


class TestMatchPairs:
    def test_in_memory_pairs_with_default_class(self, rng):
        base = random_circuit(4, 12, rng)
        pairs = [make_instance(base, EquivalenceType.I_P, rng)[:2] for _ in range(3)]
        service = MatchingService(cache=LRUCache())
        report = service.match_pairs(pairs, equivalence="I-P", seed=2)
        assert report.matched == 3
        # The three pairs share the base circuit but differ in C1, so no
        # intra-run hits are guaranteed; a re-run hits for all of them.
        warm = service.match_pairs(pairs, equivalence=EquivalenceType.I_P, seed=2)
        assert warm.cache_hits == 3 and warm.executed == 0

    def test_bad_tuples_are_rejected(self, rng):
        circuit = random_circuit(3, 6, rng)
        service = MatchingService()
        with pytest.raises(ServiceError, match="elements"):
            service.match_pairs([(circuit,)])
        with pytest.raises(ServiceError, match="no equivalence class"):
            service.match_pairs([(circuit, circuit)])

    def test_budget_is_respected_per_pair(self, rng):
        base = random_circuit(4, 12, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.P_I, rng)
        service = MatchingService(MatchingConfig(max_queries=1))
        report = service.match_pairs([(c1, c2, "P-I")], seed=2)
        assert report.failed == 1
        assert "QueryBudgetExceededError" in report.records[0]["error"]
