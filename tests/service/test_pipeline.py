"""Integration tests for the MatchingService pipeline.

Covers the service-level acceptance criteria: a warm cache re-run of a
manifest performs zero oracle queries, a parallel manifest run writes the
same records as a serial one, and an interrupted run resumes from its
JSONL store without re-executing finished pairs.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.circuits.random import random_circuit
from repro.core.engine import MatchingConfig
from repro.core.equivalence import EquivalenceType
from repro.core.verify import make_instance
from repro.exceptions import ServiceError
from repro.oracles.oracle import ReversibleOracle
from repro.quantum.oracle import QuantumCircuitOracle
from repro.service.cache import LRUCache, build_cache
from repro.service.events import RunCompleted
from repro.service.executor import OverlapExecutor, ParallelExecutor, SerialExecutor
from repro.service.pipeline import (
    MatchingService,
    ResultStore,
    merge_stores,
    parse_shard,
    shard_index,
)
from repro.service.workload import generate_corpus


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """One small corpus shared by the pipeline tests (read-only)."""
    root = tmp_path_factory.mktemp("corpus")
    generate_corpus(root, num_lines=4, pairs_per_class=1, seed=42)
    return root


class TestResultStore:
    def test_append_load_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        assert store.load() == {}
        store.append({"pair_id": "a", "status": "ok"})
        store.append({"pair_id": "b", "status": "failed"})
        loaded = store.load()
        assert set(loaded) == {"a", "b"}

    def test_torn_final_line_is_skipped_with_a_warning(self, tmp_path):
        path = tmp_path / "results.jsonl"
        store = ResultStore(path)
        store.append({"pair_id": "a", "status": "ok"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"pair_id": "b", "stat')  # crash mid-append
        with pytest.warns(UserWarning, match="truncated or malformed"):
            loaded = store.load()
        assert set(loaded) == {"a"}

    def test_clean_store_loads_without_warnings(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        store.append({"pair_id": "a", "status": "ok"})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert set(store.load()) == {"a"}

    def test_resume_survives_a_torn_trailing_record(self, corpus, tmp_path):
        """A crash mid-append must not poison --resume (the satellite bug)."""
        store_path = tmp_path / "results.jsonl"
        MatchingService().run_manifest(corpus, store_path=store_path, seed=5)
        full = ResultStore(store_path).load()
        # Re-create the store with the last record torn mid-write.
        lines = store_path.read_text().splitlines()
        store_path.write_text(
            "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2],
            encoding="utf-8",
        )
        with pytest.warns(UserWarning, match="re-run on resume"):
            report = MatchingService().run_manifest(
                corpus, store_path=store_path, resume=True, seed=5
            )
        assert report.resumed == report.total - 1 and report.executed == 1
        with pytest.warns(UserWarning):  # the torn line stays in the file
            assert ResultStore(store_path).load() == full

    def test_touch_materialises_an_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        assert not store.exists
        store.touch()
        assert store.exists and store.load() == {}

    def test_newest_record_wins(self, tmp_path):
        store = ResultStore(tmp_path / "results.jsonl")
        store.append({"pair_id": "a", "status": "failed"})
        store.append({"pair_id": "a", "status": "ok"})
        assert store.load()["a"]["status"] == "ok"


class TestStreamingRuns:
    """The tentpole contract: streaming == batch, regardless of backend."""

    def test_stream_is_the_primitive_behind_run_manifest(self, corpus, tmp_path):
        service = MatchingService()
        streamed_store = tmp_path / "streamed.jsonl"
        report = None
        for event in service.stream(corpus, store_path=streamed_store, seed=5):
            if isinstance(event, RunCompleted):
                report = event.report
        consumed_store = tmp_path / "consumed.jsonl"
        consumed = service.run_manifest(
            corpus, store_path=consumed_store, seed=5
        )
        assert report is not None and report.records == consumed.records
        assert streamed_store.read_bytes() == consumed_store.read_bytes()

    def test_overlap_store_byte_identical_to_serial(self, corpus, tmp_path):
        serial_store = tmp_path / "serial.jsonl"
        overlap_store = tmp_path / "overlap.jsonl"
        MatchingService().run_manifest(corpus, store_path=serial_store, seed=9)
        MatchingService(executor=OverlapExecutor()).run_manifest(
            corpus, store_path=overlap_store, seed=9
        )
        assert serial_store.read_bytes() == overlap_store.read_bytes()

    def test_parallel_stream_records_identical_to_serial(self, corpus, tmp_path):
        serial = MatchingService().run_manifest(corpus, seed=9)
        parallel_store = tmp_path / "parallel.jsonl"
        parallel = MatchingService(
            executor=ParallelExecutor(workers=4, chunk_size=1)
        ).run_manifest(corpus, store_path=parallel_store, seed=9)
        # Arrival (and therefore store line) order is backend-specific,
        # but the record set — seeds, witnesses, query counts — is not.
        assert json.dumps(parallel.records, sort_keys=True) == json.dumps(
            serial.records, sort_keys=True
        )
        assert len(ResultStore(parallel_store).load()) == serial.total

    def test_stopping_the_stream_keeps_streamed_records(self, corpus, tmp_path):
        """Records persist before their event is yielded, so breaking out
        of the stream never loses a pair the consumer already saw."""
        from repro.service.events import TaskCompleted, TaskFailed

        store_path = tmp_path / "partial.jsonl"
        seen = []
        stream = MatchingService().stream(corpus, store_path=store_path, seed=5)
        for event in stream:
            if isinstance(event, (TaskCompleted, TaskFailed)):
                seen.append(event.record["pair_id"])
                if len(seen) == 3:
                    break
        stream.close()
        stored = ResultStore(store_path).load()
        assert set(seen) <= set(stored)

    def test_warm_cache_streaming_run_executes_nothing(self, corpus):
        service = MatchingService(
            executor=OverlapExecutor(), cache=build_cache()
        )
        cold = service.run_manifest(corpus, seed=5)
        warm = service.run_manifest(corpus, seed=5)
        assert cold.executed == cold.total
        assert warm.executed == 0 and warm.cache_hits == warm.total
        assert warm.classical_queries == 0 and warm.quantum_queries == 0


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("0/3") == (0, 3)
        assert parse_shard("2/3") == (2, 3)
        for bad in ("3/3", "-1/3", "0/0", "a/b", "1", "1/2/3"):
            with pytest.raises(ServiceError):
                parse_shard(bad)

    def test_shard_index_is_a_stable_partition(self):
        ids = [f"pair-{i:03d}" for i in range(64)]
        buckets = [shard_index(pair_id, 4) for pair_id in ids]
        assert set(buckets) <= set(range(4))
        # Stable across calls (it is a pure hash, not salted).
        assert buckets == [shard_index(pair_id, 4) for pair_id in ids]
        # Every pair lands in exactly one shard.
        for pair_id in ids:
            owners = [
                shard for shard in range(4) if shard_index(pair_id, 4) == shard
            ]
            assert len(owners) == 1

    def test_shard_union_is_record_identical_to_unsharded(self, corpus, tmp_path):
        """Satellite: shards 0/3..2/3 union == the unsharded run, exactly.

        Record-for-record including per-pair seeds and query counts —
        because shard runs keep manifest positions when deriving seeds.
        """
        full_store = tmp_path / "full.jsonl"
        full = MatchingService().run_manifest(
            corpus, store_path=full_store, seed=5
        )
        shard_reports = []
        shard_stores = []
        for index in range(3):
            store = tmp_path / f"shard{index}.jsonl"
            shard_stores.append(store)
            shard_reports.append(
                MatchingService().run_manifest(
                    corpus, store_path=store, seed=5, shard=(index, 3)
                )
            )
        assert sum(report.total for report in shard_reports) == full.total
        merged = tmp_path / "merged.jsonl"
        count = merge_stores(merged, shard_stores)
        assert count == full.total
        assert merged.read_bytes() == full_store.read_bytes()

    def test_shard_accepts_spec_strings(self, corpus):
        by_tuple = MatchingService().run_manifest(corpus, seed=5, shard=(1, 3))
        by_spec = MatchingService().run_manifest(corpus, seed=5, shard="1/3")
        assert by_tuple.records == by_spec.records
        assert by_spec.shard == (1, 3)
        assert "shard 1/3" in by_spec.summary()

    def test_invalid_shard_tuple_is_rejected(self, corpus):
        with pytest.raises(ServiceError, match="invalid shard"):
            MatchingService().run_manifest(corpus, shard=(3, 3))


class TestMergeStores:
    def test_merge_missing_store_fails(self, tmp_path):
        with pytest.raises(ServiceError, match="does not exist"):
            merge_stores(tmp_path / "out.jsonl", [tmp_path / "nope.jsonl"])

    def test_merge_tolerates_empty_shards(self, tmp_path):
        empty = ResultStore(tmp_path / "empty.jsonl")
        empty.touch()
        full = ResultStore(tmp_path / "full.jsonl")
        full.append({"pair_id": "a", "index": 1, "status": "ok"})
        full.append({"pair_id": "b", "index": 0, "status": "ok"})
        out = tmp_path / "out.jsonl"
        assert merge_stores(out, [empty.path, full.path]) == 2
        ordered = [json.loads(line) for line in out.read_text().splitlines()]
        assert [record["pair_id"] for record in ordered] == ["b", "a"]

    def test_merge_rejects_conflicting_records(self, tmp_path):
        one = ResultStore(tmp_path / "one.jsonl")
        one.append({"pair_id": "a", "index": 0, "status": "ok"})
        two = ResultStore(tmp_path / "two.jsonl")
        two.append({"pair_id": "a", "index": 0, "status": "failed"})
        with pytest.raises(ServiceError, match="conflicting records"):
            merge_stores(tmp_path / "out.jsonl", [one.path, two.path])

    def test_merge_deduplicates_identical_records(self, tmp_path):
        one = ResultStore(tmp_path / "one.jsonl")
        one.append({"pair_id": "a", "index": 0, "status": "ok"})
        two = ResultStore(tmp_path / "two.jsonl")
        two.append({"pair_id": "a", "index": 0, "status": "ok"})
        out = tmp_path / "out.jsonl"
        assert merge_stores(out, [one.path, two.path]) == 1


class TestRunManifest:
    def test_serial_run_matches_equivalent_families(self, corpus):
        report = MatchingService().run_manifest(corpus, seed=5)
        assert report.total == 24
        assert report.executed == 24
        for record in report.records:
            if record["family"] != "adversarial":
                assert record["status"] == "ok", record
        assert report.pairs_per_second > 0
        assert "pairs/s" in report.summary()
        assert "status" in report.to_table()

    def test_parallel_run_writes_identical_records(self, corpus):
        serial = MatchingService(executor=SerialExecutor()).run_manifest(
            corpus, seed=9
        )
        parallel = MatchingService(
            executor=ParallelExecutor(workers=4)
        ).run_manifest(corpus, seed=9)
        assert json.dumps(serial.records, sort_keys=True) == json.dumps(
            parallel.records, sort_keys=True
        )

    def test_verify_flags_adversarial_matches(self, corpus):
        report = MatchingService(verify=True).run_manifest(corpus, seed=5)
        verdicts = {
            record["family"]: record.get("verified")
            for record in report.records
            if record["status"] == "ok"
        }
        assert verdicts["random"] is True and verdicts["library"] is True
        adversarial_ok = [
            record
            for record in report.records
            if record["family"] == "adversarial" and record["status"] == "ok"
        ]
        # Near-misses that "match" under the promise must fail verification
        # (the trivial I-I matcher, and any randomised matcher that got
        # lucky) — that is exactly what the family exists to expose.
        assert adversarial_ok and all(
            record["verified"] is False for record in adversarial_ok
        )

    def test_store_records_stream_in_manifest_order(self, corpus, tmp_path):
        store_path = tmp_path / "results.jsonl"
        report = MatchingService().run_manifest(
            corpus, store_path=store_path, seed=5
        )
        lines = [
            json.loads(line)
            for line in store_path.read_text().splitlines()
            if line
        ]
        assert [record["pair_id"] for record in lines] == [
            record["pair_id"] for record in report.records
        ]


class TestWarmCache:
    def test_warm_rerun_executes_nothing(self, corpus):
        service = MatchingService(cache=build_cache())
        cold = service.run_manifest(corpus, seed=5)
        warm = service.run_manifest(corpus, seed=5)
        assert cold.executed == 24 and cold.cache_hits == 0
        assert warm.executed == 0 and warm.cache_hits == 24
        assert warm.matched == cold.matched and warm.failed == cold.failed

    def test_warm_rerun_performs_zero_oracle_queries(self, corpus, monkeypatch):
        service = MatchingService(cache=build_cache())
        service.run_manifest(corpus, seed=5)

        def forbidden(self, *args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("warm cache run touched an oracle")

        monkeypatch.setattr(ReversibleOracle, "query", forbidden)
        monkeypatch.setattr(ReversibleOracle, "query_inverse", forbidden)
        monkeypatch.setattr(QuantumCircuitOracle, "query_state", forbidden)
        monkeypatch.setattr(QuantumCircuitOracle, "query_basis", forbidden)
        warm = service.run_manifest(corpus, seed=5)
        assert warm.cache_hits == 24
        assert warm.classical_queries == 0 and warm.quantum_queries == 0

    def test_disk_cache_survives_service_restart(self, corpus, tmp_path):
        cache_dir = tmp_path / "cache"
        MatchingService(cache=build_cache(disk_dir=cache_dir)).run_manifest(
            corpus, seed=5
        )
        fresh = MatchingService(cache=build_cache(disk_dir=cache_dir))
        warm = fresh.run_manifest(corpus, seed=5)
        assert warm.executed == 0 and warm.cache_hits == 24


class TestResume:
    def test_resume_skips_done_pairs(self, corpus, tmp_path):
        store_path = tmp_path / "results.jsonl"
        MatchingService().run_manifest(corpus, store_path=store_path, seed=5)
        # Simulate a crash: keep only the first 10 records.
        lines = store_path.read_text().splitlines()
        store_path.write_text("\n".join(lines[:10]) + "\n", encoding="utf-8")

        report = MatchingService().run_manifest(
            corpus, store_path=store_path, resume=True, seed=5
        )
        assert report.resumed == 10
        assert report.executed == report.total - 10
        assert {
            record["status"] for record in report.records[:10]
        } == {"resumed"}
        # The store is now complete again.
        assert len(ResultStore(store_path).load()) == report.total

    def test_resumed_pairs_reuse_their_original_seed_slot(self, corpus, tmp_path):
        # A full run and a crash+resume run must produce identical stores
        # (modulo record order), because per-pair seeds derive from the
        # manifest position, not from the executed batch.
        full_store = tmp_path / "full.jsonl"
        MatchingService().run_manifest(corpus, store_path=full_store, seed=5)
        crash_store = tmp_path / "crash.jsonl"
        MatchingService().run_manifest(corpus, store_path=crash_store, seed=5)
        lines = crash_store.read_text().splitlines()
        crash_store.write_text("\n".join(lines[:7]) + "\n", encoding="utf-8")
        MatchingService().run_manifest(
            corpus, store_path=crash_store, resume=True, seed=5
        )
        full = ResultStore(full_store).load()
        resumed = ResultStore(crash_store).load()
        assert full == resumed

    def test_resume_requires_store(self, corpus):
        with pytest.raises(ServiceError, match="resume requires"):
            MatchingService().run_manifest(corpus, resume=True)


class TestMatchPairs:
    def test_in_memory_pairs_with_default_class(self, rng):
        base = random_circuit(4, 12, rng)
        pairs = [make_instance(base, EquivalenceType.I_P, rng)[:2] for _ in range(3)]
        service = MatchingService(cache=LRUCache())
        report = service.match_pairs(pairs, equivalence="I-P", seed=2)
        assert report.matched == 3
        # The three pairs share the base circuit but differ in C1, so no
        # intra-run hits are guaranteed; a re-run hits for all of them.
        warm = service.match_pairs(pairs, equivalence=EquivalenceType.I_P, seed=2)
        assert warm.cache_hits == 3 and warm.executed == 0

    def test_bad_tuples_are_rejected(self, rng):
        circuit = random_circuit(3, 6, rng)
        service = MatchingService()
        with pytest.raises(ServiceError, match="elements"):
            service.match_pairs([(circuit,)])
        with pytest.raises(ServiceError, match="no equivalence class"):
            service.match_pairs([(circuit, circuit)])

    def test_budget_is_respected_per_pair(self, rng):
        base = random_circuit(4, 12, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.P_I, rng)
        service = MatchingService(MatchingConfig(max_queries=1))
        report = service.match_pairs([(c1, c2, "P-I")], seed=2)
        assert report.failed == 1
        assert "QueryBudgetExceededError" in report.records[0]["error"]


class TestStreamPairs:
    def test_pairs_get_deterministic_ids_and_a_store(self, rng, tmp_path):
        base = random_circuit(4, 12, rng)
        pairs = [make_instance(base, EquivalenceType.I_P, rng)[:2] for _ in range(3)]
        store_path = tmp_path / "pairs.jsonl"
        service = MatchingService()
        events = list(
            service.stream_pairs(
                pairs, equivalence="I-P", seed=2, store_path=store_path
            )
        )
        report = [e for e in events if isinstance(e, RunCompleted)][0].report
        assert [r["pair_id"] for r in report.records] == [
            "pair-0000", "pair-0001", "pair-0002",
        ]
        assert set(ResultStore(store_path).load()) == {
            "pair-0000", "pair-0001", "pair-0002",
        }

    def test_resume_skips_stored_pairs(self, rng, tmp_path):
        base = random_circuit(4, 12, rng)
        pairs = [make_instance(base, EquivalenceType.I_P, rng)[:2] for _ in range(3)]
        store_path = tmp_path / "pairs.jsonl"
        service = MatchingService()
        list(service.stream_pairs(pairs, equivalence="I-P", seed=2,
                                  store_path=store_path))
        events = list(
            service.stream_pairs(
                pairs, equivalence="I-P", seed=2,
                store_path=store_path, resume=True,
            )
        )
        report = [e for e in events if isinstance(e, RunCompleted)][0].report
        assert report.resumed == 3 and report.executed == 0

    def test_resume_requires_store(self, rng):
        circuit = random_circuit(3, 6, rng)
        with pytest.raises(ServiceError, match="resume requires"):
            MatchingService().stream_pairs([(circuit, circuit, "I-I")], resume=True)


class TestWideWarmCache:
    """The PR-5 acceptance criterion: warm matching past 14 lines.

    The wide corpus pairs are 16-24 lines — beyond the exact-fingerprint
    limit, where v1 identity went structural and a fresh process could
    never warm-hit.  Sampled-probe fingerprints key them functionally.
    """

    @pytest.fixture(scope="class")
    def wide_corpus(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("wide_corpus")
        generate_corpus(root, families=("wide",), pairs_per_class=1, seed=21)
        return root

    def test_fresh_service_warm_rerun_spends_zero_queries(
        self, wide_corpus, monkeypatch
    ):
        cache = build_cache()
        cold = MatchingService(cache=cache).run_manifest(wide_corpus, seed=5)
        assert cold.executed == cold.total > 0

        def forbidden(self, *args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("warm wide run touched an oracle")

        monkeypatch.setattr(ReversibleOracle, "query", forbidden)
        monkeypatch.setattr(ReversibleOracle, "query_inverse", forbidden)
        monkeypatch.setattr(QuantumCircuitOracle, "query_state", forbidden)
        monkeypatch.setattr(QuantumCircuitOracle, "query_basis", forbidden)
        # A *fresh* service: every circuit is a different Python object,
        # so the hits are earned by probe identity, not object identity.
        warm = MatchingService(cache=cache).run_manifest(wide_corpus, seed=5)
        assert warm.executed == 0 and warm.cache_hits == warm.total
        assert warm.classical_queries == 0 and warm.quantum_queries == 0
        assert set(cache.stats.scheme_hits) == {"probe"}

    def test_wide_records_key_on_probe_scheme(self, wide_corpus):
        service = MatchingService(cache=build_cache())
        report = service.run_manifest(wide_corpus, seed=5)
        for record in report.records:
            assert ":probe:" in record["cache_key"]

    def test_injected_registry_overrides_config(self, corpus):
        from repro.service.fingerprint import build_registry

        cache = build_cache()
        service = MatchingService(
            cache=cache, fingerprint_registry=build_registry("probe")
        )
        report = service.run_manifest(corpus, seed=5)
        # Even 4-line pairs key on probe digests under the injected registry.
        for record in report.records:
            assert ":probe:" in record["cache_key"]
        assert service.fingerprint_registry.fingerprinters[0].scheme == "probe"


class TestKeyVersioning:
    """v1 cache/store entries must read as clean misses, never v2 hits."""

    def test_records_carry_the_key_version(self, corpus, tmp_path):
        store_path = tmp_path / "results.jsonl"
        MatchingService().run_manifest(corpus, store_path=store_path, seed=5)
        records = ResultStore(store_path).load()
        assert records
        for record in records.values():
            assert record["key_version"] == "v2"

    @staticmethod
    def _strip_versions(store_path):
        """Rewrite a store as a v1 process would have written it."""
        lines = []
        for line in store_path.read_text().splitlines():
            record = json.loads(line)
            record.pop("key_version", None)
            lines.append(json.dumps(record))
        store_path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def test_v1_store_records_are_not_resumed(self, corpus, tmp_path):
        store_path = tmp_path / "results.jsonl"
        MatchingService().run_manifest(corpus, store_path=store_path, seed=5)
        self._strip_versions(store_path)
        report = MatchingService().run_manifest(
            corpus, store_path=store_path, resume=True, seed=5
        )
        # Every pair re-ran: a version bump means the stored results may
        # have been produced under a different identity contract.
        assert report.resumed == 0
        assert report.executed == report.total

    def test_v1_pair_store_records_are_not_resumed(self, rng, tmp_path):
        base = random_circuit(4, 12, rng)
        pairs = [make_instance(base, EquivalenceType.I_P, rng)[:2] for _ in range(2)]
        store_path = tmp_path / "pairs.jsonl"
        service = MatchingService()
        list(
            service.stream_pairs(
                pairs, equivalence="I-P", seed=2, store_path=store_path
            )
        )
        self._strip_versions(store_path)
        events = list(
            service.stream_pairs(
                pairs, equivalence="I-P", seed=2,
                store_path=store_path, resume=True,
            )
        )
        report = [e for e in events if isinstance(e, RunCompleted)][0].report
        assert report.resumed == 0 and report.executed == 2


class TestMergeStoresUnderRetry:
    """Merging the stores a fleet reassignment leaves behind.

    A dead worker's partial shard store overlaps the retry's store
    record-for-record — the retry is pre-seeded with the mirrored
    records — so identical duplicates must merge cleanly, while a
    record that *differs* across stores means they do not belong to
    the same run and the merge must refuse.
    """

    @staticmethod
    def record(pair_id, index, queries):
        return {
            "pair_id": pair_id,
            "index": index,
            "status": "matched",
            "result": {"queries": queries},
        }

    def test_partial_and_retry_stores_merge_cleanly(self, tmp_path):
        partial = ResultStore(tmp_path / "dead-worker.jsonl")
        partial.append(self.record("a", 0, 3))
        partial.append(self.record("c", 2, 5))
        retry = ResultStore(tmp_path / "retry.jsonl")
        retry.append(self.record("a", 0, 3))  # pre-seeded mirror
        retry.append(self.record("c", 2, 5))  # pre-seeded mirror
        retry.append(self.record("b", 1, 7))  # freshly executed
        other = ResultStore(tmp_path / "other-shard.jsonl")
        other.append(self.record("d", 3, 2))
        out = tmp_path / "merged.jsonl"
        assert merge_stores(out, [partial.path, retry.path, other.path]) == 4
        ordered = [json.loads(line) for line in out.read_text().splitlines()]
        assert [record["pair_id"] for record in ordered] == ["a", "b", "c", "d"]
        # The dead worker's leftovers change nothing: dropping them
        # yields byte-identical output.
        without = tmp_path / "without-partial.jsonl"
        assert merge_stores(without, [retry.path, other.path]) == 4
        assert without.read_bytes() == out.read_bytes()

    def test_conflicting_retry_record_raises(self, tmp_path):
        partial = ResultStore(tmp_path / "dead-worker.jsonl")
        partial.append(self.record("a", 0, 3))
        retry = ResultStore(tmp_path / "retry.jsonl")
        retry.append(self.record("a", 0, 99))  # same pair, different answer
        with pytest.raises(ServiceError, match="conflicting records"):
            merge_stores(tmp_path / "out.jsonl", [partial.path, retry.path])

    def test_duplicates_within_one_store_still_resolve_newest_wins(
        self, tmp_path
    ):
        # A store that was resumed twice holds the same pair twice; the
        # load step resolves that before the cross-store conflict check.
        twice = ResultStore(tmp_path / "resumed.jsonl")
        twice.append(self.record("a", 0, 3))
        twice.append(self.record("a", 0, 3))
        out = tmp_path / "out.jsonl"
        assert merge_stores(out, [twice.path]) == 1
