"""Unit tests for canonical oracle fingerprints."""

from __future__ import annotations

import pytest

from repro.circuits.library import from_permutation
from repro.circuits.permutation import Permutation
from repro.circuits.random import random_circuit
from repro.core.engine import MatchingConfig
from repro.core.equivalence import EquivalenceType
from repro.exceptions import FingerprintError
from repro.oracles.oracle import CircuitOracle, FunctionOracle, PermutationOracle
from repro.quantum.oracle import QuantumCircuitOracle
from repro.service.fingerprint import (
    OracleFingerprint,
    config_digest,
    fingerprint,
    pair_key,
)


class TestFunctionalFingerprints:
    def test_circuit_and_its_permutation_collide(self, small_random_circuit):
        fp_circuit = fingerprint(small_random_circuit)
        fp_table = fingerprint(Permutation.from_circuit(small_random_circuit))
        assert fp_circuit == fp_table
        assert fp_circuit.kind == "function"

    def test_resynthesised_circuit_collides(self, rng):
        circuit = random_circuit(3, 10, rng)
        resynthesis = from_permutation(Permutation.from_circuit(circuit))
        assert circuit.gates != resynthesis.gates  # different structure...
        assert fingerprint(circuit) == fingerprint(resynthesis)  # ...same function

    def test_different_functions_differ(self, rng):
        first = random_circuit(4, 12, rng)
        second = random_circuit(4, 12, rng)
        if first.truth_table() == second.truth_table():  # pragma: no cover
            pytest.skip("random circuits collided")
        assert fingerprint(first) != fingerprint(second)

    def test_inverse_flag_is_part_of_identity(self, small_random_circuit):
        plain = fingerprint(small_random_circuit)
        inverse = fingerprint(small_random_circuit, with_inverse=True)
        assert plain.digest == inverse.digest
        assert plain != inverse
        assert plain.key != inverse.key


class TestOracleDispatch:
    def test_circuit_oracle_uses_white_box(self, small_random_circuit):
        oracle = CircuitOracle(small_random_circuit, with_inverse=True)
        fp = fingerprint(oracle)
        assert fp.with_inverse is True
        assert fp.digest == fingerprint(small_random_circuit).digest
        assert oracle.query_count == 0  # fingerprinting charges no queries

    def test_permutation_oracle(self, rng):
        permutation = Permutation.from_circuit(random_circuit(4, 8, rng))
        oracle = PermutationOracle(permutation)
        assert fingerprint(oracle).digest == fingerprint(permutation).digest

    def test_quantum_oracle(self, small_random_circuit):
        oracle = QuantumCircuitOracle(small_random_circuit)
        assert fingerprint(oracle).digest == fingerprint(small_random_circuit).digest
        assert oracle.query_count == 0

    def test_opaque_oracle_tabulates_without_charging(self):
        oracle = FunctionOracle(lambda value: value ^ 0b101, 3)
        fp = fingerprint(oracle)
        assert fp.kind == "function"
        assert oracle.query_count == 0

    def test_opaque_wide_oracle_raises(self):
        oracle = FunctionOracle(lambda value: value, 20)
        with pytest.raises(FingerprintError):
            fingerprint(oracle, width_limit=8)

    def test_unsupported_type_raises(self):
        with pytest.raises(FingerprintError):
            fingerprint(object())


class TestStructuralFallback:
    def test_wide_circuit_falls_back_to_structure(self, rng):
        circuit = random_circuit(6, 10, rng)
        fp = fingerprint(circuit, width_limit=4)
        assert fp.kind == "structure"

    def test_structural_miss_never_wrong_hit(self, rng):
        # Functionally equal but structurally different circuits get
        # *different* structural fingerprints: a cache miss, not a wrong hit.
        circuit = random_circuit(3, 8, rng)
        resynthesis = from_permutation(Permutation.from_circuit(circuit))
        fp1 = fingerprint(circuit, width_limit=1)
        fp2 = fingerprint(resynthesis, width_limit=1)
        assert fp1 != fp2

    def test_identical_structure_collides(self, rng):
        circuit = random_circuit(5, 12, rng)
        assert fingerprint(circuit, width_limit=1) == fingerprint(
            circuit.copy(), width_limit=1
        )


class TestPairKey:
    def test_key_distinguishes_policy_and_class(self, small_random_circuit):
        fp = fingerprint(small_random_circuit)
        base = MatchingConfig()
        keys = {
            pair_key(fp, fp, EquivalenceType.NP_I, base),
            pair_key(fp, fp, EquivalenceType.N_I, base),
            pair_key(fp, fp, EquivalenceType.NP_I, MatchingConfig(epsilon=0.5)),
            pair_key(fp, fp, EquivalenceType.NP_I, MatchingConfig(allow_quantum=False)),
            pair_key(fp, fp, EquivalenceType.NP_I, MatchingConfig(max_queries=7)),
        }
        assert len(keys) == 5

    def test_key_is_stable_across_processes(self):
        # Pure function of its inputs — no id()s, no hash randomisation.
        fp = OracleFingerprint(num_lines=4, kind="function", digest="ab" * 32)
        key = pair_key(fp, fp, EquivalenceType.I_P, MatchingConfig())
        assert key == pair_key(fp, fp, EquivalenceType.I_P, MatchingConfig())
        assert key.startswith("I-P|4:function:fwd:")

    def test_config_digest_stability(self):
        assert config_digest(MatchingConfig()) == config_digest(MatchingConfig())
        assert config_digest(MatchingConfig()) != config_digest(
            MatchingConfig(with_inverse=True)
        )
