"""Unit tests for the versioned fingerprint registry and its strategies."""

from __future__ import annotations

import dataclasses
import subprocess
import sys

import pytest

from repro.circuits import library
from repro.circuits.gates import Control, MCTGate
from repro.circuits.library import from_permutation
from repro.circuits.permutation import Permutation
from repro.circuits.random import random_circuit
from repro.core.engine import MatchingConfig
from repro.core.equivalence import EquivalenceType
from repro.exceptions import FingerprintError
from repro.oracles.oracle import CircuitOracle, FunctionOracle, PermutationOracle
from repro.quantum.oracle import QuantumCircuitOracle
from repro.service.fingerprint import (
    DEFAULT_PROBE_COUNT,
    FUNCTIONAL_WIDTH_LIMIT,
    KEY_PREFIX,
    OracleFingerprint,
    SampledProbeFingerprinter,
    StructureFingerprinter,
    TruthTableFingerprinter,
    build_registry,
    config_digest,
    default_registry,
    fingerprint,
    pair_key,
    pair_key_schemes,
    probe_inputs,
    registry_for_config,
    scheme_label,
)

WIDE = 16  # past FUNCTIONAL_WIDTH_LIMIT, cheap enough to tabulate in tests


def wide_circuit(width: int = WIDE):
    return library.increment(width)


class TestFunctionalFingerprints:
    def test_circuit_and_its_permutation_collide(self, small_random_circuit):
        fp_circuit = fingerprint(small_random_circuit)
        fp_table = fingerprint(Permutation.from_circuit(small_random_circuit))
        assert fp_circuit == fp_table
        assert fp_circuit.kind == "function"
        assert fp_circuit.scheme == "exact"

    def test_resynthesised_circuit_collides(self, rng):
        circuit = random_circuit(3, 10, rng)
        resynthesis = from_permutation(Permutation.from_circuit(circuit))
        assert circuit.gates != resynthesis.gates  # different structure...
        assert fingerprint(circuit) == fingerprint(resynthesis)  # ...same function

    def test_different_functions_differ(self, rng):
        first = random_circuit(4, 12, rng)
        second = random_circuit(4, 12, rng)
        if first.truth_table() == second.truth_table():  # pragma: no cover
            pytest.skip("random circuits collided")
        assert fingerprint(first) != fingerprint(second)

    def test_inverse_flag_is_part_of_identity(self, small_random_circuit):
        plain = fingerprint(small_random_circuit)
        inverse = fingerprint(small_random_circuit, with_inverse=True)
        assert plain.digest == inverse.digest
        assert plain != inverse
        assert plain.key != inverse.key


class TestOracleDispatch:
    def test_circuit_oracle_uses_white_box(self, small_random_circuit):
        oracle = CircuitOracle(small_random_circuit, with_inverse=True)
        fp = fingerprint(oracle)
        assert fp.with_inverse is True
        assert fp.digest == fingerprint(small_random_circuit).digest
        assert oracle.query_count == 0  # fingerprinting charges no queries

    def test_permutation_oracle(self, rng):
        permutation = Permutation.from_circuit(random_circuit(4, 8, rng))
        oracle = PermutationOracle(permutation)
        assert fingerprint(oracle).digest == fingerprint(permutation).digest

    def test_quantum_oracle(self, small_random_circuit):
        oracle = QuantumCircuitOracle(small_random_circuit)
        assert fingerprint(oracle).digest == fingerprint(small_random_circuit).digest
        assert oracle.query_count == 0

    def test_opaque_oracle_tabulates_without_charging(self):
        oracle = FunctionOracle(lambda value: value ^ 0b101, 3)
        fp = fingerprint(oracle)
        assert fp.kind == "function"
        assert oracle.query_count == 0

    def test_opaque_wide_oracle_raises_under_exact(self):
        registry = build_registry("exact", width_limit=8)
        oracle = FunctionOracle(lambda value: value, 20)
        with pytest.raises(FingerprintError):
            registry.fingerprint(oracle)

    def test_unsupported_type_raises(self):
        with pytest.raises(FingerprintError):
            fingerprint(object())


class TestRegistryResolution:
    def test_auto_is_exact_below_the_limit(self, small_random_circuit):
        registry = default_registry()
        assert registry.resolve(small_random_circuit).scheme == "exact"

    def test_auto_is_probe_above_the_limit(self):
        registry = default_registry()
        assert registry.resolve(wide_circuit()).scheme == "probe"
        fp = registry.fingerprint(wide_circuit())
        assert fp.kind == "probe"

    def test_probe_mode_probes_at_every_width(self, small_random_circuit):
        registry = build_registry("probe")
        assert registry.fingerprint(small_random_circuit).scheme == "probe"
        assert registry.fingerprint(wide_circuit()).scheme == "probe"

    def test_exact_mode_falls_back_to_structure(self):
        registry = build_registry("exact")
        assert registry.fingerprint(wide_circuit()).scheme == "structure"

    def test_auto_without_probes_restores_v1_fallback(self):
        registry = build_registry("auto", probe_count=0)
        assert registry.fingerprint(wide_circuit()).scheme == "structure"

    def test_unknown_scheme_raises(self):
        with pytest.raises(FingerprintError):
            build_registry("telepathy")

    def test_resolution_order_follows_cost_rank(self):
        registry = build_registry("auto")
        ranks = [entry.cost_rank for entry in registry.fingerprinters]
        assert ranks == sorted(ranks)
        assert [entry.scheme for entry in registry.fingerprinters] == [
            "exact",
            "probe",
            "structure",
        ]

    def test_registry_for_config_reads_the_knobs(self):
        registry = registry_for_config(
            MatchingConfig(fingerprint_scheme="probe", probe_count=7)
        )
        (probe,) = registry.fingerprinters
        assert isinstance(probe, SampledProbeFingerprinter)
        assert probe.probe_count == 7
        # Every call builds a fresh registry, so registering a custom
        # strategy on one can never change another consumer's keys.
        other = registry_for_config(
            MatchingConfig(fingerprint_scheme="probe", probe_count=7)
        )
        assert other is not registry
        assert default_registry() is not default_registry()

    def test_custom_strategy_can_shadow_the_builtins(self, small_random_circuit):
        class NullFingerprinter(StructureFingerprinter):
            name = "null"
            scheme = "null"
            cost_rank = 1

            def supports(self, target) -> bool:
                return True

            def fingerprint(self, target, ctx):
                return OracleFingerprint(0, "null", "0" * 64, scheme="null")

        registry = build_registry("auto")
        registry.register(NullFingerprinter())
        assert registry.fingerprint(small_random_circuit).scheme == "null"


class TestProbeInputs:
    def test_deterministic_and_in_range(self):
        first = probe_inputs(18, 32)
        again = probe_inputs(18, 32)
        assert first == again
        assert len(first) == 32
        assert all(0 <= value < (1 << 18) for value in first)

    def test_prefix_stability(self):
        # Counter-mode derivation: a larger probe budget extends, never
        # reshuffles, the set — what lets the wide near-miss generator pin
        # its perturbation to the first probe for any probe count.
        assert probe_inputs(20, 64)[:8] == probe_inputs(20, 8)

    def test_width_and_salt_change_the_set(self):
        assert probe_inputs(16, 8) != probe_inputs(17, 8)
        assert probe_inputs(16, 8) != probe_inputs(16, 8, salt="other")

    def test_positive_count_required(self):
        with pytest.raises(FingerprintError):
            probe_inputs(4, 0)
        with pytest.raises(FingerprintError):
            SampledProbeFingerprinter(probe_count=0)


class TestProbeSoundness:
    """The satellite criteria: canonical across representations,
    distinct for probe-aligned near-misses, identical across processes."""

    def test_equal_wide_representations_collide(self):
        circuit = wide_circuit()
        # A structurally different but functionally identical circuit:
        # the same cascade with a self-inverse gate applied twice.
        resynthesis = circuit.copy()
        gate = MCTGate((Control(0, True), Control(1, True)), 2)
        resynthesis.append(gate)
        resynthesis.append(gate)
        assert circuit.gates != resynthesis.gates
        # ... and the tabulated permutation, behind an opaque oracle.
        permutation = Permutation.from_circuit(circuit)
        oracle = PermutationOracle(permutation)

        registry = build_registry("probe")
        fps = {
            registry.fingerprint(target).digest
            for target in (circuit, resynthesis, permutation, oracle)
        }
        assert len(fps) == 1
        assert oracle.query_count == 0  # probed via peek, not query

    def test_opaque_wide_oracle_is_fingerprintable(self):
        circuit = wide_circuit()
        opaque = FunctionOracle(circuit.simulate, circuit.num_lines)
        fp = default_registry().fingerprint(opaque)
        assert fp.scheme == "probe"
        assert fp.digest == default_registry().fingerprint(circuit).digest
        assert opaque.query_count == 0

    def test_probe_aligned_near_miss_gets_a_distinct_digest(self):
        circuit = wide_circuit()
        probed = probe_inputs(circuit.num_lines, 1)[0]
        image = circuit.simulate(probed)
        near_miss = circuit.copy()
        near_miss.append(
            MCTGate(
                tuple(
                    Control(line, bool((image >> line) & 1))
                    for line in range(1, circuit.num_lines)
                ),
                0,
            )
        )
        # Exactly two truth-table entries differ...
        assert near_miss.simulate(probed) != image
        registry = build_registry("probe")
        # ...and the first probe sees one of them, at any probe count.
        for count in (1, DEFAULT_PROBE_COUNT):
            tuned = build_registry("probe", probe_count=count)
            assert (
                tuned.fingerprint(circuit).digest
                != tuned.fingerprint(near_miss).digest
            )
        assert (
            registry.fingerprint(circuit).digest
            != registry.fingerprint(near_miss).digest
        )

    def test_probe_count_is_part_of_the_digest(self):
        circuit = wide_circuit()
        few = build_registry("probe", probe_count=8).fingerprint(circuit)
        many = build_registry("probe", probe_count=16).fingerprint(circuit)
        assert few.digest != many.digest  # a miss across budgets, never a hit

    def test_probe_digest_is_deterministic_across_processes(self):
        script = (
            "from repro.circuits import library\n"
            "from repro.service.fingerprint import build_registry\n"
            f"fp = build_registry('probe').fingerprint(library.increment({WIDE}))\n"
            "print(fp.key)"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        local = build_registry("probe").fingerprint(wide_circuit())
        assert result.stdout.strip() == local.key


class TestPairKey:
    def test_key_is_versioned(self, small_random_circuit):
        fp = fingerprint(small_random_circuit)
        key = pair_key(fp, fp, EquivalenceType.N_I, MatchingConfig())
        assert key.startswith(KEY_PREFIX)
        assert fp.key.startswith("fp/v2:")

    def test_key_distinguishes_policy_and_class(self, small_random_circuit):
        fp = fingerprint(small_random_circuit)
        base = MatchingConfig()
        keys = {
            pair_key(fp, fp, EquivalenceType.NP_I, base),
            pair_key(fp, fp, EquivalenceType.N_I, base),
            pair_key(fp, fp, EquivalenceType.NP_I, MatchingConfig(epsilon=0.5)),
            pair_key(fp, fp, EquivalenceType.NP_I, MatchingConfig(allow_quantum=False)),
            pair_key(fp, fp, EquivalenceType.NP_I, MatchingConfig(max_queries=7)),
            pair_key(fp, fp, EquivalenceType.NP_I, MatchingConfig(probe_count=9)),
            pair_key(
                fp, fp, EquivalenceType.NP_I, MatchingConfig(fingerprint_scheme="probe")
            ),
        }
        assert len(keys) == 7

    def test_key_is_stable_across_processes(self):
        # Pure function of its inputs — no id()s, no hash randomisation.
        fp = OracleFingerprint(num_lines=4, kind="function", digest="ab" * 32)
        key = pair_key(fp, fp, EquivalenceType.I_P, MatchingConfig())
        assert key == pair_key(fp, fp, EquivalenceType.I_P, MatchingConfig())
        assert key.startswith("v2|I-P|fp/v2:4:exact:function:fwd:")

    def test_scheme_parsing(self):
        exact = OracleFingerprint(4, "function", "ab" * 32, scheme="exact")
        probe = OracleFingerprint(16, "probe", "cd" * 32, scheme="probe")
        key = pair_key(exact, probe, EquivalenceType.I_P, MatchingConfig())
        assert pair_key_schemes(key) == ("exact", "probe")
        assert scheme_label(key) == "exact+probe"
        same = pair_key(probe, probe, EquivalenceType.I_P, MatchingConfig())
        assert scheme_label(same) == "probe"
        # v1 keys (no version prefix) are foreign.
        assert pair_key_schemes("I-P|4:function:fwd:ab|4:function:fwd:ab|x") is None
        assert scheme_label("anything else") == "unversioned"


class TestConfigDigest:
    def test_stability(self):
        assert config_digest(MatchingConfig()) == config_digest(MatchingConfig())
        assert config_digest(MatchingConfig()) != config_digest(
            MatchingConfig(with_inverse=True)
        )

    def test_every_field_reaches_the_digest(self):
        """The asdict derivation makes omitting a config field impossible."""
        base = MatchingConfig()
        changed = {
            "epsilon": 0.5,
            "allow_quantum": False,
            "allow_brute_force": True,
            "with_inverse": True,
            "max_queries": 123,
            "fingerprint_scheme": "probe",
            "probe_count": 5,
        }
        fields = {field.name for field in dataclasses.fields(MatchingConfig)}
        assert fields == set(changed)  # grow this test with the config
        for name, value in changed.items():
            variant = dataclasses.replace(base, **{name: value})
            assert config_digest(variant) != config_digest(base), name


class TestWidthLimitCompatibility:
    def test_wide_circuit_past_custom_limit_probes(self, rng):
        circuit = random_circuit(6, 10, rng)
        fp = fingerprint(circuit, width_limit=4)
        assert fp.kind == "probe"

    def test_identical_structure_collides(self, rng):
        circuit = random_circuit(5, 12, rng)
        registry = build_registry("exact", width_limit=1)
        assert registry.fingerprint(circuit) == registry.fingerprint(circuit.copy())

    def test_structural_miss_never_wrong_hit(self, rng):
        # Functionally equal but structurally different circuits get
        # *different* structural fingerprints: a cache miss, not a wrong hit.
        circuit = random_circuit(3, 8, rng)
        resynthesis = from_permutation(Permutation.from_circuit(circuit))
        registry = build_registry("exact", width_limit=1)
        assert registry.fingerprint(circuit) != registry.fingerprint(resynthesis)

    def test_default_limit_is_fourteen(self):
        assert FUNCTIONAL_WIDTH_LIMIT == 14
