"""Unit tests for corpus generation and the manifest format."""

from __future__ import annotations

import pytest

from repro.circuits.circuit import ReversibleCircuit
from repro.core.equivalence import EquivalenceType, Hardness, classify
from repro.exceptions import ServiceError
from repro.service.fingerprint import build_registry
from repro.service.workload import (
    DEFAULT_FAMILIES,
    KNOWN_FAMILIES,
    WIDE_MAX_LINES,
    WIDE_MIN_LINES,
    CorpusManifest,
    generate_corpus,
    load_entry_circuits,
    tractable_classes,
    wide_classes,
)


class TestTractableClasses:
    def test_excludes_hard_and_conditional_classes(self):
        classes = tractable_classes()
        assert EquivalenceType.NP_I in classes
        assert EquivalenceType.I_I in classes
        for equivalence in classes:
            assert classify(equivalence) not in (
                Hardness.UNIQUE_SAT_HARD,
                Hardness.CONDITIONALLY_EASY,
            )
        assert len(classes) == 8


class TestGenerateCorpus:
    def test_layout_and_manifest(self, tmp_path):
        manifest = generate_corpus(
            tmp_path, num_lines=4, pairs_per_class=2, seed=99
        )
        expected = len(DEFAULT_FAMILIES) * len(tractable_classes()) * 2
        assert len(manifest.entries) == expected
        assert (tmp_path / "manifest.json").exists()
        for entry in manifest.entries:
            assert (tmp_path / entry.circuit1).exists()
            assert (tmp_path / entry.circuit2).exists()
            assert entry.num_lines == 4

    def test_deterministic_given_seed(self, tmp_path):
        dir1, dir2 = tmp_path / "one", tmp_path / "two"
        m1 = generate_corpus(dir1, num_lines=4, seed=7)
        m2 = generate_corpus(dir2, num_lines=4, seed=7)
        assert m1.to_dict() == m2.to_dict()
        for entry in m1.entries:
            assert (dir1 / entry.circuit1).read_bytes() == (
                dir2 / entry.circuit1
            ).read_bytes()

    def test_all_sixteen_classes_supported(self, tmp_path):
        manifest = generate_corpus(
            tmp_path,
            classes=tuple(EquivalenceType),
            families=("random",),
            seed=3,
        )
        assert len(manifest.entries) == 16
        assert set(manifest.classes) == {eq.label for eq in EquivalenceType}

    def test_equivalent_families_are_equivalent(self, tmp_path):
        manifest = generate_corpus(
            tmp_path,
            classes=(EquivalenceType.I_I,),
            families=("random", "library"),
            seed=21,
        )
        for entry in manifest.entries:
            c1, c2 = load_entry_circuits(entry, tmp_path)
            assert entry.expected_equivalent
            assert c1.truth_table() == c2.truth_table()  # I-I: literally equal

    def test_adversarial_pairs_are_near_misses(self, tmp_path):
        manifest = generate_corpus(
            tmp_path,
            classes=(EquivalenceType.I_I,),
            families=("adversarial",),
            pairs_per_class=3,
            seed=5,
        )
        for entry in manifest.entries:
            assert not entry.expected_equivalent
            c1, c2 = load_entry_circuits(entry, tmp_path)
            differing = sum(
                1
                for a, b in zip(c1.truth_table(), c2.truth_table())
                if a != b
            )
            # One appended transposition: exactly two entries swapped.
            assert differing == 2

    def test_rejects_unknown_family_and_bad_count(self, tmp_path):
        with pytest.raises(ServiceError):
            generate_corpus(tmp_path, families=("bogus",))
        with pytest.raises(ServiceError):
            generate_corpus(tmp_path, pairs_per_class=0)

    def test_adversarial_family_needs_two_lines(self, tmp_path):
        # On one line the transposition degenerates to a NOT gate — a
        # genuine negation witness — so the family refuses the width.
        with pytest.raises(ServiceError, match="num_lines >= 2"):
            generate_corpus(tmp_path, num_lines=1, families=("adversarial",))
        generate_corpus(
            tmp_path, num_lines=1, families=("random",), seed=1
        )  # other families are fine on one line


class TestWideFamily:
    @pytest.fixture(scope="class")
    def wide(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("wide")
        manifest = generate_corpus(
            root, families=("wide",), pairs_per_class=2, seed=13
        )
        return root, manifest

    def test_wide_is_a_known_optin_family(self):
        assert "wide" in KNOWN_FAMILIES
        assert "wide" not in DEFAULT_FAMILIES

    def test_entries_are_wide_and_classically_easy(self, wide):
        _, manifest = wide
        assert manifest.entries
        for entry in manifest.entries:
            assert entry.family == "wide"
            assert WIDE_MIN_LINES <= entry.num_lines <= WIDE_MAX_LINES
            assert classify(EquivalenceType.from_label(entry.equivalence)) in (
                Hardness.TRIVIAL,
                Hardness.CLASSICAL_EASY,
            )
        # Default (tractable) classes are silently narrowed to the wide set.
        labels = {entry.equivalence for entry in manifest.entries}
        assert labels == {eq.label for eq in wide_classes()}

    def test_circuit_files_match_the_recorded_widths(self, wide):
        root, manifest = wide
        for entry in manifest.entries[:4]:
            circuit1, circuit2 = load_entry_circuits(entry, root)
            assert circuit1.num_lines == circuit2.num_lines == entry.num_lines

    def test_odd_indices_are_near_miss_variants(self, wide):
        _, manifest = wide
        for entry in manifest.entries:
            index = int(entry.pair_id.rsplit("-", 1)[1])
            assert entry.expected_equivalent is (index % 2 == 0)

    def test_near_misses_are_probe_distinct_from_their_twin(self, wide):
        """The whole point of the family: the appended transposition sits
        on the probe set, so probe digests distinguish the near-miss from
        the unperturbed circuit at any probe count."""
        root, manifest = wide
        registry = build_registry("probe", probe_count=1)
        near_misses = [
            entry for entry in manifest.entries if not entry.expected_equivalent
        ]
        assert near_misses
        for entry in near_misses[:3]:
            circuit1, _ = load_entry_circuits(entry, root)
            twin = ReversibleCircuit(
                circuit1.num_lines, circuit1.gates[:-1]
            )  # strip the appended transposition
            assert (
                registry.fingerprint(circuit1).digest
                != registry.fingerprint(twin).digest
            )

    def test_deterministic_given_seed(self, tmp_path):
        m1 = generate_corpus(
            tmp_path / "a", families=("wide",), pairs_per_class=1, seed=3
        )
        m2 = generate_corpus(
            tmp_path / "b", families=("wide",), pairs_per_class=1, seed=3
        )
        assert m1.to_dict() == m2.to_dict()


class TestManifestFormat:
    def test_save_load_roundtrip(self, tmp_path):
        manifest = generate_corpus(tmp_path, families=("random",), seed=1)
        loaded = CorpusManifest.load(tmp_path / "manifest.json")
        assert loaded == manifest

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{ not json", encoding="utf-8")
        with pytest.raises(ServiceError, match="not valid JSON"):
            CorpusManifest.load(path)

    def test_load_rejects_wrong_format_marker(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(ServiceError, match="not a corpus manifest"):
            CorpusManifest.load(path)

    def test_entry_missing_field_is_reported(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(
            '{"format": "repro-corpus/v1", "num_lines": 4, "seed": 1, '
            '"families": [], "classes": [], "entries": [{"pair_id": "x"}]}',
            encoding="utf-8",
        )
        with pytest.raises(ServiceError, match="missing field"):
            CorpusManifest.load(path)
