"""Unit tests for corpus generation and the manifest format."""

from __future__ import annotations

import pytest

from repro.core.equivalence import EquivalenceType, Hardness, classify
from repro.exceptions import ServiceError
from repro.service.workload import (
    DEFAULT_FAMILIES,
    CorpusManifest,
    generate_corpus,
    load_entry_circuits,
    tractable_classes,
)


class TestTractableClasses:
    def test_excludes_hard_and_conditional_classes(self):
        classes = tractable_classes()
        assert EquivalenceType.NP_I in classes
        assert EquivalenceType.I_I in classes
        for equivalence in classes:
            assert classify(equivalence) not in (
                Hardness.UNIQUE_SAT_HARD,
                Hardness.CONDITIONALLY_EASY,
            )
        assert len(classes) == 8


class TestGenerateCorpus:
    def test_layout_and_manifest(self, tmp_path):
        manifest = generate_corpus(
            tmp_path, num_lines=4, pairs_per_class=2, seed=99
        )
        expected = len(DEFAULT_FAMILIES) * len(tractable_classes()) * 2
        assert len(manifest.entries) == expected
        assert (tmp_path / "manifest.json").exists()
        for entry in manifest.entries:
            assert (tmp_path / entry.circuit1).exists()
            assert (tmp_path / entry.circuit2).exists()
            assert entry.num_lines == 4

    def test_deterministic_given_seed(self, tmp_path):
        dir1, dir2 = tmp_path / "one", tmp_path / "two"
        m1 = generate_corpus(dir1, num_lines=4, seed=7)
        m2 = generate_corpus(dir2, num_lines=4, seed=7)
        assert m1.to_dict() == m2.to_dict()
        for entry in m1.entries:
            assert (dir1 / entry.circuit1).read_bytes() == (
                dir2 / entry.circuit1
            ).read_bytes()

    def test_all_sixteen_classes_supported(self, tmp_path):
        manifest = generate_corpus(
            tmp_path,
            classes=tuple(EquivalenceType),
            families=("random",),
            seed=3,
        )
        assert len(manifest.entries) == 16
        assert set(manifest.classes) == {eq.label for eq in EquivalenceType}

    def test_equivalent_families_are_equivalent(self, tmp_path):
        manifest = generate_corpus(
            tmp_path,
            classes=(EquivalenceType.I_I,),
            families=("random", "library"),
            seed=21,
        )
        for entry in manifest.entries:
            c1, c2 = load_entry_circuits(entry, tmp_path)
            assert entry.expected_equivalent
            assert c1.truth_table() == c2.truth_table()  # I-I: literally equal

    def test_adversarial_pairs_are_near_misses(self, tmp_path):
        manifest = generate_corpus(
            tmp_path,
            classes=(EquivalenceType.I_I,),
            families=("adversarial",),
            pairs_per_class=3,
            seed=5,
        )
        for entry in manifest.entries:
            assert not entry.expected_equivalent
            c1, c2 = load_entry_circuits(entry, tmp_path)
            differing = sum(
                1
                for a, b in zip(c1.truth_table(), c2.truth_table())
                if a != b
            )
            # One appended transposition: exactly two entries swapped.
            assert differing == 2

    def test_rejects_unknown_family_and_bad_count(self, tmp_path):
        with pytest.raises(ServiceError):
            generate_corpus(tmp_path, families=("bogus",))
        with pytest.raises(ServiceError):
            generate_corpus(tmp_path, pairs_per_class=0)

    def test_adversarial_family_needs_two_lines(self, tmp_path):
        # On one line the transposition degenerates to a NOT gate — a
        # genuine negation witness — so the family refuses the width.
        with pytest.raises(ServiceError, match="num_lines >= 2"):
            generate_corpus(tmp_path, num_lines=1, families=("adversarial",))
        generate_corpus(
            tmp_path, num_lines=1, families=("random",), seed=1
        )  # other families are fine on one line


class TestManifestFormat:
    def test_save_load_roundtrip(self, tmp_path):
        manifest = generate_corpus(tmp_path, families=("random",), seed=1)
        loaded = CorpusManifest.load(tmp_path / "manifest.json")
        assert loaded == manifest

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{ not json", encoding="utf-8")
        with pytest.raises(ServiceError, match="not valid JSON"):
            CorpusManifest.load(path)

    def test_load_rejects_wrong_format_marker(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text('{"format": "something-else"}', encoding="utf-8")
        with pytest.raises(ServiceError, match="not a corpus manifest"):
            CorpusManifest.load(path)

    def test_entry_missing_field_is_reported(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(
            '{"format": "repro-corpus/v1", "num_lines": 4, "seed": 1, '
            '"families": [], "classes": [], "entries": [{"pair_id": "x"}]}',
            encoding="utf-8",
        )
        with pytest.raises(ServiceError, match="missing field"):
            CorpusManifest.load(path)
