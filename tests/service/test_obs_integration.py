"""End-to-end observability: metrics, traces and stats must reconcile.

The acceptance contract of the `repro.obs` layer is not "numbers exist"
but "every view agrees": the per-tier cache counters in a metrics
snapshot equal the cache's own `CacheStats`, which equal what a
`StatsObserver` saw on the event stream; a span log reconstructs each
pair's journey as a connected tree whose `match` duration is the same
number the `TaskCompleted` event carried; and the daemon's `metrics` op
reconciles with its `stats` op.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.service import (
    DaemonClient,
    MatchingDaemon,
    RunState,
    SerialExecutor,
    StatsObserver,
    generate_corpus,
)
from repro.service.cache import build_cache
from repro.service.pipeline import MatchingService

TIMEOUT = 30.0


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    root = tmp_path_factory.mktemp("obs_corpus")
    generate_corpus(
        root,
        num_lines=4,
        families=("random",),
        pairs_per_class=1,
        seed=11,
    )
    return root


def _counter_samples(snapshot: dict, name: str) -> dict:
    """`{frozen labels: value}` for one counter in a snapshot."""
    metric = snapshot["metrics"].get(name, {"samples": []})
    return {
        tuple(sorted(sample["labels"].items())): sample["value"]
        for sample in metric["samples"]
    }


def _counter_value(snapshot: dict, name: str, **labels):
    return _counter_samples(snapshot, name).get(
        tuple(sorted(labels.items())), 0
    )


class TestMetricsReconcile:
    def test_snapshot_stats_and_observer_agree(self, corpus):
        metrics = MetricsRegistry()
        cache = build_cache()
        cache.bind_metrics(metrics)
        stats = StatsObserver()
        service = MatchingService(
            cache=cache,
            executor=SerialExecutor(metrics=metrics),
            observers=[stats],
            metrics=metrics,
        )
        cold = service.run_manifest(corpus, seed=5)
        warm = service.run_manifest(corpus, seed=5)
        assert cold.executed == cold.total > 0
        assert warm.cache_hits == warm.total and warm.executed == 0

        snapshot = metrics.snapshot()
        tier = cache.metrics_tier
        # The three views of the cache: the registry, the cache's own
        # stats, and the observer watching the event stream.
        assert _counter_value(
            snapshot, "repro_cache_hits_total", tier=tier
        ) == cache.stats.hits == stats.cache_hits == warm.total
        assert _counter_value(
            snapshot, "repro_cache_misses_total", tier=tier
        ) == cache.stats.misses == cold.total
        assert _counter_value(
            snapshot, "repro_cache_stores_total", tier=tier
        ) == cache.stats.stores == cold.total
        assert cache.stats.as_dict()["hits"] == stats.cache_hits

        # Pipeline counters: one run each way, every pair accounted for.
        assert _counter_value(snapshot, "repro_runs_total") == 2
        assert _counter_value(
            snapshot, "repro_run_pairs_total", outcome="completed"
        ) == cold.total
        assert _counter_value(
            snapshot, "repro_run_pairs_total", outcome="cached"
        ) == warm.total

        # Engine counters (the serial executor threads the registry
        # through): executed pairs and their oracle spend.
        assert _counter_value(
            snapshot, "repro_engine_pairs_total", status="ok"
        ) == cold.total
        assert _counter_value(
            snapshot, "repro_engine_queries_total", kind="classical"
        ) == cold.classical_queries
        task_seconds = snapshot["metrics"]["repro_task_seconds"]["samples"][0]
        assert task_seconds["count"] == cold.total
        run_seconds = snapshot["metrics"]["repro_run_seconds"]["samples"][0]
        assert run_seconds["count"] == 2

        # The observer's latency accumulators cover the same pairs.
        assert stats.completed_timing.count == cold.total
        assert stats.cache_hit_timing.count == warm.total

    def test_snapshot_is_json_round_trippable(self, corpus):
        metrics = MetricsRegistry()
        MatchingService(metrics=metrics).run_manifest(corpus, seed=5)
        snapshot = metrics.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot


class TestSpanTree:
    def test_every_stage_links_back_to_its_pair(self, corpus, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        tracer = Tracer(trace_path)
        service = MatchingService(
            cache=build_cache(),
            executor=SerialExecutor(metrics=None),
            tracer=tracer,
        )
        events = list(service.stream(
            corpus, store_path=tmp_path / "run.jsonl", seed=5
        ))
        tracer.close()
        spans = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        by_id = {span["span_id"]: span for span in spans}
        pairs = [s for s in spans if s["name"] == "pair"]
        completions = [e for e in events if e.kind == "TaskCompleted"]
        assert len(pairs) == len(completions) > 0

        # Connectivity: every non-root span's parent exists and is a
        # pair span — the tree is fingerprint → ... → store_append.
        children_of = {}
        for span in spans:
            if span["name"] == "pair":
                assert span["parent_id"] is None
                continue
            parent = by_id.get(span["parent_id"])
            assert parent is not None, f"orphan span {span}"
            assert parent["name"] == "pair"
            children_of.setdefault(parent["span_id"], set()).add(span["name"])
        for pair in pairs:
            assert children_of[pair["span_id"]] == {
                "fingerprint", "cache_probe", "match", "store_append",
            }

        # The match span is the executor's own measurement — the same
        # number the TaskCompleted event carried.
        match_by_pair_id = {
            s["attrs"]["pair_id"]: s["duration_s"]
            for s in spans if s["name"] == "match"
        }
        for event in completions:
            assert match_by_pair_id[event.pair_id] == event.duration_s


class TestDaemonMetricsOp:
    def test_metrics_op_reconciles_with_stats_op(self, corpus, tmp_path):
        daemon = MatchingDaemon(
            store_dir=tmp_path / "runs", host="127.0.0.1", port=0
        )
        daemon.start()
        try:
            with DaemonClient.from_address(
                daemon.address, timeout=TIMEOUT
            ) as client:
                ack = client.submit(corpus, seed=5)
                assert client.watch(ack["run_id"], []) == RunState.COMPLETED
                # Resubmit: the shared cache answers every pair.
                second = client.submit(corpus, seed=5)
                assert client.watch(second["run_id"], []) == RunState.COMPLETED
                stats = client.stats()
                response = client.metrics()
        finally:
            daemon.stop()
        assert response["ok"] is True and response["op"] == "metrics"
        snapshot = response["metrics"]
        assert snapshot["format"] == "repro-metrics/v1"

        # The daemon's default cache is tiered: the front door's counters
        # are the ones the stats op reports.
        cache_block = stats["cache"]
        assert _counter_value(
            snapshot, "repro_cache_hits_total", tier="tiered"
        ) == cache_block["hits"]
        assert _counter_value(
            snapshot, "repro_cache_misses_total", tier="tiered"
        ) == cache_block["misses"]
        assert _counter_value(
            snapshot, "repro_cache_stores_total", tier="tiered"
        ) == cache_block["stores"]
        assert cache_block["hits"] > 0  # the resubmit hit the cache
        assert set(cache_block) == {
            "hits", "misses", "stores", "evictions", "scheme_hits", "size",
        }
        assert _counter_value(
            snapshot, "repro_daemon_jobs_total", state=str(RunState.COMPLETED)
        ) == stats["runs"]["completed"] == 2
