"""Unit tests for the peephole optimiser."""

from __future__ import annotations

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import SwapGate, cnot, not_gate, toffoli
from repro.circuits.random import random_circuit
from repro.synthesis.optimization import (
    cancel_adjacent_pairs,
    merge_not_gates,
    optimize,
    remove_trivial_gates,
)


class TestCancelAdjacentPairs:
    def test_identical_pair_removed(self):
        circuit = ReversibleCircuit(3, [toffoli(0, 1, 2), toffoli(0, 1, 2)])
        assert cancel_adjacent_pairs(circuit).num_gates == 0

    def test_cascading_cancellation(self):
        gate = cnot(0, 1)
        circuit = ReversibleCircuit(2, [gate, not_gate(0), not_gate(0), gate])
        assert cancel_adjacent_pairs(circuit).num_gates == 0

    def test_non_adjacent_pair_kept(self):
        circuit = ReversibleCircuit(2, [not_gate(0), cnot(0, 1), not_gate(0)])
        assert cancel_adjacent_pairs(circuit).num_gates == 3

    def test_function_preserved(self, rng):
        for _ in range(10):
            circuit = random_circuit(4, 20, rng)
            doubled = ReversibleCircuit(4, list(circuit.gates) + list(circuit.gates))
            cleaned = cancel_adjacent_pairs(doubled)
            assert cleaned.functionally_equal(doubled)


class TestMergeNotGates:
    def test_nots_cancel_across_commuting_gate(self):
        # The CNOT targets line 0, so a NOT on line 0 commutes past it.
        circuit = ReversibleCircuit(2, [not_gate(0), cnot(1, 0), not_gate(0)])
        optimised = merge_not_gates(circuit)
        assert optimised.num_gates == 1
        assert optimised.functionally_equal(circuit)

    def test_nots_blocked_by_control_are_kept(self):
        circuit = ReversibleCircuit(2, [not_gate(0), cnot(0, 1), not_gate(0)])
        assert merge_not_gates(circuit).num_gates == 3

    def test_unrelated_lines_commute(self):
        circuit = ReversibleCircuit(3, [not_gate(2), cnot(0, 1), not_gate(2)])
        assert merge_not_gates(circuit).num_gates == 1

    def test_function_preserved_on_random_circuits(self, rng):
        for _ in range(15):
            circuit = random_circuit(4, 25, rng)
            assert merge_not_gates(circuit).functionally_equal(circuit)


class TestRemoveTrivialGates:
    def test_no_constants_is_identity(self, rng):
        circuit = random_circuit(4, 10, rng)
        assert remove_trivial_gates(circuit).gates == circuit.gates

    def test_contradicted_control_removed(self):
        circuit = ReversibleCircuit(2, [cnot(0, 1)])
        cleaned = remove_trivial_gates(circuit, constant_lines={0: 0})
        assert cleaned.num_gates == 0

    def test_satisfied_control_kept(self):
        circuit = ReversibleCircuit(2, [cnot(0, 1)])
        cleaned = remove_trivial_gates(circuit, constant_lines={0: 1})
        assert cleaned.num_gates == 1

    def test_constant_invalidated_after_target_write(self):
        circuit = ReversibleCircuit(2, [not_gate(0), cnot(0, 1, positive=False)])
        # Line 0 starts at 0 but the NOT rewrites it, so the negative-control
        # CNOT may fire and must be kept.
        cleaned = remove_trivial_gates(circuit, constant_lines={0: 0})
        assert cleaned.num_gates == 2


class TestOptimize:
    def test_reaches_fixed_point(self):
        gate = toffoli(0, 1, 2)
        circuit = ReversibleCircuit(
            3, [not_gate(0), gate, gate, not_gate(0), SwapGate(1, 2), SwapGate(1, 2)]
        )
        optimised = optimize(circuit)
        assert optimised.num_gates == 0

    def test_never_increases_gate_count(self, rng):
        for _ in range(10):
            circuit = random_circuit(5, 30, rng)
            assert optimize(circuit).num_gates <= circuit.num_gates

    def test_function_preserved(self, rng):
        for _ in range(10):
            circuit = random_circuit(4, 30, rng)
            assert optimize(circuit).functionally_equal(circuit)

    def test_optimises_synthesised_circuits(self, rng):
        from repro.circuits.permutation import Permutation
        from repro.synthesis import synthesize

        for _ in range(5):
            from repro.circuits.random import random_permutation

            permutation = random_permutation(3, rng)
            circuit = synthesize(permutation)
            optimised = optimize(circuit)
            assert Permutation.from_circuit(optimised) == permutation
