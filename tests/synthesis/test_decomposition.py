"""Unit tests for gate-set decomposition."""

from __future__ import annotations

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import MCTGate, SwapGate, mct
from repro.circuits.random import random_circuit
from repro.synthesis.decomposition import (
    remove_negative_controls,
    to_ncv_ready_form,
    to_toffoli_gate_set,
)


class TestRemoveNegativeControls:
    def test_function_preserved(self, rng):
        for _ in range(10):
            circuit = random_circuit(4, 15, rng)
            rewritten = remove_negative_controls(circuit)
            assert rewritten.functionally_equal(circuit)

    def test_all_controls_positive(self, rng):
        circuit = random_circuit(4, 15, rng)
        rewritten = remove_negative_controls(circuit)
        for gate in rewritten:
            if isinstance(gate, MCTGate):
                assert all(control.positive for control in gate.controls)

    def test_positive_only_circuit_unchanged(self):
        circuit = ReversibleCircuit(3, [mct([0, 1], 2)])
        assert remove_negative_controls(circuit).gates == circuit.gates

    def test_swap_gates_pass_through(self):
        circuit = ReversibleCircuit(3, [SwapGate(0, 2)])
        assert remove_negative_controls(circuit).gates == circuit.gates


class TestToffoliGateSet:
    def test_small_gates_unchanged_width(self, rng):
        circuit = random_circuit(4, 10, rng, max_controls=2)
        expanded = to_toffoli_gate_set(circuit)
        assert expanded.num_lines == 4

    def test_large_mct_expansion_preserves_function_on_clean_ancillas(self):
        circuit = ReversibleCircuit(5, [mct([0, 1, 2, 3], 4)])
        expanded = to_toffoli_gate_set(circuit)
        assert expanded.num_lines == 5 + 2
        for value in range(32):
            expected = circuit.simulate(value)
            result = expanded.simulate(value)  # ancillas supplied as 0
            assert result & 0b11111 == expected
            assert result >> 5 == 0  # ancillas restored

    def test_max_two_controls_after_expansion(self, rng):
        circuit = ReversibleCircuit(6, [mct([0, 1, 2, 3, 4], 5)])
        expanded = to_toffoli_gate_set(circuit)
        for gate in expanded:
            if isinstance(gate, MCTGate):
                assert gate.num_controls <= 2

    def test_negative_controls_also_handled(self):
        circuit = ReversibleCircuit(
            5, [mct([0, 1, 2, 3], 4, polarities=[False, True, False, True])]
        )
        expanded = to_toffoli_gate_set(circuit)
        for value in range(32):
            assert expanded.simulate(value) & 0b11111 == circuit.simulate(value)


class TestNcvReadyForm:
    def test_no_swaps_and_small_gates(self, rng):
        circuit = random_circuit(5, 12, rng)
        ready = to_ncv_ready_form(circuit)
        for gate in ready:
            assert isinstance(gate, MCTGate)
            assert gate.num_controls <= 2
            assert all(control.positive for control in gate.controls)
