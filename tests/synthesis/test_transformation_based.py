"""Unit tests for transformation-based synthesis."""

from __future__ import annotations

import pytest

from repro.circuits.permutation import Permutation
from repro.circuits.random import random_permutation
from repro.synthesis.transformation_based import (
    synthesize,
    synthesize_basic,
    synthesize_bidirectional,
)


class TestBasicSynthesis:
    def test_identity_produces_empty_circuit(self):
        circuit = synthesize_basic(Permutation.identity(3))
        assert circuit.num_gates == 0

    def test_single_swap_permutation(self):
        permutation = Permutation([1, 0, 2, 3])
        circuit = synthesize_basic(permutation)
        assert Permutation.from_circuit(circuit) == permutation

    def test_random_permutations_are_realised(self, rng):
        for bits in (2, 3, 4):
            for _ in range(8):
                permutation = random_permutation(bits, rng)
                circuit = synthesize_basic(permutation)
                assert Permutation.from_circuit(circuit) == permutation

    def test_uses_only_positive_controls(self, rng):
        circuit = synthesize_basic(random_permutation(3, rng))
        for gate in circuit:
            assert all(control.positive for control in gate.controls)


class TestBidirectionalSynthesis:
    def test_random_permutations_are_realised(self, rng):
        for bits in (2, 3, 4):
            for _ in range(8):
                permutation = random_permutation(bits, rng)
                circuit = synthesize_bidirectional(permutation)
                assert Permutation.from_circuit(circuit) == permutation

    def test_not_larger_on_average_than_basic(self, rng):
        total_basic = 0
        total_bidirectional = 0
        for _ in range(20):
            permutation = random_permutation(4, rng)
            total_basic += synthesize_basic(permutation).num_gates
            total_bidirectional += synthesize_bidirectional(permutation).num_gates
        assert total_bidirectional <= total_basic

    def test_hwb_like_function(self):
        permutation = Permutation([0, 1, 2, 4, 3, 6, 5, 7])
        circuit = synthesize_bidirectional(permutation)
        assert Permutation.from_circuit(circuit) == permutation


class TestDispatcher:
    def test_synthesize_default_is_bidirectional(self, rng):
        permutation = random_permutation(3, rng)
        assert synthesize(permutation).name == "tbs_bidirectional"
        assert synthesize(permutation, bidirectional=False).name == "tbs_basic"

    def test_named_circuit(self, rng):
        permutation = random_permutation(3, rng)
        assert synthesize(permutation, name="custom").name == "custom"

    def test_round_trip_through_circuit(self, rng):
        from repro.circuits.random import random_circuit

        original = random_circuit(4, 20, rng)
        permutation = Permutation.from_circuit(original)
        resynthesized = synthesize(permutation)
        assert resynthesized.functionally_equal(original)
