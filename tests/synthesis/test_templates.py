"""Unit tests for the template library (the paper's motivating application)."""

from __future__ import annotations

import pytest

from repro.circuits import library
from repro.circuits.random import random_line_permutation, random_negation
from repro.circuits.transforms import transformed_circuit
from repro.core import EquivalenceType
from repro.exceptions import MatchingError, SynthesisError
from repro.synthesis.templates import TemplateLibrary


@pytest.fixture
def small_library() -> TemplateLibrary:
    templates = TemplateLibrary()
    templates.add_all(
        [
            ("increment", library.increment(4)),
            ("gray", library.gray_code(4)),
            ("toffoli_chain", library.toffoli_chain(4)),
        ]
    )
    return templates


class TestRegistry:
    def test_add_and_lookup_by_name(self, small_library):
        assert len(small_library) == 3
        assert "gray" in small_library
        assert small_library.get("gray").num_lines == 4

    def test_duplicate_names_rejected(self, small_library):
        with pytest.raises(SynthesisError):
            small_library.add("gray", library.gray_code(4))

    def test_iteration(self, small_library):
        names = {name for name, _ in small_library}
        assert names == {"increment", "gray", "toffoli_chain"}


class TestLookup:
    def test_recognises_np_i_transformed_template(self, small_library, rng):
        template = library.increment(4)
        nu = random_negation(4, rng)
        pi = random_line_permutation(4, rng)
        target = transformed_circuit(template, nu_x=nu, pi_x=pi)
        hit = small_library.lookup(target, EquivalenceType.NP_I)
        assert hit.template_name == "increment"
        assert hit.instantiate().functionally_equal(target)
        assert hit.queries > 0

    def test_recognises_output_side_transform(self, small_library, rng):
        template = library.gray_code(4)
        nu = random_negation(4, rng)
        target = transformed_circuit(template, nu_y=nu)
        hit = small_library.lookup(target, EquivalenceType.I_N)
        assert hit.template_name == "gray"
        assert hit.instantiate().functionally_equal(target)

    def test_no_match_raises(self, small_library, rng):
        from repro.circuits.random import random_circuit

        # A random 4-line cascade is (with overwhelming probability) not a
        # negation/permutation variant of any library entry.
        target = random_circuit(4, 30, rng)
        with pytest.raises(MatchingError):
            small_library.lookup(target, EquivalenceType.NP_I)

    def test_width_mismatch_is_skipped(self, small_library):
        target = library.increment(5)
        with pytest.raises(MatchingError):
            small_library.lookup(target, EquivalenceType.NP_I)
