"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.circuits import library
from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.random import random_circuit


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator; reseeded per test."""
    return random.Random(20240612)


@pytest.fixture
def toffoli_circuit() -> ReversibleCircuit:
    """The Fig. 2 example circuit (a single Toffoli on 3 lines)."""
    return library.figure2_example()


@pytest.fixture
def small_random_circuit(rng: random.Random) -> ReversibleCircuit:
    """A generic 4-line random MCT cascade."""
    return random_circuit(4, 16, rng, name="small_random")


@pytest.fixture
def medium_random_circuit(rng: random.Random) -> ReversibleCircuit:
    """A generic 6-line random MCT cascade."""
    return random_circuit(6, 30, rng, name="medium_random")
