"""Unit tests for the classical collision-search N-I baseline (Theorem 1)."""

from __future__ import annotations

import pytest

from repro.baselines.classical_collision import match_n_i_collision
from repro.circuits.random import random_circuit
from repro.core.equivalence import EquivalenceType
from repro.core.verify import make_instance, verify_match
from repro.exceptions import MatchingError


class TestCollisionSearch:
    @pytest.mark.parametrize("two_sided", [True, False])
    def test_recovers_negation(self, rng, two_sided):
        for _ in range(3):
            base = random_circuit(5, 20, rng)
            c1, c2, truth = make_instance(base, EquivalenceType.N_I, rng)
            result = match_n_i_collision(c1, c2, rng=rng, two_sided=two_sided)
            assert result.nu_x == truth.nu_x
            assert verify_match(c1, c2, EquivalenceType.N_I, result)

    def test_query_budget_enforced(self, rng):
        base = random_circuit(8, 30, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        with pytest.raises(MatchingError):
            match_n_i_collision(c1, c2, rng=rng, max_queries=2)

    def test_queries_grow_exponentially_with_n(self, rng):
        """The mean query count at n=8 clearly exceeds the one at n=4."""

        def mean_queries(num_lines: int, runs: int = 10) -> float:
            total = 0
            for _ in range(runs):
                base = random_circuit(num_lines, 20, rng)
                c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
                result = match_n_i_collision(c1, c2, rng=rng)
                total += result.queries
            return total / runs

        small = mean_queries(4)
        large = mean_queries(9)
        assert large > 2 * small

    def test_metadata_labels_regime(self, rng):
        base = random_circuit(4, 10, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        result = match_n_i_collision(c1, c2, rng=rng)
        assert result.metadata["regime"] == "classical-collision"
