"""Unit tests for the brute-force matching baseline."""

from __future__ import annotations

import math

import pytest

from repro.baselines.brute_force import brute_force_match, count_witness_space
from repro.circuits.random import random_circuit
from repro.core.equivalence import EquivalenceType
from repro.core.verify import make_instance, verify_match
from repro.exceptions import MatchingError


class TestWitnessSpace:
    def test_counts(self):
        assert count_witness_space(EquivalenceType.I_I, 3) == 1
        assert count_witness_space(EquivalenceType.N_I, 3) == 8
        assert count_witness_space(EquivalenceType.P_I, 3) == 6
        assert count_witness_space(EquivalenceType.NP_I, 3) == 8 * 6
        assert count_witness_space(EquivalenceType.N_N, 3) == 64
        assert count_witness_space(EquivalenceType.NP_NP, 3) == (8 * 6) ** 2

    def test_matches_formula(self):
        n = 4
        assert count_witness_space(EquivalenceType.P_P, n) == math.factorial(n) ** 2


class TestBruteForce:
    @pytest.mark.parametrize("label", ["I-N", "N-I", "P-I", "N-N", "P-P"])
    def test_finds_witnesses_for_small_instances(self, rng, label):
        equivalence = EquivalenceType.from_label(label)
        base = random_circuit(3, 10, rng)
        c1, c2, _ = make_instance(base, equivalence, rng)
        result = brute_force_match(c1, c2, equivalence, rng=rng)
        assert verify_match(c1, c2, equivalence, result)
        assert result.metadata["regime"] == "brute-force"
        assert result.metadata["candidates_tried"] >= 1

    def test_np_np_small_instance(self, rng):
        base = random_circuit(2, 6, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.NP_NP, rng)
        result = brute_force_match(c1, c2, EquivalenceType.NP_NP, rng=rng)
        assert verify_match(c1, c2, EquivalenceType.NP_NP, result)

    def test_no_witness_raises(self, rng):
        c1 = random_circuit(3, 15, rng)
        c2 = random_circuit(3, 15, rng)
        if c1.functionally_equal(c2):  # pragma: no cover
            pytest.skip("random circuits coincide")
        # I-N offers only 8 witnesses on 3 lines; random cascades are almost
        # surely not output-negation variants of each other.
        with pytest.raises(MatchingError):
            brute_force_match(c1, c2, EquivalenceType.I_N, rng=rng)

    def test_candidate_budget_enforced(self, rng):
        base = random_circuit(3, 10, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_N, rng)
        with pytest.raises(MatchingError):
            brute_force_match(
                c1, c2, EquivalenceType.N_N, rng=rng, max_candidates=0
            )

    def test_width_mismatch_rejected(self, rng):
        with pytest.raises(MatchingError):
            brute_force_match(
                random_circuit(3, 5, rng),
                random_circuit(4, 5, rng),
                EquivalenceType.I_N,
            )

    def test_query_metadata_scales_with_candidates(self, rng):
        base = random_circuit(3, 10, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_N, rng)
        result = brute_force_match(c1, c2, EquivalenceType.N_N, rng=rng)
        assert result.queries >= result.metadata["candidates_tried"]
