"""Integration test: measured query counts stay within the Table 1 bounds.

For every row of Table 1 the corresponding matcher is run on random promised
instances at a couple of bit widths and the measured oracle-query count is
compared against the claimed bound (with a small constant factor allowance —
the bounds are asymptotic and our accounting charges both oracles).
"""

from __future__ import annotations

import pytest

from repro.circuits.random import random_circuit
from repro.core import EquivalenceType, TABLE1_ROWS, match, make_instance
from repro.oracles import CircuitOracle

#: Constant-factor allowance applied to every claimed bound.  Each composite
#: probe touches both oracles (factor 2) and small additive terms appear at
#: tiny n, so a factor of 4 plus a +4 offset is a fair, still-tight cap.
ALLOWANCE_FACTOR = 4.0
ALLOWANCE_OFFSET = 4.0
EPSILON = 1e-3


def run_row_instance(row, equivalence, num_lines, seed):
    base = random_circuit(num_lines, 4 * num_lines, seed)
    c1, c2, _ = make_instance(base, equivalence, seed)
    if row.inverse_available:
        if row.requires_both_inverses:
            o1 = CircuitOracle(c1, with_inverse=True)
            o2 = CircuitOracle(c2, with_inverse=True)
        else:
            o1 = CircuitOracle(c1, with_inverse=False)
            o2 = CircuitOracle(c2, with_inverse=True)
        result = match(o1, o2, equivalence, rng=seed, epsilon=EPSILON)
    else:
        result = match(c1, c2, equivalence, rng=seed, epsilon=EPSILON)
    return result


@pytest.mark.parametrize("row", TABLE1_ROWS, ids=lambda row: f"{row.paradigm}-"
                         + ("inv-" if row.inverse_available else "noinv-")
                         + "+".join(e.label for e in row.equivalences))
def test_measured_queries_respect_claimed_bounds(row):
    sizes = (4, 6) if row.paradigm == "classical" else (3, 4)
    for equivalence in row.equivalences:
        for num_lines in sizes:
            for seed in (11, 29):
                result = run_row_instance(row, equivalence, num_lines, seed)
                measured = (
                    result.queries
                    if row.paradigm == "classical"
                    else result.quantum_queries
                )
                bound = row.bound(num_lines, EPSILON)
                cap = ALLOWANCE_FACTOR * bound + ALLOWANCE_OFFSET
                assert measured <= cap, (
                    f"{equivalence.label} ({row.complexity}, inverse="
                    f"{row.inverse_available}): measured {measured} queries at "
                    f"n={num_lines}, cap {cap}"
                )


def test_quantum_n_i_beats_classical_collision_at_moderate_n():
    """The Theorem 1 separation is visible already at n = 9."""
    from repro.baselines.classical_collision import match_n_i_collision

    num_lines = 9
    base = random_circuit(num_lines, 30, 5)
    c1, c2, _ = make_instance(base, EquivalenceType.N_I, 5)
    quantum = match(c1, c2, EquivalenceType.N_I, rng=5, epsilon=EPSILON)
    classical_total = 0
    runs = 3
    for seed in range(runs):
        classical_total += match_n_i_collision(c1, c2, rng=seed).queries
    assert quantum.quantum_queries < classical_total / runs
