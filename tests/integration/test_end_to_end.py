"""Integration tests exercising several subsystems together."""

from __future__ import annotations

import random

import pytest

from repro.circuits import io, library
from repro.circuits.permutation import Permutation
from repro.circuits.random import (
    random_circuit,
    random_line_permutation,
    random_negation,
)
from repro.circuits.transforms import transformed_circuit
from repro.core import EquivalenceType, match, make_instance, verify_match
from repro.core.hardness import (
    build_nn_instance,
    decide_unique_sat_via_nn,
    nn_witness_from_assignment,
)
from repro.oracles import CircuitOracle, PermutationOracle
from repro.sat.generators import planted_unique_sat
from repro.sat.valiant_vazirani import isolate_unique_solution
from repro.synthesis import TemplateLibrary, synthesize


class TestSynthesisThenMatching:
    def test_match_resynthesized_circuit_against_original(self, rng):
        """Synthesise a permutation, scramble it, and recover the scrambling."""
        base = random_circuit(4, 18, rng)
        resynthesized = synthesize(Permutation.from_circuit(base))
        nu = random_negation(4, rng)
        pi = random_line_permutation(4, rng)
        scrambled = transformed_circuit(resynthesized, nu_x=nu, pi_x=pi)
        o1 = CircuitOracle(scrambled, with_inverse=True)
        o2 = CircuitOracle(base, with_inverse=True)
        result = match(o1, o2, EquivalenceType.NP_I)
        assert verify_match(scrambled, base, EquivalenceType.NP_I, result)


class TestOracleVarietyMatching:
    def test_permutation_oracles_work_like_circuit_oracles(self, rng):
        base = random_circuit(4, 16, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_NP, rng)
        o1 = PermutationOracle(Permutation.from_circuit(c1), with_inverse=True)
        o2 = PermutationOracle(Permutation.from_circuit(c2), with_inverse=True)
        result = match(o1, o2, EquivalenceType.I_NP)
        assert verify_match(c1, c2, EquivalenceType.I_NP, result)

    def test_matching_circuits_loaded_from_real_files(self, tmp_path, rng):
        base = library.hidden_weighted_bit(4)
        c1, _, _ = make_instance(base, EquivalenceType.P_I, rng)
        path1, path2 = tmp_path / "c1.real", tmp_path / "c2.real"
        io.write_real(c1, path1)
        io.write_real(base, path2)
        loaded1, loaded2 = io.read_real(path1), io.read_real(path2)
        result = match(loaded1, loaded2, EquivalenceType.P_I)
        assert verify_match(loaded1, loaded2, EquivalenceType.P_I, result)


class TestTemplateFlow:
    def test_template_recognition_and_reuse(self, rng):
        templates = TemplateLibrary()
        templates.add("adder", library.ripple_adder(2))
        templates.add("hwb", library.hidden_weighted_bit(4))
        templates.add("increment", library.increment(4))

        nu = random_negation(4, rng)
        pi = random_line_permutation(4, rng)
        target = transformed_circuit(library.hidden_weighted_bit(4), nu_x=nu, pi_x=pi)

        hit = templates.lookup(target, EquivalenceType.NP_I)
        assert hit.template_name == "hwb"
        assert hit.instantiate().functionally_equal(target)


class TestHardnessFlow:
    def test_valiant_vazirani_instance_through_nn_reduction(self, rng):
        """SAT -> UNIQUE-SAT (VV) -> N-N matching -> assignment recovery."""
        from repro.sat.cnf import CNF

        formula = CNF([[1, 2, 3], [-1, 2], [-2, 3]])
        isolated = isolate_unique_solution(formula, rng)
        if isolated.num_variables > 6:
            pytest.skip("isolation added too many auxiliary variables for 2^n scan")
        satisfiable, assignment, instance = decide_unique_sat_via_nn(
            isolated, exhaustive_check=False
        )
        assert satisfiable
        projection = {v: assignment[v] for v in range(1, formula.num_variables + 1)}
        assert formula.evaluate(projection)

    def test_planted_instance_witness_matches_brute_force_baseline(self, rng):
        from repro.baselines.brute_force import brute_force_match

        formula, model = planted_unique_sat(2, 3, rng=rng)
        instance = build_nn_instance(formula)
        planted_witness = nn_witness_from_assignment(instance, model)
        found = brute_force_match(
            instance.c1, instance.c2, EquivalenceType.N_N, rng=rng
        )
        assert verify_match(instance.c1, instance.c2, EquivalenceType.N_N, found)
        # Both witnesses agree on the variable lines (the model is unique).
        for variable in model:
            line = instance.layout.variable_line(variable)
            assert found.nu_x[line] == planted_witness.nu_x[line]


class TestQuantumClassicalAgreement:
    def test_quantum_and_classical_n_i_agree(self, rng):
        base = library.gray_code(4)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        quantum = match(c1, c2, EquivalenceType.N_I, rng=rng, epsilon=1e-5)
        classical = match(
            CircuitOracle(c1, with_inverse=True),
            CircuitOracle(c2, with_inverse=True),
            EquivalenceType.N_I,
        )
        assert quantum.nu_x == classical.nu_x

    def test_quantum_np_i_agrees_with_classical_reconstruction(self, rng):
        base = random_circuit(4, 15, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.NP_I, rng)
        quantum = match(c1, c2, EquivalenceType.NP_I, rng=rng, epsilon=1e-5)
        classical = match(
            CircuitOracle(c1, with_inverse=True),
            CircuitOracle(c2, with_inverse=True),
            EquivalenceType.NP_I,
        )
        assert verify_match(c1, c2, EquivalenceType.NP_I, quantum)
        assert verify_match(c1, c2, EquivalenceType.NP_I, classical)
