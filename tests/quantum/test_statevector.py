"""Unit tests for the state-vector substrate."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import QuantumError
from repro.quantum.statevector import (
    MINUS,
    ONE,
    PLUS,
    ZERO,
    Statevector,
    basis_state,
    product_state,
)


class TestConstruction:
    def test_basis_state_amplitudes(self):
        state = basis_state(0b10, 2)
        assert state.vector[2] == 1.0
        assert np.count_nonzero(state.vector) == 1

    def test_basis_state_out_of_range(self):
        with pytest.raises(QuantumError):
            basis_state(4, 2)

    def test_unnormalised_rejected(self):
        with pytest.raises(QuantumError):
            Statevector([1.0, 1.0])

    def test_bad_length_rejected(self):
        with pytest.raises(QuantumError):
            Statevector([1.0, 0.0, 0.0])

    def test_product_state_plus(self):
        state = product_state([PLUS, PLUS])
        assert np.allclose(state.vector, np.full(4, 0.5))

    def test_product_state_minus_signs(self):
        state = product_state([MINUS])
        assert np.allclose(state.vector, [1 / math.sqrt(2), -1 / math.sqrt(2)])

    def test_product_state_mixed_labels(self):
        state = product_state([ZERO, ONE])
        # qubit0 = |0>, qubit1 = |1> -> basis index 0b10.
        assert state.vector[2] == pytest.approx(1.0)

    def test_product_state_rejects_unknown_label(self):
        with pytest.raises(QuantumError):
            product_state(["0", "x"])

    def test_product_state_rejects_empty(self):
        with pytest.raises(QuantumError):
            product_state([])


class TestAlgebra:
    def test_inner_product_orthogonal(self):
        assert product_state([ZERO]).inner_product(product_state([ONE])) == 0

    def test_inner_product_plus_zero(self):
        value = product_state([PLUS]).inner_product(product_state([ZERO]))
        assert value == pytest.approx(1 / math.sqrt(2))

    def test_fidelity_of_identical_states(self):
        state = product_state([PLUS, MINUS, ZERO])
        assert state.fidelity(state) == pytest.approx(1.0)

    def test_inner_product_dimension_mismatch(self):
        with pytest.raises(QuantumError):
            product_state([ZERO]).inner_product(product_state([ZERO, ZERO]))

    def test_tensor_orders_qubits(self):
        joint = basis_state(1, 1).tensor(basis_state(0, 1))
        # first factor occupies qubit 0 -> joint basis index 0b01.
        assert joint.vector[1] == pytest.approx(1.0)
        assert joint.num_qubits == 2

    def test_probability_of_qubit(self):
        state = product_state([PLUS, ZERO])
        assert state.probability_of_qubit(0, 0) == pytest.approx(0.5)
        assert state.probability_of_qubit(1, 0) == pytest.approx(1.0)

    def test_probability_of_qubit_out_of_range(self):
        with pytest.raises(QuantumError):
            product_state([ZERO]).probability_of_qubit(3, 0)

    def test_probabilities_sum_to_one(self):
        state = product_state([PLUS, MINUS, PLUS])
        assert state.probabilities().sum() == pytest.approx(1.0)

    def test_equals_and_global_phase(self):
        state = product_state([PLUS, ZERO])
        phased = Statevector(-state.vector, validate=False)
        assert not state.equals(phased)
        assert state.equals_up_to_global_phase(phased)

    def test_copy_is_independent(self):
        state = product_state([ZERO, ZERO])
        duplicate = state.copy()
        duplicate.vector[0] = 0.0
        assert state.vector[0] == pytest.approx(1.0)
