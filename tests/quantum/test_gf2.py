"""Unit tests for GF(2) linear algebra."""

from __future__ import annotations

from repro.quantum.gf2 import (
    dot,
    nullspace_basis,
    rank,
    row_echelon,
    solve_unique_nullspace_vector,
)


class TestDot:
    def test_inner_products(self):
        assert dot(0b101, 0b100) == 1
        assert dot(0b101, 0b101) == 0  # two overlapping ones -> parity 0
        assert dot(0, 0b111) == 0


class TestRowEchelon:
    def test_pivots_are_distinct(self):
        rows, pivots = row_echelon([0b110, 0b011, 0b101], 3)
        assert len(pivots) == len(set(pivots))
        assert len(rows) == 2  # the three rows are linearly dependent

    def test_duplicate_rows_collapse(self):
        rows, _ = row_echelon([0b101, 0b101, 0b101], 3)
        assert len(rows) == 1

    def test_zero_rows_ignored(self):
        rows, _ = row_echelon([0, 0b010, 0], 3)
        assert rows == [0b010]


class TestRank:
    def test_full_rank(self):
        assert rank([0b001, 0b010, 0b100], 3) == 3

    def test_dependent_rows(self):
        assert rank([0b011, 0b101, 0b110], 3) == 2

    def test_empty(self):
        assert rank([], 4) == 0


class TestNullspace:
    def test_orthogonality_of_basis(self):
        rows = [0b1100, 0b0110]
        basis = nullspace_basis(rows, 4)
        assert len(basis) == 2
        for vector in basis:
            assert vector != 0
            for row in rows:
                assert dot(row, vector) == 0

    def test_dimension_formula(self):
        rows = [0b10011, 0b01010, 0b00101]
        basis = nullspace_basis(rows, 5)
        assert len(basis) == 5 - rank(rows, 5)

    def test_unique_vector_found(self):
        # Rows orthogonal to s = 0b1011 over 4 bits.
        s = 0b1011
        rows = [y for y in range(16) if y and dot(y, s) == 0]
        assert rank(rows, 4) == 3
        assert solve_unique_nullspace_vector(rows, 4) == s

    def test_unique_vector_none_when_underdetermined(self):
        assert solve_unique_nullspace_vector([0b0001], 4) is None

    def test_unique_vector_none_when_full_rank(self):
        rows = [0b0001, 0b0010, 0b0100, 0b1000]
        assert solve_unique_nullspace_vector(rows, 4) is None
