"""Unit tests for applying circuits and gates to state vectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.library import figure2_example
from repro.circuits.permutation import Permutation
from repro.circuits.random import random_circuit
from repro.exceptions import QuantumError
from repro.quantum.apply import (
    apply_circuit,
    apply_controlled_swap,
    apply_hadamard,
    apply_permutation,
    apply_x,
)
from repro.quantum.statevector import PLUS, ZERO, basis_state, product_state


class TestPermutationAction:
    def test_apply_circuit_on_basis_state(self):
        circuit = figure2_example()
        state = apply_circuit(circuit, basis_state(0b011, 3))
        assert state.vector[0b111] == pytest.approx(1.0)

    def test_apply_circuit_matches_classical_simulation(self, rng):
        circuit = random_circuit(4, 20, rng)
        for value in range(16):
            state = apply_circuit(circuit, basis_state(value, 4))
            assert state.vector[circuit.simulate(value)] == pytest.approx(1.0)

    def test_apply_permutation_preserves_norm(self, rng):
        from repro.circuits.random import random_permutation

        permutation = random_permutation(3, rng)
        state = product_state([PLUS, ZERO, PLUS])
        transformed = apply_permutation(permutation, state)
        assert transformed.is_normalized()

    def test_apply_permutation_preserves_inner_product(self, rng):
        from repro.circuits.random import random_permutation

        permutation = random_permutation(3, rng)
        state_a = product_state([PLUS, ZERO, PLUS])
        state_b = product_state([ZERO, PLUS, PLUS])
        before = state_a.inner_product(state_b)
        after = apply_permutation(permutation, state_a).inner_product(
            apply_permutation(permutation, state_b)
        )
        assert after == pytest.approx(before)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(QuantumError):
            apply_circuit(figure2_example(), basis_state(0, 2))


class TestSingleQubitGates:
    def test_apply_x_flips_basis(self):
        state = apply_x(basis_state(0b00, 2), 1)
        assert state.vector[0b10] == pytest.approx(1.0)

    def test_apply_x_leaves_plus_invariant(self):
        state = product_state([PLUS, ZERO])
        assert apply_x(state, 0).equals(state)

    def test_apply_hadamard_creates_plus(self):
        state = apply_hadamard(basis_state(0, 1), 0)
        assert np.allclose(state.vector, product_state([PLUS]).vector)

    def test_hadamard_is_involution(self):
        state = product_state([PLUS, ZERO, PLUS])
        assert apply_hadamard(apply_hadamard(state, 1), 1).equals(state)

    def test_qubit_out_of_range(self):
        with pytest.raises(QuantumError):
            apply_x(basis_state(0, 2), 5)
        with pytest.raises(QuantumError):
            apply_hadamard(basis_state(0, 2), -1)


class TestControlledSwap:
    def test_swaps_when_control_set(self):
        state = apply_controlled_swap(basis_state(0b011, 3), 0, 1, 2)
        assert state.vector[0b101] == pytest.approx(1.0)

    def test_no_swap_when_control_clear(self):
        state = apply_controlled_swap(basis_state(0b010, 3), 0, 1, 2)
        assert state.vector[0b010] == pytest.approx(1.0)

    def test_distinct_qubits_required(self):
        with pytest.raises(QuantumError):
            apply_controlled_swap(basis_state(0, 3), 0, 1, 1)
