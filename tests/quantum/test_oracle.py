"""Unit tests for the quantum oracle wrapper."""

from __future__ import annotations

import pytest

from repro.circuits.library import figure2_example
from repro.circuits.random import random_circuit, random_permutation
from repro.exceptions import OracleError, QueryBudgetExceededError
from repro.quantum.oracle import QuantumCircuitOracle
from repro.quantum.statevector import PLUS, ZERO, basis_state, product_state


class TestQuantumCircuitOracle:
    def test_wraps_circuit_and_counts_queries(self):
        oracle = QuantumCircuitOracle(figure2_example())
        assert oracle.num_qubits == 3
        state = oracle.query_state(basis_state(0b011, 3))
        assert state.vector[0b111] == pytest.approx(1.0)
        assert oracle.query_count == 1

    def test_wraps_permutation(self, rng):
        permutation = random_permutation(3, rng)
        oracle = QuantumCircuitOracle(permutation)
        state = oracle.query_state(basis_state(5, 3))
        assert state.vector[permutation(5)] == pytest.approx(1.0)

    def test_rejects_other_types(self):
        with pytest.raises(OracleError):
            QuantumCircuitOracle(lambda x: x)

    def test_dimension_mismatch_rejected(self):
        oracle = QuantumCircuitOracle(figure2_example())
        with pytest.raises(OracleError):
            oracle.query_state(basis_state(0, 2))

    def test_query_budget_enforced(self):
        oracle = QuantumCircuitOracle(figure2_example(), max_queries=2)
        probe = product_state([PLUS, ZERO, PLUS])
        oracle.query_state(probe)
        oracle.query_state(probe)
        with pytest.raises(QueryBudgetExceededError):
            oracle.query_state(probe)

    def test_query_basis_counts_and_matches_classical(self, rng):
        circuit = random_circuit(4, 15, rng)
        oracle = QuantumCircuitOracle(circuit)
        assert oracle.query_basis(9) == circuit.simulate(9)
        assert oracle.query_count == 1

    def test_reset_counts(self):
        oracle = QuantumCircuitOracle(figure2_example())
        oracle.query_basis(0)
        oracle.reset_counts()
        assert oracle.query_count == 0

    def test_superposition_input_preserved_structure(self):
        # The Toffoli fixes |+>|+>|0> up to amplitude reshuffling on basis
        # states where both controls are 1.
        oracle = QuantumCircuitOracle(figure2_example())
        state = oracle.query_state(product_state([PLUS, PLUS, ZERO]))
        # Amplitude moved from |011> to |111>.
        assert state.vector[0b011] == pytest.approx(0.0)
        assert abs(state.vector[0b111]) == pytest.approx(0.5)
