"""Unit tests for the swap test (Fig. 3)."""

from __future__ import annotations

import itertools
import random

import pytest

from repro.exceptions import QuantumError
from repro.quantum.statevector import MINUS, PLUS, ZERO, product_state
from repro.quantum.swap_test import (
    SwapTest,
    swap_test_probability,
    swap_test_probability_via_circuit,
)


class TestProbabilities:
    def test_identical_states_always_measure_zero(self):
        state = product_state([PLUS, ZERO, MINUS])
        assert swap_test_probability(state, state) == pytest.approx(1.0)

    def test_orthogonal_states_measure_zero_half_the_time(self):
        zero = product_state([ZERO])
        one = product_state(["1"])
        assert swap_test_probability(zero, one) == pytest.approx(0.5)

    def test_plus_zero_overlap(self):
        probability = swap_test_probability(product_state([PLUS]), product_state([ZERO]))
        assert probability == pytest.approx(0.75)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(QuantumError):
            swap_test_probability(product_state([ZERO]), product_state([ZERO, ZERO]))

    def test_circuit_construction_agrees_with_analytic(self):
        labels = [ZERO, "1", PLUS, MINUS]
        for label_a, label_b in itertools.product(labels, repeat=2):
            for extra in (ZERO, PLUS):
                state_a = product_state([label_a, extra])
                state_b = product_state([label_b, extra])
                analytic = swap_test_probability(state_a, state_b)
                simulated = swap_test_probability_via_circuit(state_a, state_b)
                assert simulated == pytest.approx(analytic, abs=1e-9)


class TestSampler:
    def test_identical_states_never_sample_one(self):
        tester = SwapTest(rng=1)
        state = product_state([PLUS, PLUS, ZERO])
        assert tester.sample_many(state, state, 50) == [0] * 50

    def test_orthogonal_states_sample_one_roughly_half(self):
        tester = SwapTest(rng=2)
        zero = product_state([ZERO, ZERO])
        flipped = product_state(["1", ZERO])
        outcomes = tester.sample_many(zero, flipped, 400)
        assert 0.35 < sum(outcomes) / len(outcomes) < 0.65

    def test_any_one_detects_orthogonality_quickly(self):
        tester = SwapTest(rng=3)
        zero = product_state([ZERO])
        one = product_state(["1"])
        assert tester.any_one(zero, one, repetitions=40)

    def test_any_one_false_for_identical(self):
        tester = SwapTest(rng=4)
        state = product_state([MINUS, PLUS])
        assert not tester.any_one(state, state, repetitions=40)

    def test_run_counter_and_reset(self):
        tester = SwapTest(rng=5)
        state = product_state([ZERO])
        tester.sample_many(state, state, 7)
        assert tester.runs == 7
        tester.reset()
        assert tester.runs == 0

    def test_accepts_random_instance_and_circuit_mode(self):
        tester = SwapTest(rng=random.Random(6), use_circuit=True)
        state_a = product_state([ZERO, PLUS])
        state_b = product_state([ZERO, PLUS])
        assert tester.probability_of_zero(state_a, state_b) == pytest.approx(1.0)
        assert tester.sample(state_a, state_b) == 0

    def test_seeded_samplers_are_reproducible(self):
        zero = product_state([ZERO])
        one = product_state(["1"])
        first = SwapTest(rng=7).sample_many(zero, one, 20)
        second = SwapTest(rng=7).sample_many(zero, one, 20)
        assert first == second
