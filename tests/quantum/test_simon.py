"""Unit tests for Simon's algorithm and the Simon-based N-I matcher."""

from __future__ import annotations

import pytest

from repro.circuits.random import random_circuit
from repro.core import EquivalenceType, make_instance, verify_match
from repro.core.matchers import match_n_i_simon
from repro.exceptions import QuantumError
from repro.quantum.gf2 import dot
from repro.quantum.simon import XorQueryOracle, find_hidden_period, simon_sample


def periodic_function(period: int, input_bits: int):
    """A canonical 2-to-1 function with the given XOR period."""
    representatives: dict[int, int] = {}
    table = []
    for value in range(1 << input_bits):
        key = min(value, value ^ period)
        representatives.setdefault(key, len(representatives))
        table.append(representatives[key])
    return table


class TestXorQueryOracle:
    def test_register_shapes(self):
        oracle = XorQueryOracle(lambda x: x, 3, 3)
        assert oracle.num_qubits == 6
        assert oracle.input_bits == 3
        assert oracle.output_bits == 3

    def test_rejects_out_of_range_values(self):
        with pytest.raises(QuantumError):
            XorQueryOracle(lambda x: 4, 2, 2)

    def test_rejects_bad_table_length(self):
        with pytest.raises(QuantumError):
            XorQueryOracle([0, 1], 2, 2)

    def test_query_counting_and_budget(self):
        import numpy as np

        oracle = XorQueryOracle(lambda x: x, 2, 2, max_queries=1)
        state = np.zeros(16, dtype=complex)
        state[0] = 1.0
        oracle.query_vector(state)
        assert oracle.query_count == 1
        with pytest.raises(QuantumError):
            oracle.query_vector(state)

    def test_xor_semantics_on_basis_state(self):
        import numpy as np

        oracle = XorQueryOracle([0b01, 0b10, 0b11, 0b00], 2, 2)
        state = np.zeros(16, dtype=complex)
        state[0b01] = 1.0  # input x=1, output register 0
        result = oracle.query_vector(state)
        # Output register should now hold f(1) = 0b10: index = 1 | (2 << 2).
        assert result[0b1001] == pytest.approx(1.0)


class TestSimonSampling:
    def test_samples_are_orthogonal_to_the_period(self, rng):
        period = 0b101
        oracle = XorQueryOracle(periodic_function(period, 3), 3, 3)
        for _ in range(20):
            sample = simon_sample(oracle, rng)
            assert dot(sample, period) == 0

    def test_find_hidden_period_recovers_planted_period(self, rng):
        for period in (0b1, 0b110, 0b1011):
            oracle = XorQueryOracle(periodic_function(period, 4), 4, 4)
            assert find_hidden_period(oracle, rng) == period

    def test_injective_function_reports_zero_period(self, rng):
        oracle = XorQueryOracle(list(range(16)), 4, 4)
        assert find_hidden_period(oracle, rng) == 0

    def test_sample_cap_enforced(self, rng):
        oracle = XorQueryOracle(periodic_function(0b11, 2), 2, 2)
        with pytest.raises(QuantumError):
            find_hidden_period(oracle, rng, max_samples=0)


class TestSimonBasedMatching:
    def test_recovers_negation_on_random_circuits(self, rng):
        for _ in range(4):
            base = random_circuit(4, 15, rng)
            c1, c2, truth = make_instance(base, EquivalenceType.N_I, rng)
            result = match_n_i_simon(c1, c2, rng=rng)
            assert result.nu_x == truth.nu_x
            assert verify_match(c1, c2, EquivalenceType.N_I, result)
            assert result.metadata["regime"] == "quantum-simon"

    def test_identity_negation_recovered(self, rng):
        base = random_circuit(4, 15, rng)
        result = match_n_i_simon(base, base.copy(), rng=rng)
        assert result.nu_x == (False,) * 4

    def test_query_count_is_linearish(self, rng):
        base = random_circuit(6, 20, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        result = match_n_i_simon(c1, c2, rng=rng)
        # Simon needs about m = n + 1 informative rounds; allow generous slack.
        assert result.quantum_queries <= 2 * (8 * (6 + 1) + 32)
        assert result.quantum_queries >= 2 * 6  # at least ~m rounds

    def test_agrees_with_swap_test_algorithm(self, rng):
        from repro.core.matchers import match_n_i_quantum

        base = random_circuit(5, 18, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        simon_result = match_n_i_simon(c1, c2, rng=rng)
        swap_result = match_n_i_quantum(c1, c2, epsilon=1e-5, rng=rng)
        assert simon_result.nu_x == swap_result.nu_x

    def test_mismatched_widths_rejected(self, rng):
        from repro.exceptions import MatchingError

        with pytest.raises(MatchingError):
            match_n_i_simon(random_circuit(3, 5, rng), random_circuit(4, 5, rng))
