"""Unit tests for the scaling-fit helpers."""

from __future__ import annotations

import math

import pytest

from repro.analysis.scaling import MODELS, best_fit, fit_model


class TestFitModel:
    def test_exact_linear_data(self):
        sizes = [2, 4, 8, 16]
        measurements = [6.0 * n for n in sizes]
        fit = fit_model(sizes, measurements, "n")
        assert fit.scale == pytest.approx(6.0)
        assert fit.relative_error == pytest.approx(0.0, abs=1e-12)

    def test_prediction(self):
        fit = fit_model([1, 2, 4], [3, 6, 12], "n")
        assert fit.predict(8) == pytest.approx(24.0)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            fit_model([1, 2], [1, 2], "cubic")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fit_model([1, 2], [1], "n")

    def test_all_models_evaluate(self):
        for name, model in MODELS.items():
            assert model(4) > 0, name


class TestBestFit:
    def test_recovers_constant(self):
        sizes = [2, 4, 8, 16, 32]
        fit = best_fit(sizes, [2.0] * len(sizes))
        assert fit.model == "constant"

    def test_recovers_logarithmic(self):
        sizes = [4, 8, 16, 32, 64, 128]
        fit = best_fit(sizes, [3.0 * math.log2(n) for n in sizes])
        assert fit.model == "log n"

    def test_recovers_quadratic(self):
        sizes = [2, 4, 8, 16, 32]
        fit = best_fit(sizes, [0.5 * n * n for n in sizes])
        assert fit.model == "n^2"

    def test_recovers_exponential(self):
        sizes = [4, 6, 8, 10, 12]
        fit = best_fit(sizes, [1.5 * 2 ** (n / 2) for n in sizes])
        assert fit.model == "2^(n/2)"

    def test_candidate_restriction(self):
        sizes = [2, 4, 8]
        fit = best_fit(sizes, [n for n in sizes], candidates=["constant", "n"])
        assert fit.model == "n"

    def test_noisy_linear_data_still_linear(self, rng):
        sizes = list(range(4, 64, 4))
        measurements = [2.0 * n * (1 + 0.05 * (rng.random() - 0.5)) for n in sizes]
        assert best_fit(sizes, measurements).model in ("n", "n log n")
