"""Unit tests for the plain-text report renderer."""

from __future__ import annotations

import pytest

from repro.analysis.report import format_series, format_table


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["name", "value"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert len(lines) == 4
        # Columns are aligned: every row has the separator at the same index.
        assert lines[2].index("|") == lines[3].index("|")

    def test_title_is_prepended(self):
        text = format_table(["a"], [["x"]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])


class TestFormatSeries:
    def test_series_rendering(self):
        text = format_series({4: 10, 8: 20}, name="queries")
        assert "queries" in text
        assert "4" in text and "20" in text
