"""Unit tests for query statistics aggregation."""

from __future__ import annotations

from repro.oracles import QueryStatistics


class TestQueryStatistics:
    def test_empty_statistics(self):
        stats = QueryStatistics("empty")
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.minimum == 0
        assert stats.maximum == 0

    def test_record_and_aggregate(self):
        stats = QueryStatistics("runs")
        stats.record(4)
        stats.record(6)
        stats.record(8)
        assert stats.count == 3
        assert stats.total == 18
        assert stats.mean == 6.0
        assert stats.minimum == 4
        assert stats.maximum == 8

    def test_extend_and_from_samples(self):
        stats = QueryStatistics.from_samples("x", [1, 2, 3])
        stats.extend([4, 5])
        assert stats.count == 5
        assert stats.maximum == 5

    def test_summary_keys(self):
        stats = QueryStatistics.from_samples("x", [2, 2])
        summary = stats.summary()
        assert summary == {"runs": 2, "mean": 2.0, "min": 2.0, "max": 2.0}

    def test_repr_contains_label(self):
        assert "label" in repr(QueryStatistics("label"))
