"""Failure-injection tests: oracles that run out of budget or misbehave.

The matchers must fail *loudly* (with the library's own exceptions) rather
than silently returning wrong witnesses when the oracle layer refuses to
cooperate — query budgets exhausted mid-run, inverse access revoked, or the
two oracles disagreeing on the bit width.
"""

from __future__ import annotations

import pytest

from repro.baselines.classical_collision import match_n_i_collision
from repro.circuits.random import random_circuit
from repro.core import EquivalenceType, make_instance, match
from repro.core.matchers import match_i_np, match_p_i, match_p_n
from repro.exceptions import (
    InverseUnavailableError,
    OracleError,
    QueryBudgetExceededError,
)
from repro.oracles import CircuitOracle, FunctionOracle


class TestBudgetExhaustion:
    def test_one_hot_matcher_stops_at_budget(self, rng):
        base = random_circuit(6, 20, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.P_I, rng)
        o1 = CircuitOracle(c1, max_queries=3)
        o2 = CircuitOracle(c2)
        with pytest.raises(QueryBudgetExceededError):
            match_p_i(o1, o2)

    def test_randomised_matcher_stops_at_budget(self, rng):
        base = random_circuit(6, 20, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.I_NP, rng)
        o1 = CircuitOracle(c1, max_queries=5)
        o2 = CircuitOracle(c2, max_queries=5)
        with pytest.raises(QueryBudgetExceededError):
            match_i_np(o1, o2, epsilon=1e-6, rng=rng)

    def test_collision_baseline_budget_is_its_own_error(self, rng):
        base = random_circuit(8, 25, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        o1 = CircuitOracle(c1, max_queries=10_000)
        o2 = CircuitOracle(c2, max_queries=10_000)
        # The baseline's own max_queries triggers before the oracle budget.
        from repro.exceptions import MatchingError

        with pytest.raises(MatchingError):
            match_n_i_collision(o1, o2, rng=rng, max_queries=4)

    def test_budget_exactly_sufficient_succeeds(self, rng):
        base = random_circuit(5, 15, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.P_N, rng)
        # P-N without inverse needs exactly 2 + 2n queries.
        o1 = CircuitOracle(c1, max_queries=1 + 5)
        o2 = CircuitOracle(c2, max_queries=1 + 5)
        result = match_p_n(o1, o2)
        assert result.queries == 12


class TestAccessViolations:
    def test_inverse_refused_when_not_granted(self, rng):
        oracle = CircuitOracle(random_circuit(3, 10, rng))
        with pytest.raises(InverseUnavailableError):
            oracle.query_inverse(0)

    def test_dispatcher_does_not_silently_use_missing_inverse(self, rng):
        base = random_circuit(4, 15, rng)
        c1, c2, _ = make_instance(base, EquivalenceType.N_I, rng)
        o1 = CircuitOracle(c1)  # no inverse
        o2 = CircuitOracle(c2)  # no inverse
        result = match(o1, o2, EquivalenceType.N_I, rng=rng)
        # The dispatcher must have taken the quantum route, not inverse access.
        assert result.metadata["regime"] == "quantum-swap-test"
        assert o1.inverse_query_count == 0
        assert o2.inverse_query_count == 0

    def test_width_disagreement_detected(self, rng):
        small = FunctionOracle(lambda value: value, 3)
        with pytest.raises(OracleError):
            small.query(12)
