"""Unit tests for the classical oracle wrappers."""

from __future__ import annotations

import pytest

from repro.circuits.library import figure2_example, increment
from repro.circuits.permutation import Permutation
from repro.circuits.random import random_circuit, random_permutation
from repro.exceptions import (
    InverseUnavailableError,
    OracleError,
    QueryBudgetExceededError,
)
from repro.oracles import (
    CircuitOracle,
    FunctionOracle,
    PermutationOracle,
    as_oracle,
)


class TestCircuitOracle:
    def test_forward_query_matches_simulation(self, rng):
        circuit = random_circuit(4, 12, rng)
        oracle = CircuitOracle(circuit)
        for value in range(16):
            assert oracle.query(value) == circuit.simulate(value)

    def test_query_counting(self):
        oracle = CircuitOracle(figure2_example())
        oracle.query(0)
        oracle.query(1)
        assert oracle.query_count == 2
        assert oracle.total_queries == 2

    def test_inverse_disabled_by_default(self):
        oracle = CircuitOracle(figure2_example())
        assert not oracle.has_inverse
        with pytest.raises(InverseUnavailableError):
            oracle.query_inverse(0)

    def test_inverse_query_matches_inverse_circuit(self, rng):
        circuit = random_circuit(4, 12, rng)
        oracle = CircuitOracle(circuit, with_inverse=True)
        for value in range(16):
            assert circuit.simulate(oracle.query_inverse(value)) == value
        assert oracle.inverse_query_count == 16
        assert oracle.query_count == 0

    def test_out_of_range_query_rejected(self):
        oracle = CircuitOracle(figure2_example())
        with pytest.raises(OracleError):
            oracle.query(8)
        with pytest.raises(OracleError):
            oracle.query(-1)

    def test_query_budget(self):
        oracle = CircuitOracle(figure2_example(), max_queries=3)
        for value in range(3):
            oracle.query(value)
        with pytest.raises(QueryBudgetExceededError):
            oracle.query(3)

    def test_reset_counts(self):
        oracle = CircuitOracle(figure2_example(), with_inverse=True)
        oracle.query(0)
        oracle.query_inverse(0)
        oracle.reset_counts()
        assert oracle.total_queries == 0

    def test_white_box_escape_hatch(self):
        circuit = figure2_example()
        assert CircuitOracle(circuit).circuit is circuit


class TestPermutationOracle:
    def test_forward_and_inverse(self, rng):
        permutation = random_permutation(3, rng)
        oracle = PermutationOracle(permutation, with_inverse=True)
        for value in range(8):
            assert oracle.query(value) == permutation(value)
            assert permutation(oracle.query_inverse(value)) == value

    def test_escape_hatch(self, rng):
        permutation = random_permutation(3, rng)
        assert PermutationOracle(permutation).permutation is permutation


class TestFunctionOracle:
    def test_forward_function(self):
        oracle = FunctionOracle(lambda value: value ^ 0b101, 3)
        assert oracle.query(0) == 0b101

    def test_inverse_requires_explicit_function(self):
        with pytest.raises(OracleError):
            FunctionOracle(lambda value: value, 3, with_inverse=True)

    def test_inverse_function_used(self):
        oracle = FunctionOracle(
            lambda value: (value + 1) % 8,
            3,
            inverse_function=lambda value: (value - 1) % 8,
            with_inverse=True,
        )
        assert oracle.query_inverse(0) == 7


class TestAsOracle:
    def test_circuit_coerced(self):
        oracle = as_oracle(increment(3))
        assert oracle.query(3) == 4

    def test_permutation_coerced(self):
        oracle = as_oracle(Permutation.identity(2), with_inverse=True)
        assert oracle.query_inverse(1) == 1

    def test_existing_oracle_passthrough(self):
        oracle = CircuitOracle(figure2_example(), with_inverse=True)
        assert as_oracle(oracle, with_inverse=False) is oracle

    def test_unknown_type_rejected(self):
        with pytest.raises(OracleError):
            as_oracle("not a circuit")

    def test_zero_lines_rejected(self):
        with pytest.raises(OracleError):
            FunctionOracle(lambda value: value, 0)
