"""Accounting regressions for the batch query/evaluation API.

The bit-parallel hot path must never bend the query-complexity model:
``query_many``/``query_inverse_many`` charge one logical query per
*value* (never per 64-lane word) in the same order as the scalar loop,
so counters, budget-exhaustion points and validation errors are
indistinguishable from ``[oracle.query(v) for v in values]``.  The
white-box ``evaluate_many`` capability, by contrast, charges nothing —
exactly like ``peek``/``peek_table``.
"""

from __future__ import annotations

import random

import pytest

from repro.circuits.random import random_circuit
from repro.exceptions import (
    InverseUnavailableError,
    OracleError,
    QueryBudgetExceededError,
)
from repro.oracles import CircuitOracle, FunctionOracle

SEED = 20240712


def _opaque_oracle(num_lines=5, max_queries=None, with_inverse=False):
    """A query-charged oracle with no bit-parallel representation."""
    mask = (1 << num_lines) - 1

    def forward(value):
        return value ^ mask

    return FunctionOracle(
        forward,
        num_lines,
        inverse_function=forward if with_inverse else None,
        with_inverse=with_inverse,
        max_queries=max_queries,
    )


class TestBatchCharging:
    def test_query_many_charges_per_value(self):
        oracle = _opaque_oracle()
        values = [3, 7, 7, 0, 21]
        responses = oracle.query_many(values)
        assert oracle.query_count == len(values)
        assert oracle.total_queries == len(values)
        assert responses == [value ^ 0b11111 for value in values]

    def test_query_many_matches_scalar_loop(self):
        rng = random.Random(SEED)
        circuit = random_circuit(6, 24, rng)
        values = [rng.getrandbits(6) for _ in range(130)]
        batched = CircuitOracle(circuit)
        scalar = CircuitOracle(circuit)
        assert batched.query_many(values) == [
            scalar.query(value) for value in values
        ]
        assert batched.query_count == scalar.query_count == len(values)

    def test_query_inverse_many_charges_inverse_counter(self):
        oracle = _opaque_oracle(with_inverse=True)
        oracle.query_inverse_many([1, 2, 3])
        assert oracle.inverse_query_count == 3
        assert oracle.query_count == 0

    def test_query_inverse_many_without_inverse_charges_nothing(self):
        oracle = _opaque_oracle()
        with pytest.raises(InverseUnavailableError):
            oracle.query_inverse_many([0, 1])
        assert oracle.total_queries == 0

    def test_evaluate_many_charges_nothing(self):
        rng = random.Random(SEED)
        oracle = CircuitOracle(random_circuit(8, 20, rng))
        values = [rng.getrandbits(8) for _ in range(100)]
        outputs = oracle.evaluate_many(values)
        assert outputs == [oracle.peek(value) for value in values]
        assert oracle.total_queries == 0


class TestBudgetExhaustionParity:
    def test_batch_raises_at_the_scalar_probe_index(self):
        """A budget that dies mid-batch dies exactly where the loop would."""
        budget = 4
        values = [1, 2, 3, 4, 5, 6, 7]

        scalar = _opaque_oracle(max_queries=budget)
        scalar_index = None
        for index, value in enumerate(values):
            try:
                scalar.query(value)
            except QueryBudgetExceededError:
                scalar_index = index
                break
        assert scalar_index == budget

        batched = _opaque_oracle(max_queries=budget)
        with pytest.raises(QueryBudgetExceededError):
            batched.query_many(values)
        # Same counters at the moment of the raise: the first `budget`
        # probes were charged, the failing one was not.
        assert batched.query_count == scalar.query_count == budget
        assert batched.total_queries == scalar.total_queries == budget

    def test_budget_spans_forward_and_inverse_batches(self):
        oracle = _opaque_oracle(max_queries=5, with_inverse=True)
        oracle.query_many([0, 1, 2])
        with pytest.raises(QueryBudgetExceededError):
            oracle.query_inverse_many([3, 4, 5])
        assert oracle.query_count == 3
        assert oracle.inverse_query_count == 2

    def test_exact_budget_batch_succeeds(self):
        oracle = _opaque_oracle(max_queries=3)
        assert len(oracle.query_many([0, 1, 2])) == 3
        assert oracle.query_count == 3

    def test_invalid_value_raises_at_the_scalar_index(self):
        """Validation order matches the loop: earlier probes are charged."""
        values = [0, 1, 1 << 5, 2]

        scalar = _opaque_oracle()
        with pytest.raises(OracleError, match="does not fit"):
            for value in values:
                scalar.query(value)

        batched = _opaque_oracle()
        with pytest.raises(OracleError, match="does not fit"):
            batched.query_many(values)
        assert batched.query_count == scalar.query_count == 2
