"""Unit tests for the shared bit-vector helpers."""

from __future__ import annotations

import pytest

from repro.bits import (
    bit_flip,
    bit_get,
    bit_set,
    bits_to_int,
    hamming_distance,
    int_to_bits,
    iter_bit_vectors,
    mask_from_indices,
    one_hot,
    parity,
    popcount,
)


class TestSingleBitOps:
    def test_bit_get(self):
        assert bit_get(0b1010, 1) == 1
        assert bit_get(0b1010, 0) == 0

    def test_bit_set(self):
        assert bit_set(0b000, 1, 1) == 0b010
        assert bit_set(0b111, 1, 0) == 0b101
        assert bit_set(0b010, 1, 1) == 0b010

    def test_bit_flip(self):
        assert bit_flip(0b100, 2) == 0
        assert bit_flip(0, 3) == 0b1000


class TestConversions:
    def test_bits_to_int_lsb_first(self):
        assert bits_to_int([1, 0, 1]) == 0b101
        assert bits_to_int([]) == 0
        assert bits_to_int([True, False]) == 1

    def test_bits_to_int_rejects_non_bits(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2])

    def test_int_to_bits(self):
        assert int_to_bits(0b101, 3) == [1, 0, 1]
        assert int_to_bits(0, 2) == [0, 0]

    def test_int_to_bits_width_check(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)
        with pytest.raises(ValueError):
            int_to_bits(-1, 3)

    def test_roundtrip(self):
        for value in range(32):
            assert bits_to_int(int_to_bits(value, 5)) == value


class TestAggregates:
    def test_popcount_and_parity(self):
        assert popcount(0b1011) == 3
        assert parity(0b1011) == 1
        assert parity(0b1001) == 0

    def test_hamming_distance(self):
        assert hamming_distance(0b1100, 0b1010) == 2
        assert hamming_distance(5, 5) == 0

    def test_iter_bit_vectors(self):
        assert list(iter_bit_vectors(3)) == list(range(8))

    def test_one_hot(self):
        assert one_hot(2, 4) == 0b0100
        with pytest.raises(ValueError):
            one_hot(4, 4)

    def test_mask_from_indices(self):
        assert mask_from_indices([0, 3]) == 0b1001
        assert mask_from_indices([]) == 0
