"""The matching daemon end to end: serve, submit, watch, share a cache.

Starts a :class:`~repro.service.daemon.MatchingDaemon` in-process on a
Unix socket, submits the same corpus twice from a
:class:`~repro.service.daemon.DaemonClient`, and shows the daemon's
whole point: the second submission is answered entirely by the shared
result cache — zero oracle queries — because the server outlives the
runs.  Everything here also works across processes and hosts; see
``repro serve --help`` and ``docs/protocol.md``.

Run with: ``PYTHONPATH=src python examples/daemon_client.py``
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.service import (
    DaemonClient,
    MatchingDaemon,
    ProgressObserver,
    StatsObserver,
    generate_corpus,
)


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-daemon-example-"))
    corpus = root / "corpus"
    generate_corpus(corpus, num_lines=3, families=("random",), seed=42)

    # ``repro serve`` does exactly this, plus flag plumbing.
    daemon = MatchingDaemon(store_dir=root / "runs", socket_path=root / "d.sock")
    daemon.start()
    print(f"daemon listening on {daemon.address}")

    try:
        with DaemonClient(socket_path=root / "d.sock", timeout=60) as client:
            print("ping:", client.ping()["protocol"])

            # First submission: everything executes, records stream into
            # the run's own JSONL store under the daemon's store dir.
            ack = client.submit(corpus, seed=7)
            print(f"submitted {ack['run_id']} -> {ack['store']}")
            state = client.watch(ack["run_id"], [ProgressObserver(every=4)])
            first = client.status(ack["run_id"])["run"]["summary"]
            print(f"{ack['run_id']}: {state}, executed={first['executed']}")

            # Second submission of the same manifest: the shared cache
            # answers every pair before any oracle is built.
            ack = client.submit(corpus, seed=7)
            stats = StatsObserver()
            state = client.watch(ack["run_id"], [stats])
            second = client.status(ack["run_id"])["run"]["summary"]
            print(
                f"{ack['run_id']}: {state}, executed={second['executed']}, "
                f"cache_hits={second['cache_hits']} "
                f"(observer saw {stats.cache_hits} hits)"
            )
            assert second["executed"] == 0, "warm resubmission must be free"

            print("daemon stats:", client.stats()["cache"])
            client.shutdown()
    finally:
        daemon.stop()
    print("daemon stopped cleanly")


if __name__ == "__main__":
    main()
