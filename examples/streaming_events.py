#!/usr/bin/env python3
"""The streaming service API: events, observers, and sharded runs.

``MatchingService.stream`` turns a corpus run into a generator of typed
lifecycle events — the primitive everything else consumes.  This example
walks the surface:

1. iterate the raw event stream of a run and react per event (the
   ``RunCompleted`` event carries the final ``ServiceReport``),
2. run the same manifest through ``run_manifest`` with stock observers
   attached — a progress line every 4 pairs, a JSONL event log and an
   in-memory stats counter,
3. overlap execution with store writes via ``OverlapExecutor``,
4. split the corpus into 3 shards (a deterministic SHA-256 partition by
   pair id), run each shard separately, then ``merge_stores`` the shard
   stores — and check the merged store is byte-identical to the
   unsharded run's, seeds and query counts included,
5. stream per-entry results out of the core engine itself with
   ``match_many(on_entry=...)``.

Run with:  python examples/streaming_events.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.circuits.random import random_circuit
from repro.core import EquivalenceType, MatchingEngine
from repro.core.verify import make_instance
from repro.service import (
    EventLogObserver,
    MatchingService,
    OverlapExecutor,
    ProgressObserver,
    RunCompleted,
    StatsObserver,
    TaskCompleted,
    TaskFailed,
    generate_corpus,
    merge_stores,
)


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-streaming-"))
    corpus = root / "corpus"
    manifest = generate_corpus(corpus, num_lines=4, pairs_per_class=1, seed=42)
    print(f"corpus: {len(manifest.entries)} pairs under {corpus}")

    # 1. The raw event stream: react per pair, as each one completes.
    print("\n-- raw event stream --")
    report = None
    for event in MatchingService().stream(corpus, seed=7):
        if isinstance(event, TaskCompleted):
            queries = event.record["result"]["queries"]
            print(f"  {event.record['pair_id']}: ok ({queries} queries)")
        elif isinstance(event, TaskFailed):
            print(f"  {event.record['pair_id']}: FAILED ({event.error})")
        elif isinstance(event, RunCompleted):
            report = event.report
    print(f"stream done: {report.summary()}")

    # 2. Observers: progress + JSONL event log + counters, no loop needed.
    print("\n-- observers --")
    stats = StatsObserver()
    with EventLogObserver(root / "events.jsonl") as event_log:
        MatchingService(
            observers=[ProgressObserver(every=4), event_log, stats]
        ).run_manifest(corpus, seed=7)
    print(f"stats: {stats.as_dict()}")
    print(f"event log: {(root / 'events.jsonl').stat().st_size} bytes")

    # 3. Overlap execution with store writes.
    overlap_store = root / "overlap.jsonl"
    overlap = MatchingService(executor=OverlapExecutor()).run_manifest(
        corpus, store_path=overlap_store, seed=7
    )
    print(f"\noverlap: {overlap.summary()}")

    # 4. Sharded runs merge byte-identically to the unsharded store.
    full_store = root / "full.jsonl"
    MatchingService().run_manifest(corpus, store_path=full_store, seed=7)
    shard_stores = []
    for index in range(3):
        store = root / f"shard{index}.jsonl"
        shard_stores.append(store)
        shard = MatchingService().run_manifest(
            corpus, store_path=store, seed=7, shard=(index, 3)
        )
        print(f"shard {index}/3: {shard.total} pairs")
    merged = root / "merged.jsonl"
    count = merge_stores(merged, shard_stores)
    identical = merged.read_bytes() == full_store.read_bytes()
    print(f"merged {count} records; byte-identical to unsharded run: {identical}")
    assert identical

    # 5. The same streaming idea one level down: the engine's callback.
    print("\n-- engine on_entry --")
    import random

    rng = random.Random(3)
    base = random_circuit(4, 12, rng)
    pairs = [
        make_instance(base, EquivalenceType.I_N, rng)[:2] for _ in range(3)
    ]
    MatchingEngine().match_many(
        pairs,
        equivalence="I-N",
        rng=5,
        on_entry=lambda entry: print(
            f"  pair {entry.index}: {entry.matcher} "
            f"({entry.result.queries} queries)"
        ),
    )


if __name__ == "__main__":
    main()
