#!/usr/bin/env python3
"""Interoperability: RevLib .real and OpenQASM export/import plus matching.

Shows the file-format substrate: a benchmark circuit is written to RevLib
``.real`` and OpenQASM 2.0, read back, and the reloaded copies are matched
against a scrambled variant — the workflow a synthesis tool would follow
when checking a candidate implementation pulled from a benchmark suite.

Run with:  python examples/revlib_interchange.py
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro.circuits import io, library
from repro.circuits.random import random_line_permutation
from repro.circuits.transforms import transformed_circuit
from repro.core import EquivalenceType, match, verify_match
from repro.oracles import CircuitOracle


def main() -> None:
    rng = random.Random(5)
    circuit = library.hidden_weighted_bit(4)

    with tempfile.TemporaryDirectory() as workdir:
        real_path = Path(workdir) / "hwb4.real"
        io.write_real(circuit, real_path)
        print(f"Wrote {real_path.name}:")
        print(real_path.read_text())

        reloaded = io.read_real(real_path)
        assert reloaded.functionally_equal(circuit)
        print("Reloaded .real circuit is functionally identical.\n")

        qasm_text = io.circuit_to_qasm(circuit)
        print("OpenQASM 2.0 export (first lines):")
        print("\n".join(qasm_text.splitlines()[:8]))
        roundtripped = io.qasm_to_circuit(qasm_text)
        assert roundtripped.functionally_equal(circuit)
        print("OpenQASM round trip is functionally identical.\n")

        # Match a line-permuted variant of the reloaded circuit (P-I).
        pi = random_line_permutation(4, rng)
        permuted = transformed_circuit(reloaded, pi_x=pi)
        result = match(
            CircuitOracle(permuted, with_inverse=True),
            CircuitOracle(reloaded, with_inverse=True),
            EquivalenceType.P_I,
        )
        ok = verify_match(permuted, reloaded, EquivalenceType.P_I, result)
        print(f"Hidden line permutation: {list(pi.mapping)}")
        print(f"Recovered permutation  : {list(result.pi_x.mapping)}")
        print(f"Verified: {ok} using {result.queries} oracle queries")


if __name__ == "__main__":
    main()
