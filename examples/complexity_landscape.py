#!/usr/bin/env python3
"""The Fig. 1 landscape: domination lattice and complexity classification.

Prints the Hasse diagram of the 16 X-Y equivalence classes (which class
subsumes which), their hardness classification, and the Table 1 complexity
rows — the reproduction of Figure 1 and Table 1 as data rather than as a
drawing.

Run with:  python examples/complexity_landscape.py
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.core import (
    EquivalenceType,
    TABLE1_ROWS,
    classify,
    domination_edges,
)


def main() -> None:
    print("Hasse diagram of the domination relation (Fig. 1):")
    covers: dict[str, list[str]] = {}
    for upper, lower in domination_edges(hasse=True):
        covers.setdefault(upper.label, []).append(lower.label)
    for label in sorted(covers):
        print(f"  {label:6s} covers {', '.join(sorted(covers[label]))}")
    print()

    rows = [
        [equivalence.label, classify(equivalence).value]
        for equivalence in EquivalenceType
    ]
    print(format_table(["class", "hardness"], rows, title="Complexity classification"))
    print()

    table1 = [
        [
            "yes" + ("(both)" if row.requires_both_inverses else "")
            if row.inverse_available
            else "no",
            " / ".join(e.label for e in row.equivalences),
            row.paradigm,
            row.complexity,
        ]
        for row in TABLE1_ROWS
    ]
    print(
        format_table(
            ["inverse available", "equivalences", "paradigm", "complexity"],
            table1,
            title="Table 1 (claimed query complexities)",
        )
    )


if __name__ == "__main__":
    main()
