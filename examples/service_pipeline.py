#!/usr/bin/env python3
"""The matching service: corpus -> cached, parallel, resumable pipeline.

The engine answers one batch at a time in one process with no memory of
past batches; the service layer turns it into a pipeline for corpus-scale
workloads.  This example walks the full loop:

1. generate a corpus with :func:`repro.service.generate_corpus` — random
   cascades, library benchmark functions and adversarial non-equivalent
   near-misses across the tractable equivalence classes, plus a
   ``manifest.json`` describing every pair,
2. run the manifest through a :class:`~repro.service.MatchingService`
   with a result cache and a JSONL result store, with witness
   verification on (the near-misses that "match" under the broken promise
   are flagged ``verified: false``),
3. re-run the same manifest warm — every pair is answered from the cache
   without building a single oracle,
4. simulate a crash by truncating the store, then resume — only the
   missing pairs execute, with the exact per-pair seeds the interrupted
   run would have used,
5. run the corpus through a 4-worker process pool and check the records
   are byte-identical to the serial run.

Run with:  python examples/service_pipeline.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.service import (
    MatchingService,
    ParallelExecutor,
    ResultStore,
    build_cache,
    generate_corpus,
)


def main() -> None:
    root = Path(tempfile.mkdtemp(prefix="repro-service-"))
    corpus = root / "corpus"
    store_path = root / "results.jsonl"

    # 1. Generate the corpus.
    manifest = generate_corpus(corpus, num_lines=4, pairs_per_class=2, seed=42)
    print(
        f"corpus: {len(manifest.entries)} pairs "
        f"({len(manifest.classes)} classes x {len(manifest.families)} families) "
        f"under {corpus}"
    )

    # 2. Cold run: cache + store + verification.
    service = MatchingService(cache=build_cache(), verify=True)
    cold = service.run_manifest(corpus, store_path=store_path, seed=7)
    print()
    print(cold.to_table(title="cold run"))
    print(cold.summary())
    flagged = [
        record["pair_id"]
        for record in cold.records
        if record.get("verified") is False
    ]
    print(f"near-misses caught by verification: {', '.join(flagged) or 'none'}")

    # 3. Warm run: zero oracle queries.
    warm = service.run_manifest(corpus, seed=7)
    print()
    print("warm:", warm.summary())

    # 4. Crash + resume.
    lines = store_path.read_text().splitlines()
    store_path.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
    resumed = MatchingService().run_manifest(
        corpus, store_path=store_path, resume=True, seed=7
    )
    print()
    print("resumed:", resumed.summary())
    print(f"store holds {len(ResultStore(store_path).load())} records again")

    # 5. Parallel run, byte-identical to serial.
    serial = MatchingService().run_manifest(corpus, seed=7)
    parallel = MatchingService(executor=ParallelExecutor(workers=4)).run_manifest(
        corpus, seed=7
    )
    identical = json.dumps(serial.records, sort_keys=True) == json.dumps(
        parallel.records, sort_keys=True
    )
    print()
    print("parallel:", parallel.summary())
    print(f"parallel records identical to serial: {identical}")
    assert identical


if __name__ == "__main__":
    main()
