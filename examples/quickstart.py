#!/usr/bin/env python3
"""Quickstart: build a reversible circuit, scramble it, and match it back.

This walks the happy path of the library:

1. build a benchmark circuit (the Fig. 2 Toffoli and a 4-bit hidden-weighted-
   bit function),
2. wrap it in a random input negation + permutation (an NP-I instance),
3. run the Boolean matcher in both regimes of Table 1 (inverse available:
   O(log n) classical; no inverse: O(n^2 log 1/eps) quantum swap tests),
4. verify the recovered witnesses reconstruct the scrambled circuit exactly.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.circuits import library, transforms
from repro.circuits.random import random_line_permutation, random_negation
from repro.core import EquivalenceType, match, verify_match
from repro.oracles import CircuitOracle


def main() -> None:
    rng = random.Random(2024)

    # -- 1. A base circuit ---------------------------------------------------
    figure2 = library.figure2_example()
    print("The Fig. 2 example circuit:")
    print(figure2)
    print()

    base = library.hidden_weighted_bit(4)
    print(f"Base circuit: {base.name} with {base.num_gates} MCT gates")

    # -- 2. Scramble it: C1 = base . C_pi . C_nu ------------------------------
    nu = random_negation(base.num_lines, rng)
    pi = random_line_permutation(base.num_lines, rng)
    scrambled = transforms.transformed_circuit(base, nu_x=nu, pi_x=pi)
    print(f"Hidden input negation : {''.join('1' if b else '0' for b in nu)}")
    print(f"Hidden input permutation: {list(pi.mapping)}")
    print()

    # -- 3a. Match with inverse access (classical, O(log n)) ------------------
    oracle1 = CircuitOracle(scrambled, with_inverse=True)
    oracle2 = CircuitOracle(base, with_inverse=True)
    classical = match(oracle1, oracle2, EquivalenceType.NP_I)
    print("Classical matcher (inverse available):")
    print(f"  {classical.describe()}")

    # -- 3b. Match without inverse access (quantum swap tests) ----------------
    quantum = match(scrambled, base, EquivalenceType.NP_I, rng=rng, epsilon=1e-4)
    print("Quantum matcher (no inverse, swap tests):")
    print(f"  recovered nu_x = {''.join('1' if b else '0' for b in quantum.nu_x)}")
    print(f"  recovered pi_x = {list(quantum.pi_x.mapping)}")
    print(f"  quantum queries = {quantum.quantum_queries}, "
          f"swap tests = {quantum.swap_tests}")
    print()

    # -- 4. Verify ------------------------------------------------------------
    for label, result in (("classical", classical), ("quantum", quantum)):
        ok = verify_match(scrambled, base, EquivalenceType.NP_I, result)
        print(f"Verification of the {label} witnesses: {'PASS' if ok else 'FAIL'}")
        assert ok


if __name__ == "__main__":
    main()
