#!/usr/bin/env python3
"""Theorem 2 end to end: solving UNIQUE-SAT through N-N Boolean matching.

The script

1. generates a planted UNIQUE-SAT formula (and, for contrast, an
   unsatisfiable one),
2. builds the Fig. 5 encoding circuit ``C1`` and comparison circuit ``C2``,
3. plays the role of the hypothetical N-N matcher (brute-forcing the
   negation mask over the variable lines — exponential, exactly as Theorem 2
   predicts any approach must be unless UNIQUE-SAT is easy),
4. decodes the found witnesses back into a satisfying assignment and checks
   it against the formula.

Run with:  python examples/unique_sat_reduction.py
"""

from __future__ import annotations

import random

from repro.core.hardness import (
    build_nn_instance,
    decide_unique_sat_via_nn,
    nn_witness_from_assignment,
)
from repro.core import EquivalenceType, verify_match
from repro.sat import cnf_to_dimacs, planted_unique_sat, unsatisfiable_cnf


def main() -> None:
    rng = random.Random(42)

    # -- A satisfiable UNIQUE-SAT instance ------------------------------------
    formula, planted_model = planted_unique_sat(4, 6, rng=rng)
    print("UNIQUE-SAT instance (DIMACS):")
    print(cnf_to_dimacs(formula, comment="planted instance").strip())
    print(f"planted model: {planted_model}")
    print()

    instance = build_nn_instance(formula)
    print(
        f"Encoding circuit C1: {instance.c1.num_lines} lines, "
        f"{instance.c1.num_gates} gates (= 8m + 4 = {8 * formula.num_clauses + 4})"
    )
    print(f"Comparison circuit C2: {instance.c2.num_gates} gate")
    print()

    # The planted model yields a valid N-N witness...
    witness = nn_witness_from_assignment(instance, planted_model)
    ok = verify_match(instance.c1, instance.c2, EquivalenceType.N_N, witness)
    print(f"Witness from the planted model makes C1 = C_nu C2 C_nu: {ok}")

    # ...and conversely, finding a witness solves the formula.
    satisfiable, assignment, _ = decide_unique_sat_via_nn(formula)
    print(f"Decision through the reduction: satisfiable={satisfiable}")
    print(f"Recovered assignment matches the planted model: {assignment == planted_model}")
    print()

    # -- An unsatisfiable instance --------------------------------------------
    bad = unsatisfiable_cnf(4, 3, rng=rng)
    satisfiable, assignment, _ = decide_unique_sat_via_nn(bad)
    print(
        "Unsatisfiable control instance: the reduction finds no N-N witness "
        f"(satisfiable={satisfiable}, assignment={assignment})"
    )


if __name__ == "__main__":
    main()
