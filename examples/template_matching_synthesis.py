#!/usr/bin/env python3
"""Template-based synthesis with *functional* matching (the paper's motivation).

Section 1 argues that template-based reversible synthesis benefits from
Boolean matching because a synthesiser can recognise that a target function
is a negation/permutation variant of an already-optimised template and reuse
that implementation instead of re-synthesising from scratch.

The script builds a small template library (adder, gray code, hidden-
weighted-bit, increment), then takes "incoming" functions that are scrambled
variants of library entries and shows that

* structural comparison fails (the scrambled cascades look nothing alike),
* functional NP-I matching recognises the right template in O(log n)
  queries, and
* instantiating the template with the recovered witnesses reproduces the
  target exactly, usually with far fewer gates than re-synthesis.

Run with:  python examples/template_matching_synthesis.py
"""

from __future__ import annotations

import random

from repro.analysis.report import format_table
from repro.circuits import library
from repro.circuits.permutation import Permutation
from repro.circuits.random import random_line_permutation, random_negation
from repro.circuits.transforms import transformed_circuit
from repro.core import EquivalenceType
from repro.synthesis import TemplateLibrary, synthesize


def main() -> None:
    rng = random.Random(11)

    templates = TemplateLibrary()
    templates.add("adder2", library.ripple_adder(2))
    templates.add("gray4", library.gray_code(4))
    templates.add("hwb4", library.hidden_weighted_bit(4))
    templates.add("increment4", library.increment(4))
    print(f"Template library with {len(templates)} entries\n")

    rows = []
    for template_name in ("hwb4", "adder2", "increment4"):
        template = templates.get(template_name)
        nu = random_negation(4, rng)
        pi = random_line_permutation(4, rng)
        target = transformed_circuit(template, nu_x=nu, pi_x=pi)

        hit = templates.lookup(target, EquivalenceType.NP_I)
        instantiated = hit.instantiate()
        assert instantiated.functionally_equal(target)

        resynthesized = synthesize(Permutation.from_circuit(target))
        rows.append(
            [
                template_name,
                hit.template_name,
                hit.queries,
                instantiated.num_gates,
                resynthesized.num_gates,
            ]
        )

    print(
        format_table(
            [
                "scrambled from",
                "matched template",
                "oracle queries",
                "gates via template",
                "gates via re-synthesis",
            ],
            rows,
            title="Functional template recognition under NP-I matching",
        )
    )


if __name__ == "__main__":
    main()
