#!/usr/bin/env python3
"""Algorithm 1 in action: quantum N-I matching and the exponential speedup.

Reproduces the headline result of the paper (Section 4.5 / Theorem 1): when
no inverse circuits are available, finding the input negation of an N-I
instance classically requires a birthday-style collision search costing
Omega(2^{n/2}) oracle queries, while the swap-test Algorithm 1 needs only
O(n log 1/eps) quantum queries.

The script matches the same hidden negation with both approaches across a
range of bit widths and prints the measured query counts side by side.

Run with:  python examples/quantum_ni_matching.py
"""

from __future__ import annotations

import random

from repro.analysis.report import format_table
from repro.baselines.classical_collision import match_n_i_collision
from repro.circuits.random import random_circuit
from repro.core import EquivalenceType, make_instance
from repro.core.matchers import match_n_i_quantum


def main() -> None:
    rng = random.Random(7)
    epsilon = 1e-3
    rows = []
    for num_lines in (4, 6, 8, 10):
        base = random_circuit(num_lines, 4 * num_lines, rng)
        c1, c2, truth = make_instance(base, EquivalenceType.N_I, rng)

        quantum = match_n_i_quantum(c1, c2, epsilon=epsilon, rng=rng)
        assert quantum.nu_x == truth.nu_x, "Algorithm 1 recovered a wrong negation"

        classical_queries = []
        for seed in range(5):
            result = match_n_i_collision(c1, c2, rng=seed)
            assert result.nu_x == truth.nu_x
            classical_queries.append(result.queries)
        classical_mean = sum(classical_queries) / len(classical_queries)

        rows.append(
            [
                num_lines,
                quantum.quantum_queries,
                quantum.swap_tests,
                f"{classical_mean:.1f}",
                f"{classical_mean / max(quantum.quantum_queries, 1):.1f}x",
            ]
        )

    print(
        format_table(
            ["n", "quantum queries", "swap tests", "classical queries (mean)", "speedup"],
            rows,
            title="N-I matching without inverse circuits (epsilon = 1e-3)",
        )
    )
    print()
    print("The quantum column grows linearly in n (Table 1: O(n log 1/eps));")
    print("the classical collision search grows like 2^(n/2) (Theorem 1).")


if __name__ == "__main__":
    main()
