#!/usr/bin/env python3
"""Batch matching with the MatchingEngine facade.

The paper's matchers answer one pair at a time; production workloads
(template matching a library against a netlist, regression-checking a
synthesis flow) ask about *many* pairs.  This example shows the batch API:

1. generate one base circuit and scramble it into promised instances of
   several equivalence classes,
2. build a configured :class:`~repro.core.MatchingEngine` (inverse access
   granted, so the cheap classical tiers of Table 1 win where they exist),
3. run :meth:`~repro.core.MatchingEngine.match_many` over the whole batch —
   oracle coercion is cached, so the shared base circuit is wrapped (and its
   inverse materialised) once, not once per pair,
4. print the :class:`~repro.core.BatchReport`: per-pair witnesses plus
   aggregate classical/quantum query totals,
5. re-run the batch without inverse access to watch dispatch fall back along
   the chain exact -> randomised -> quantum.

Run with:  python examples/engine_batch_matching.py
"""

from __future__ import annotations

import random

from repro.circuits.random import random_circuit
from repro.core import (
    EquivalenceType,
    MatchingConfig,
    MatchingEngine,
    make_instance,
    verify_match,
)

LABELS = ["I-N", "I-P", "I-NP", "P-I", "P-N", "N-I", "N-P", "NP-I"]


def build_batch(rng: random.Random):
    """One scrambled pair per tractable equivalence class.

    Every pair shares the *same* base circuit object as C2 — the
    template-matching shape — so the engine's coercion cache wraps it (and
    materialises its inverse) once for the whole batch.
    """
    base = random_circuit(4, 16, rng, name="base")
    pairs = []
    for label in LABELS:
        equivalence = EquivalenceType.from_label(label)
        c1, _, _ = make_instance(base, equivalence, rng)
        pairs.append((c1, base, equivalence))
    return pairs


def main() -> None:
    rng = random.Random(2024)
    pairs = build_batch(rng)

    # -- inverse access granted: the classical O(1)/O(log n) tiers win -------
    engine = MatchingEngine(MatchingConfig(with_inverse=True), rng=7)
    report = engine.match_many(pairs)
    print(report.to_table(title="with inverse access"))
    print(report.summary())
    print(f"distinct oracles coerced for the batch: {report.coerced_oracles}")
    print()

    # -- no inverses: randomised and quantum tiers take over ------------------
    # (N-P has no known algorithm in this regime and is reported as failed.)
    blackbox = MatchingEngine(MatchingConfig(with_inverse=False), rng=7)
    report = blackbox.match_many(pairs)
    print(report.to_table(title="black boxes only"))
    print(report.summary())
    print()

    # -- every produced witness reconstructs C1 from C2 -----------------------
    verified = sum(
        1
        for (c1, c2, equivalence), entry in zip(pairs, report.entries)
        if entry.matched and verify_match(c1, c2, equivalence, entry.result)
    )
    print(f"verified witnesses: {verified}/{report.num_matched}")


if __name__ == "__main__":
    main()
