"""The shared remote cache tier: ``repro-cache/v1`` server and client.

One fleet, one warm-hit pool: :class:`~repro.cachenet.server.CacheServer`
exposes any :class:`~repro.service.cache.ResultCache` over the newline-
delimited JSON protocol ``repro-cache/v1`` (``docs/remote-cache.md``),
and :class:`~repro.cachenet.remote.RemoteCache` slots that server into
the client-side tier stack — the first worker to match a pair pays the
oracle queries; every other worker (and every later run) hits cache.

The package depends on :mod:`repro.service` for the cache contract and
the wire plumbing (:class:`~repro.service.daemon.DaemonClient` frames the
client side); the service layer only ever imports it lazily, so the
dependency stays one-directional.
"""

from repro.cachenet.remote import RemoteCache
from repro.cachenet.server import CACHE_PROTOCOL_VERSION, CacheServer

__all__ = ["CACHE_PROTOCOL_VERSION", "CacheServer", "RemoteCache"]
