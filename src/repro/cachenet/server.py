"""The cache server: one :class:`ResultCache` shared over a socket.

:class:`CacheServer` speaks ``repro-cache/v1`` (specified in
``docs/remote-cache.md``): newline-delimited JSON request/response frames
over a Unix or TCP socket, exactly the framing the matching daemon uses —
one JSON object per line, every response carrying ``ok`` and
``protocol``, errors never closing the connection.  The server is a thin
shell around any existing :class:`~repro.service.cache.ResultCache`
(LRU, disk, tiered): ``get``/``put``/``get_many`` go straight through
the cache's public surface, so the backing tier's
:class:`~repro.service.cache.CacheStats` counts every remote lookup and
the ``stats`` op reconciles with it exactly.

Security mirrors the daemon: the shared-secret ``auth`` handshake
(constant-time comparison, per-connection flag), with ``ping`` and
``auth`` the only unauthenticated ops, and a refusal to bind a
non-loopback TCP address without a token unless ``insecure`` opts out
explicitly.
"""

from __future__ import annotations

import hmac
import json
import os
import socket
import threading
import time
from pathlib import Path

from repro.exceptions import DaemonError
from repro.service.cache import ResultCache
from repro.service.daemon import _is_loopback

__all__ = ["CACHE_PROTOCOL_VERSION", "CacheServer"]

#: Wire-protocol version stamped on every response frame.
CACHE_PROTOCOL_VERSION = "repro-cache/v1"

#: Upper bound on one ``get_many`` batch; a larger request is an error
#: frame, bounding the response a single frame must carry.
GET_MANY_LIMIT = 4096


class CacheServer:
    """A socket server exposing one result cache to many clients.

    Args:
        cache: the backing :class:`~repro.service.cache.ResultCache`;
            every remote ``get``/``put`` lands on its public surface, so
            its stats and metrics count network traffic like local
            traffic.
        socket_path: serve on a Unix socket at this path...
        host, port: ...or on TCP (``port=0`` picks a free port; the
            bound address is :attr:`address`).  Exactly one transport.
        auth_token: shared secret clients must present via the ``auth``
            op before any cache operation.  Required for a non-loopback
            TCP bind (the server refuses to start without one unless
            ``insecure`` is set); optional elsewhere.
        insecure: allow a non-loopback TCP bind with no auth token — an
            explicit opt-out for trusted networks, never the default.
    """

    def __init__(
        self,
        cache: ResultCache,
        *,
        socket_path: str | Path | None = None,
        host: str | None = None,
        port: int | None = None,
        auth_token: str | None = None,
        insecure: bool = False,
    ) -> None:
        if cache is None:
            raise DaemonError("a cache server needs a backing cache")
        if (socket_path is None) == (host is None):
            raise DaemonError(
                "choose exactly one transport: socket_path=... or host=/port="
            )
        if host is not None and port is None:
            raise DaemonError("a TCP cache server needs a port (0 picks one)")
        self._cache = cache
        self._socket_path = Path(socket_path) if socket_path is not None else None
        self._host = host
        self._port = port
        self._auth_token = auth_token
        self._insecure = insecure
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._started_at: float | None = None

    # -- lifecycle -------------------------------------------------------------
    @property
    def address(self) -> str:
        """The bound address: ``unix:<path>`` or ``tcp:<host>:<port>``."""
        if self._socket_path is not None:
            return f"unix:{self._socket_path}"
        return f"tcp:{self._host}:{self._port}"

    @property
    def cache(self) -> ResultCache:
        """The backing cache the server fronts."""
        return self._cache

    def start(self) -> None:
        """Bind the socket and start the accept thread."""
        if self._listener is not None:
            raise DaemonError("cache server already started")
        if (
            self._host is not None
            and not _is_loopback(self._host)
            and self._auth_token is None
            and not self._insecure
        ):
            raise DaemonError(
                f"refusing to serve on non-loopback address {self._host!r} "
                "without an auth token; pass auth_token=... "
                "(repro cache-server --auth-token-file) or insecure=True "
                "(--insecure) to opt out explicitly"
            )
        if self._socket_path is not None:
            if self._socket_path.exists():
                # A stale socket file (previous server died) is safe to
                # unlink and bind over; a live one is not — hijacking a
                # serving cache's address would split the pool in two.
                probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                try:
                    probe.settimeout(1.0)
                    probe.connect(str(self._socket_path))
                except OSError:
                    self._socket_path.unlink()
                else:
                    raise DaemonError(
                        f"a cache server is already serving on {self._socket_path}"
                    )
                finally:
                    probe.close()
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(str(self._socket_path))
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
            self._port = listener.getsockname()[1]
        listener.listen()
        listener.settimeout(0.2)
        self._listener = listener
        self._started_at = time.monotonic()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-cache-accept", daemon=True
        )
        self._accept_thread.start()

    def serve_forever(self) -> None:
        """Start (if needed) and block until the server is stopped."""
        if self._listener is None:
            self.start()
        try:
            self._stopped.wait()
        except KeyboardInterrupt:
            self.stop()

    def stop(self) -> None:
        """Shut down: close the listener and every live connection.

        Safe to call from a client-handler thread (the ``shutdown`` op
        does) and idempotent.  The backing cache is untouched — a disk
        tier keeps every entry for the next server.
        """
        if self._stopping.is_set():
            self._stopped.wait()
            return
        self._stopping.set()
        if self._accept_thread is not None:
            self._accept_thread.join()
        if self._listener is not None:
            self._listener.close()
        if self._socket_path is not None and self._socket_path.exists():
            self._socket_path.unlink()
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            connection.close()
        self._stopped.set()

    # -- socket plumbing -------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._connections_lock:
                self._connections.add(connection)
            threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="repro-cache-client",
                daemon=True,
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        reader = connection.makefile("r", encoding="utf-8")
        writer = connection.makefile("w", encoding="utf-8")
        # Connections start authenticated only when no token is
        # configured; the `auth` op upgrades the flag for this connection
        # alone (it rides the dispatch return value, so the handler
        # thread owns it without any shared state).
        authenticated = self._auth_token is None
        try:
            while not self._stopping.is_set():
                line = reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    frame = json.loads(line)
                    if not isinstance(frame, dict):
                        raise ValueError("frame must be a JSON object")
                except ValueError as error:
                    self._send(writer, self._error(f"malformed frame: {error}"))
                    continue
                keep_open, authenticated = self._dispatch(
                    frame, writer, authenticated
                )
                if not keep_open:
                    break
        except OSError:
            # Client went away mid-write (or the server is closing the
            # socket under us); nothing to clean up beyond the handles.
            pass
        finally:
            with self._connections_lock:
                self._connections.discard(connection)
            for handle in (reader, writer, connection):
                try:
                    handle.close()
                except OSError:
                    pass

    @staticmethod
    def _send(writer, frame: dict) -> None:
        writer.write(json.dumps(frame) + "\n")
        writer.flush()

    @staticmethod
    def _error(message: str) -> dict:
        return {"ok": False, "protocol": CACHE_PROTOCOL_VERSION, "error": message}

    def _ok(self, **fields) -> dict:
        frame = {"ok": True, "protocol": CACHE_PROTOCOL_VERSION}
        frame.update(fields)
        return frame

    def _dispatch(
        self, frame: dict, writer, authenticated: bool = True
    ) -> tuple[bool, bool]:
        """Handle one request frame.

        Returns ``(keep_open, authenticated)``: the first element is
        False to close the connection, the second carries the
        connection's (possibly just upgraded) auth state back to the
        read loop.
        """
        op = frame.get("op")
        if op == "ping":
            # Liveness stays unauthenticated: health probes and the
            # version handshake must work before the token exchange.
            self._send(writer, self._ok(op="ping", pid=os.getpid()))
            return True, authenticated
        if op == "auth":
            response, authenticated = self._handle_auth(frame, authenticated)
            self._send(writer, response)
            return True, authenticated
        if not authenticated:
            self._send(
                writer,
                self._error(
                    "authentication required: send "
                    '{"op": "auth", "token": ...} first'
                ),
            )
            return True, authenticated
        if op == "get":
            self._send(writer, self._handle_get(frame))
            return True, authenticated
        if op == "put":
            self._send(writer, self._handle_put(frame))
            return True, authenticated
        if op == "get_many":
            self._send(writer, self._handle_get_many(frame))
            return True, authenticated
        if op == "stats":
            self._send(writer, self._handle_stats())
            return True, authenticated
        if op == "shutdown":
            self._send(writer, self._ok(op="shutdown", shutting_down=True))
            # Stop from a fresh thread: stop() joins the accept thread
            # and closes handler sockets, and this handler must first
            # return so its own connection can be torn down.
            threading.Thread(
                target=self.stop, name="repro-cache-shutdown", daemon=True
            ).start()
            return False, authenticated
        self._send(writer, self._error(f"unknown op {op!r}"))
        return True, authenticated

    def _handle_auth(
        self, frame: dict, authenticated: bool
    ) -> tuple[dict, bool]:
        """The shared-secret handshake; constant-time token comparison."""
        if self._auth_token is None:
            return self._ok(op="auth", authenticated=True), True
        token = frame.get("token")
        if not isinstance(token, str):
            return self._error("auth needs a string 'token'"), authenticated
        if not hmac.compare_digest(
            token.encode("utf-8"), self._auth_token.encode("utf-8")
        ):
            # An error frame, not a hang-up: the protocol promise that
            # errors never close the connection holds for auth too.
            return self._error("auth failed: bad token"), authenticated
        return self._ok(op="auth", authenticated=True), True

    # -- ops -------------------------------------------------------------------
    def _handle_get(self, frame: dict) -> dict:
        key = frame.get("key")
        if not isinstance(key, str):
            return self._error("get needs a string 'key'")
        record = self._cache.get(key)
        return self._ok(op="get", key=key, record=record)

    def _handle_put(self, frame: dict) -> dict:
        key = frame.get("key")
        if not isinstance(key, str):
            return self._error("put needs a string 'key'")
        record = frame.get("record")
        if not isinstance(record, dict):
            return self._error("put needs an object 'record'")
        self._cache.put(key, record)
        return self._ok(op="put", key=key, stored=True)

    def _handle_get_many(self, frame: dict) -> dict:
        keys = frame.get("keys")
        if not isinstance(keys, list) or not all(
            isinstance(key, str) for key in keys
        ):
            return self._error("get_many needs a list of string 'keys'")
        if len(keys) > GET_MANY_LIMIT:
            return self._error(
                f"get_many is capped at {GET_MANY_LIMIT} keys per request; "
                f"got {len(keys)}"
            )
        # One cache.get per key, so the backing CacheStats counts every
        # batched probe exactly like a single-key lookup would — the
        # `stats` op reconciles with hits+misses no matter the batching.
        records = {}
        for key in keys:
            record = self._cache.get(key)
            if record is not None:
                records[key] = record
        return self._ok(op="get_many", records=records, misses=len(keys) - len(records))

    def _handle_stats(self) -> dict:
        # The exact CacheStats.as_dict shape the daemon's own stats op
        # reports for its cache, plus the entry count — the remote and
        # local views of one pool reconcile field by field.
        return self._ok(
            op="stats",
            uptime=time.monotonic() - self._started_at,
            cache={**self._cache.stats.as_dict(), "size": len(self._cache)},
        )
