"""The client-side remote tier: a :class:`ResultCache` over the wire.

:class:`RemoteCache` makes a ``repro-cache/v1`` server look like any
other cache tier, so it slots straight into the
:class:`~repro.service.cache.TieredCache` stack (local fast tier in
front, remote authoritative tier behind): a local miss falls through to
the server, a hit is promoted into the local tier, and every store is
written through.

Three mechanisms keep the network off the per-pair hot path:

* **Batched prefetch** — :meth:`prefetch` resolves a whole batch of keys
  in one ``get_many`` round trip; hits land in an internal buffer the
  following ``get`` calls consume, misses land in the negative set.  One
  round trip per run, not one per pair.
* **A bounded negative set** — keys the server answered "miss" for are
  remembered (LRU, bounded), so repeated misses never re-ask the
  network.  A ``put`` through this cache clears the key's negative
  entry, and remote stores by *other* workers become visible once the
  key ages out or the process restarts — staleness only ever delays a
  hit, never serves a wrong one.
* **Graceful degradation** — a wire failure is counted
  (``repro_cachenet_errors``), retried once on a fresh connection
  (``repro_cachenet_reconnects_total``), and past that the cache flips
  to a local no-op: every ``get`` misses, every ``put`` is dropped, and
  the run continues on its local tiers alone.  A dead cache server can
  never fail a run.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cachenet.server import GET_MANY_LIMIT
from repro.exceptions import DaemonError
from repro.service.cache import ResultCache
from repro.service.daemon import DaemonClient

__all__ = ["RemoteCache"]

#: Default bound on the in-process negative set (and prefetch buffer).
NEGATIVE_SET_LIMIT = 4096

#: Default socket timeout for cache requests, in seconds.  Deliberately
#: short: a hung cache server must degrade, not stall the run.
DEFAULT_TIMEOUT_S = 5.0


class RemoteCache(ResultCache):
    """A cache tier served by a remote ``repro-cache/v1`` server.

    Args:
        client: a :class:`~repro.service.daemon.DaemonClient` aimed at
            the cache server (the two protocols share framing, auth
            handshake and error model, so the daemon client drives both).
        negative_limit: bound on remembered misses (and buffered
            prefetch hits); the oldest entries age out first.
    """

    metrics_tier = "remote"

    def __init__(
        self, client: DaemonClient, *, negative_limit: int = NEGATIVE_SET_LIMIT
    ) -> None:
        super().__init__()
        if negative_limit <= 0:
            raise ValueError(
                f"negative_limit must be positive, got {negative_limit}"
            )
        self._client = client
        self._negative_limit = negative_limit
        self._negative: OrderedDict[str, None] = OrderedDict()
        self._buffer: OrderedDict[str, dict] = OrderedDict()
        self._degraded = False
        self._errors = 0
        self._reconnects = 0

    @classmethod
    def from_address(
        cls,
        address: str,
        *,
        auth_token: str | None = None,
        timeout: float = DEFAULT_TIMEOUT_S,
        negative_limit: int = NEGATIVE_SET_LIMIT,
    ) -> "RemoteCache":
        """Build a remote tier from ``unix:<path>`` / ``tcp:<host>:<port>``.

        Only the address is validated here; the connection opens lazily
        on the first request, so an unreachable server constructs fine
        and simply degrades on first use.
        """
        client = DaemonClient.from_address(
            address, timeout=timeout, auth_token=auth_token
        )
        return cls(client, negative_limit=negative_limit)

    # -- health ----------------------------------------------------------------
    @property
    def address(self) -> str:
        """The cache server's address."""
        return self._client.address

    @property
    def degraded(self) -> bool:
        """Whether the tier gave up on the server and went local-only."""
        with self._lock:
            return self._degraded

    @property
    def errors(self) -> int:
        """Wire failures seen so far (also ``repro_cachenet_errors``)."""
        with self._lock:
            return self._errors

    def close(self) -> None:
        """Drop the connection (reopened lazily unless degraded)."""
        self._client.close()

    # -- wire ------------------------------------------------------------------
    def _count(self, name: str, **labels) -> None:
        """Mirror a cachenet counter into the bound metrics registry."""
        if self._metrics is not None:
            self._metrics.counter(name).inc(**labels)

    def _request(self, frame: dict) -> dict | None:
        """One request with single-reconnect retry; ``None`` once degraded.

        Called with the cache lock held (all callers are ``_get``/``_put``
        hooks or :meth:`prefetch`), so the degradation flip and the error
        counters stay consistent with the stats the same lock guards.
        """
        if self._degraded:
            return None
        try:
            response = self._client.request(frame)
        except DaemonError:
            # Covers connection loss, timeouts and server error frames
            # alike: whatever went wrong, the answer is "no cache today",
            # never a failed run.
            self._errors += 1
            self._count("repro_cachenet_errors")
            self._client.close()
            try:
                self._reconnects += 1
                self._count("repro_cachenet_reconnects_total")
                response = self._client.request(frame)
            except DaemonError:
                self._errors += 1
                self._count("repro_cachenet_errors")
                self._degraded = True
                self._client.close()
                return None
        self._count("repro_cachenet_requests_total", op=frame["op"])
        return response

    # -- bounded key sets ------------------------------------------------------
    def _note_negative(self, key: str) -> None:
        self._negative[key] = None
        self._negative.move_to_end(key)
        while len(self._negative) > self._negative_limit:
            self._negative.popitem(last=False)

    def _note_buffered(self, key: str, record: dict) -> None:
        self._buffer[key] = record
        self._buffer.move_to_end(key)
        while len(self._buffer) > self._negative_limit:
            self._buffer.popitem(last=False)

    # -- ResultCache hooks (run with the lock held) ----------------------------
    def _get(self, key: str) -> dict | None:
        record = self._buffer.pop(key, None)
        if record is not None:
            return record
        if key in self._negative:
            # A remembered miss: answered locally, zero round trips.
            return None
        response = self._request({"op": "get", "key": key})
        if response is None:
            return None
        record = response.get("record")
        if isinstance(record, dict):
            return record
        self._note_negative(key)
        return None

    def _put(self, key: str, record: dict) -> None:
        # Write-through; the key stops being a known miss either way, so
        # a degraded put never shadows a later (reconnected) lookup.
        self._negative.pop(key, None)
        self._buffer.pop(key, None)
        self._request({"op": "put", "key": key, "record": record})

    def prefetch(self, keys) -> None:
        """Resolve a batch of keys in one ``get_many`` round trip.

        Hits are buffered for the ``get`` calls that follow; misses join
        the negative set.  Neither touches the hit/miss stats — the
        lookups are counted when ``get`` consumes them, so batched and
        unbatched runs report identical counters.
        """
        with self._lock:
            wanted: list[str] = []
            for key in keys:
                if (
                    key not in self._buffer
                    and key not in self._negative
                    and key not in wanted
                ):
                    wanted.append(key)
            for start in range(0, len(wanted), GET_MANY_LIMIT):
                chunk = wanted[start:start + GET_MANY_LIMIT]
                response = self._request({"op": "get_many", "keys": chunk})
                if response is None:
                    return
                records = response.get("records")
                if not isinstance(records, dict):
                    return
                for key in chunk:
                    record = records.get(key)
                    if isinstance(record, dict):
                        self._note_buffered(key, record)
                    else:
                        self._note_negative(key)

    def __len__(self) -> int:
        """The server's entry count (0 once degraded or unreachable)."""
        with self._lock:
            response = self._request({"op": "stats"})
        if response is None:
            return 0
        cache = response.get("cache")
        size = cache.get("size") if isinstance(cache, dict) else None
        return size if isinstance(size, int) else 0
