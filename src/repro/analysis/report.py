"""Plain-text rendering of experiment tables and series.

The benchmark harness prints its paper-vs-measured comparisons with these
helpers so EXPERIMENTS.md and the pytest ``-s`` output share one format.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    columns = len(headers)
    cells = [[str(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != columns:
            raise ValueError("row length does not match the header length")
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def render_row(row: Sequence[str]) -> str:
        return " | ".join(value.ljust(widths[index]) for index, value in enumerate(row))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def format_series(
    series: Mapping[object, object], name: str = "value", key: str = "n"
) -> str:
    """Render a one-dimensional series (e.g. queries vs n) as two columns."""
    rows = [(k, v) for k, v in series.items()]
    return format_table([key, name], rows)
