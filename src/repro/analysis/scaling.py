"""Scaling fits: which asymptotic model explains the measured query counts?

The benchmark harness measures oracle-query counts at a sweep of bit widths
``n`` and wants to report whether the growth matches the bound claimed in
Table 1.  Each candidate model is a single-parameter family
``queries ~ scale * g(n)``; the best scale is the least-squares solution and
models are compared by residual error on a normalised scale.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

__all__ = ["MODELS", "FitResult", "fit_model", "best_fit"]

#: Candidate growth models, keyed by the label used in reports.
MODELS: dict[str, Callable[[float], float]] = {
    "constant": lambda n: 1.0,
    "log n": lambda n: math.log2(max(n, 2.0)),
    "n": lambda n: float(n),
    "n log n": lambda n: n * math.log2(max(n, 2.0)),
    "n^2": lambda n: float(n) ** 2,
    "2^(n/2)": lambda n: 2.0 ** (n / 2.0),
    "2^n": lambda n: 2.0**n,
}


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting one growth model to a measurement series.

    Attributes:
        model: the model label (a key of :data:`MODELS`).
        scale: the fitted multiplicative constant.
        relative_error: root-mean-square of the relative residuals
            ``(measured - predicted) / measured``.
    """

    model: str
    scale: float
    relative_error: float

    def predict(self, n: float) -> float:
        """The fitted prediction at bit width ``n``."""
        return self.scale * MODELS[self.model](n)


def fit_model(
    sizes: Sequence[float], measurements: Sequence[float], model: str
) -> FitResult:
    """Least-squares fit of ``measurements ~ scale * model(sizes)``."""
    if model not in MODELS:
        raise ValueError(f"unknown model {model!r}; choose from {sorted(MODELS)}")
    if len(sizes) != len(measurements) or not sizes:
        raise ValueError("sizes and measurements must be equal-length and non-empty")
    g = MODELS[model]
    basis = [g(n) for n in sizes]
    denominator = sum(value * value for value in basis)
    if denominator == 0.0:
        raise ValueError("degenerate model basis")
    scale = sum(b * y for b, y in zip(basis, measurements)) / denominator
    residuals = []
    for b, y in zip(basis, measurements):
        predicted = scale * b
        reference = y if y != 0 else 1.0
        residuals.append(((y - predicted) / reference) ** 2)
    return FitResult(model, scale, math.sqrt(sum(residuals) / len(residuals)))


def best_fit(
    sizes: Sequence[float],
    measurements: Sequence[float],
    candidates: Sequence[str] | None = None,
) -> FitResult:
    """The candidate model with the smallest relative residual error."""
    if candidates is None:
        candidates = list(MODELS)
    fits = [fit_model(sizes, measurements, model) for model in candidates]
    return min(fits, key=lambda fit: fit.relative_error)
