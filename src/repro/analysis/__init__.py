"""Analysis helpers for the benchmark harness.

* :mod:`repro.analysis.scaling` — least-squares fits of measured query
  counts against the asymptotic models the paper claims (constant, log n,
  n, n log n, n^2, 2^{n/2}, 2^n) and model selection between them.
* :mod:`repro.analysis.report` — plain-text table/series rendering used by
  the benchmarks and EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.analysis.report import format_series, format_table
from repro.analysis.scaling import (
    MODELS,
    FitResult,
    best_fit,
    fit_model,
)

__all__ = [
    "MODELS",
    "FitResult",
    "fit_model",
    "best_fit",
    "format_table",
    "format_series",
]
