"""repro — reproduction of "Boolean Matching Reversible Circuits" (DAC 2024).

The package is organised around the paper's structure:

* :mod:`repro.circuits` — the reversible-circuit substrate (MCT gates,
  circuits, permutations, negation/permutation transform circuits, random
  generators, a benchmark-function library and RevLib/OpenQASM I/O).
* :mod:`repro.quantum` — a dense state-vector simulator with the swap test
  of Fig. 3, used by the quantum matching algorithms.
* :mod:`repro.oracles` — the black-box oracle/query-count model in which all
  complexities of Table 1 are stated.
* :mod:`repro.sat` — CNF data structures, a DPLL solver and UNIQUE-SAT
  instance generation, used by the hardness reductions of Section 5.
* :mod:`repro.synthesis` — transformation-based reversible synthesis, used to
  build circuits from permutations and for the template-matching application.
* :mod:`repro.core` — the paper's contribution: Boolean matchers for every
  tractable equivalence class (Section 4), the equivalence lattice of Fig. 1,
  and the UNIQUE-SAT hardness reductions of Section 5.
* :mod:`repro.baselines` — brute-force and classical collision-search
  baselines against which the paper's algorithms are compared.
* :mod:`repro.service` — the throughput layer: result caching keyed by
  oracle fingerprints, serial/parallel execution backends, corpus
  generation and the resumable :class:`~repro.service.MatchingService`
  pipeline.
* :mod:`repro.analysis` — scaling fits and report rendering for the
  benchmark harness.

Quick start::

    from repro import circuits, core

    c2 = circuits.library.hidden_weighted_bit(4)
    nu = [True, False, True, False]
    c1 = circuits.transforms.apply_input_negation(c2, nu)

    result = core.match(c1, c2, core.EquivalenceType.N_I)
    assert list(result.nu_x) == nu
"""

from __future__ import annotations

from repro import (
    analysis,
    baselines,
    circuits,
    core,
    oracles,
    quantum,
    sat,
    service,
    synthesis,
)
from repro.core import (
    BatchReport,
    EquivalenceType,
    MatchingConfig,
    MatchingEngine,
    MatchingResult,
    match,
)
from repro.version import __version__

__all__ = [
    "analysis",
    "baselines",
    "circuits",
    "core",
    "oracles",
    "quantum",
    "sat",
    "service",
    "synthesis",
    "EquivalenceType",
    "MatchingResult",
    "MatchingEngine",
    "MatchingConfig",
    "BatchReport",
    "match",
    "__version__",
]
