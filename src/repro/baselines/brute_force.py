"""Brute-force Boolean matching by exhaustive witness search.

For any equivalence class X-Y, enumerate every witness tuple the class
allows (up to ``2**n`` negation masks and ``n!`` line permutations per
side), reconstruct ``C_pi_y C_nu_y C2 C_pi_x C_nu_x`` and compare it against
``C1`` on probe inputs.  This is the "exponential number of equivalence
checking rounds" the paper contrasts its algorithms with (Section 3), and
the only general approach for the UNIQUE-SAT-hard classes of Section 5.

The search is organised so the cheap per-candidate filter (a handful of
probe inputs) runs before the full functional check, and the number of
candidates actually examined is reported in the result metadata — that count
is what the baseline benchmarks plot against the polynomial matchers.
"""

from __future__ import annotations

import itertools
import random as _random
from collections.abc import Iterator, Sequence

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.line_permutation import LinePermutation
from repro.circuits.random import coerce_rng
from repro.circuits.transforms import transformed_circuit
from repro.core.equivalence import EquivalenceType, SideCondition
from repro.core.problem import MatchingResult
from repro.exceptions import MatchingError

__all__ = ["brute_force_match", "count_witness_space"]


def _negation_candidates(
    condition: SideCondition, num_lines: int
) -> Iterator[tuple[bool, ...] | None]:
    if not condition.allows_negation:
        yield None
        return
    for mask in range(1 << num_lines):
        yield tuple(bool((mask >> line) & 1) for line in range(num_lines))


def _permutation_candidates(
    condition: SideCondition, num_lines: int
) -> Iterator[LinePermutation | None]:
    if not condition.allows_permutation:
        yield None
        return
    for ordering in itertools.permutations(range(num_lines)):
        yield LinePermutation(list(ordering))


def count_witness_space(equivalence: EquivalenceType, num_lines: int) -> int:
    """Size of the witness space the brute-force search enumerates."""

    def side(condition: SideCondition) -> int:
        size = 1
        if condition.allows_negation:
            size *= 1 << num_lines
        if condition.allows_permutation:
            import math

            size *= math.factorial(num_lines)
        return size

    return side(equivalence.input_condition) * side(equivalence.output_condition)


def brute_force_match(
    c1: ReversibleCircuit,
    c2: ReversibleCircuit,
    equivalence: EquivalenceType,
    probe_inputs: Sequence[int] | None = None,
    exhaustive_check: bool = True,
    rng: _random.Random | int | None = None,
    max_candidates: int | None = None,
) -> MatchingResult:
    """Exhaustively search for witnesses of an X-Y equivalence.

    Args:
        c1, c2: the circuits (white boxes — the brute force needs to rebuild
            and simulate the candidate reconstructions).
        equivalence: the class whose witness space is enumerated.
        probe_inputs: inputs used for the cheap pre-filter; defaults to a
            small random sample plus the all-zero input.
        exhaustive_check: confirm surviving candidates on all ``2**n``
            inputs (recommended; disable only for scaling experiments).
        rng: randomness for the default probe inputs.
        max_candidates: abort (raising :class:`MatchingError`) after this
            many candidates — used by the scaling benchmarks to bound work.

    Returns:
        The first verified witness, with ``metadata["candidates_tried"]``
        recording the search effort.

    Raises:
        MatchingError: when no witness exists (the circuits are not X-Y
            equivalent) or the candidate budget is exhausted.
    """
    if c1.num_lines != c2.num_lines:
        raise MatchingError("circuits must have the same number of lines")
    num_lines = c1.num_lines
    rng = coerce_rng(rng)
    if probe_inputs is None:
        probe_count = min(8, 1 << num_lines)
        probe_inputs = [0] + [
            rng.getrandbits(num_lines) for _ in range(probe_count - 1)
        ]
    probe_expected = [c1.simulate(probe) for probe in probe_inputs]

    candidates_tried = 0
    for nu_x in _negation_candidates(equivalence.input_condition, num_lines):
        for pi_x in _permutation_candidates(equivalence.input_condition, num_lines):
            for nu_y in _negation_candidates(
                equivalence.output_condition, num_lines
            ):
                for pi_y in _permutation_candidates(
                    equivalence.output_condition, num_lines
                ):
                    candidates_tried += 1
                    if (
                        max_candidates is not None
                        and candidates_tried > max_candidates
                    ):
                        raise MatchingError(
                            f"brute force exceeded {max_candidates} candidates"
                        )
                    candidate = transformed_circuit(
                        c2, nu_x=nu_x, pi_x=pi_x, nu_y=nu_y, pi_y=pi_y
                    )
                    if any(
                        candidate.simulate(probe) != expected
                        for probe, expected in zip(probe_inputs, probe_expected)
                    ):
                        continue
                    if exhaustive_check and not candidate.functionally_equal(c1):
                        continue
                    return MatchingResult(
                        equivalence,
                        nu_x=nu_x,
                        pi_x=pi_x,
                        nu_y=nu_y,
                        pi_y=pi_y,
                        queries=candidates_tried * len(probe_inputs),
                        metadata={
                            "regime": "brute-force",
                            "candidates_tried": candidates_tried,
                            "witness_space": count_witness_space(
                                equivalence, num_lines
                            ),
                        },
                    )
    raise MatchingError(
        f"no {equivalence.label} witness exists for the given circuits"
    )
