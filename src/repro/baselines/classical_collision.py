"""Classical collision search for N-I matching without inverse access.

Theorem 1 shows that without inverse circuits any classical algorithm for
N-I matching needs ``Omega(2^{n/2})`` oracle queries: the only way to learn
anything about the hidden negation is to observe the *same* output pattern
from both circuits, and finding such a collision by (random) probing is a
birthday problem.

This module implements the natural matching upper bound: query ``C1`` on one
reference input, then query ``C2`` on random inputs until its output equals
``C1``'s; the XOR of the two inputs is the negation mask.  The expected
query count is ``Theta(2^n)`` for this single-reference variant and
``Theta(2^{n/2})`` for the two-sided birthday variant, both exponential —
the quantity the Theorem 1 benchmark plots against Algorithm 1's linear
quantum cost.
"""

from __future__ import annotations

import random as _random

from repro.bits import int_to_bits
from repro.circuits.random import coerce_rng
from repro.core.equivalence import EquivalenceType
from repro.core.matchers._sequences import QuerySnapshot
from repro.core.problem import MatchingResult
from repro.exceptions import MatchingError
from repro.oracles.oracle import as_oracle

__all__ = ["match_n_i_collision"]


def match_n_i_collision(
    circuit1,
    circuit2,
    rng: _random.Random | int | None = None,
    max_queries: int | None = None,
    two_sided: bool = True,
) -> MatchingResult:
    """Find ``nu`` with ``C1 = C2 C_nu`` by classical collision search.

    Args:
        circuit1, circuit2: circuits or (inverse-less) oracles promised to be
            N-I equivalent.
        rng: randomness source.
        max_queries: optional bound on total queries; exceeding it raises
            :class:`MatchingError` (the benchmarks use this to cap runtime).
        two_sided: use the birthday-style two-sided search (expected
            ``Theta(2^{n/2})`` queries); when False, a single reference query
            to ``C1`` is used and only ``C2`` is probed (expected
            ``Theta(2^n)`` queries).

    Returns:
        A result whose ``nu_x`` is the negation mask and whose ``queries``
        field exhibits the exponential scaling of Theorem 1.
    """
    oracle1 = as_oracle(circuit1)
    oracle2 = as_oracle(circuit2)
    snapshot = QuerySnapshot(oracle1, oracle2)
    num_lines = oracle1.num_lines
    rng = coerce_rng(rng)

    def finish(input1: int, input2: int) -> MatchingResult:
        mask = input1 ^ input2
        nu_x = tuple(bool(bit) for bit in int_to_bits(mask, num_lines))
        return MatchingResult(
            EquivalenceType.N_I,
            nu_x=nu_x,
            queries=snapshot.queries,
            metadata={"regime": "classical-collision", "two_sided": two_sided},
        )

    if not two_sided:
        reference_input = rng.getrandbits(num_lines)
        reference_output = oracle1.query(reference_input)
        while True:
            if max_queries is not None and snapshot.queries >= max_queries:
                raise MatchingError(
                    f"collision search exceeded {max_queries} queries"
                )
            probe = rng.getrandbits(num_lines)
            if oracle2.query(probe) == reference_output:
                # C1(r) = C2(r XOR mask) and we found probe with the same
                # output, so probe = r XOR mask.
                return finish(reference_input, probe)

    seen1: dict[int, int] = {}
    seen2: dict[int, int] = {}
    while True:
        if max_queries is not None and snapshot.queries >= max_queries:
            raise MatchingError(f"collision search exceeded {max_queries} queries")
        probe1 = rng.getrandbits(num_lines)
        output1 = oracle1.query(probe1)
        if output1 in seen2:
            return finish(probe1, seen2[output1])
        seen1[output1] = probe1

        probe2 = rng.getrandbits(num_lines)
        output2 = oracle2.query(probe2)
        if output2 in seen1:
            return finish(seen1[output2], probe2)
        seen2[output2] = probe2
