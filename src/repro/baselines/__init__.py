"""Baselines the paper's algorithms are compared against.

* :mod:`repro.baselines.brute_force` — exhaustive search over negation masks
  and/or line permutations for any equivalence class; exponential, but the
  only generally applicable approach for the UNIQUE-SAT-hard classes.
* :mod:`repro.baselines.classical_collision` — the classical randomised
  collision search for N-I matching without inverse access, whose
  ``Omega(2^{n/2})`` query cost (Theorem 1) is the counterpart of
  Algorithm 1's exponential quantum speedup.
"""

from __future__ import annotations

from repro.baselines.brute_force import brute_force_match
from repro.baselines.classical_collision import match_n_i_collision

__all__ = ["brute_force_match", "match_n_i_collision"]
