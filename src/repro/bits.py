"""Bit-vector helpers shared across the package.

Reversible circuits operate on length-``n`` bit vectors.  Throughout the
package a bit vector is represented in one of two interchangeable forms:

* as a Python ``int`` whose bit ``i`` (least-significant bit = bit 0) holds
  the value of circuit line ``i``;
* as a sequence of ``n`` ints/bools, index ``i`` holding line ``i``.

The integer form is what the simulator uses internally (it makes a truth
table a plain permutation of ``range(2**n)``); the list form is what users
and the paper's notation prefer.  The helpers here convert between the two
and provide the handful of bit tricks used in several modules.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = [
    "bit_get",
    "bit_set",
    "bit_flip",
    "bits_to_int",
    "int_to_bits",
    "popcount",
    "parity",
    "hamming_distance",
    "iter_bit_vectors",
    "one_hot",
    "mask_from_indices",
]


def bit_get(value: int, index: int) -> int:
    """Return bit ``index`` (0 = least significant) of ``value``."""
    return (value >> index) & 1


def bit_set(value: int, index: int, bit: int) -> int:
    """Return ``value`` with bit ``index`` forced to ``bit`` (0 or 1)."""
    if bit:
        return value | (1 << index)
    return value & ~(1 << index)


def bit_flip(value: int, index: int) -> int:
    """Return ``value`` with bit ``index`` toggled."""
    return value ^ (1 << index)


def bits_to_int(bits: Sequence[int]) -> int:
    """Pack a sequence of bits (index ``i`` = line ``i``) into an integer."""
    value = 0
    for index, bit in enumerate(bits):
        if bit not in (0, 1, True, False):
            raise ValueError(f"bit {index} is {bit!r}, expected 0 or 1")
        if bit:
            value |= 1 << index
    return value


def int_to_bits(value: int, width: int) -> list[int]:
    """Unpack ``value`` into a list of ``width`` bits, line 0 first."""
    if value < 0:
        raise ValueError("bit vectors are non-negative")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> index) & 1 for index in range(width)]


def popcount(value: int) -> int:
    """Number of set bits in ``value``."""
    return bin(value).count("1")


def parity(value: int) -> int:
    """Parity (XOR of all bits) of ``value``."""
    return popcount(value) & 1


def hamming_distance(a: int, b: int) -> int:
    """Number of bit positions in which ``a`` and ``b`` differ."""
    return popcount(a ^ b)


def iter_bit_vectors(width: int) -> Iterable[int]:
    """Iterate over all ``2**width`` bit vectors in integer form."""
    return range(1 << width)


def one_hot(index: int, width: int) -> int:
    """The bit vector with only line ``index`` set, of ``width`` lines."""
    if not 0 <= index < width:
        raise ValueError(f"index {index} out of range for width {width}")
    return 1 << index


def mask_from_indices(indices: Iterable[int]) -> int:
    """OR together one-hot masks for every index in ``indices``."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask
