"""Simon's algorithm on the state-vector simulator.

Footnote 2 of the paper mentions that, besides the swap-test Algorithm 1,
the authors developed further quantum matching algorithms "inspired by
Simon's algorithm" that were omitted for space.  This module supplies the
missing substrate so the repository can include such a matcher
(:func:`repro.core.matchers.n_i.match_n_i_simon`):

* :class:`XorQueryOracle` — the standard XOR query model
  ``|x>|y> -> |x>|y XOR f(x)>`` for an arbitrary function
  ``f : B^m -> B^k``, with query counting;
* :func:`simon_sample` — one round of Simon's circuit (Hadamards, oracle,
  Hadamards, measure the input register), returning a vector orthogonal to
  the hidden period;
* :func:`find_hidden_period` — repeat sampling and solve the GF(2) system
  until the period is pinned down.

The promise required of ``f`` is Simon's: either ``f`` is injective (period
0) or there is a non-zero ``s`` with ``f(x) = f(x')`` iff ``x' = x XOR s``.
"""

from __future__ import annotations

import random as _random
from collections.abc import Callable, Sequence

import numpy as np

from repro.circuits.random import coerce_rng
from repro.exceptions import QuantumError
from repro.quantum.gf2 import rank, solve_unique_nullspace_vector

__all__ = ["XorQueryOracle", "simon_sample", "find_hidden_period"]


class XorQueryOracle:
    """Quantum XOR-query access to a classical function ``f : B^m -> B^k``.

    The oracle acts on ``m + k`` qubits (input register = qubits
    ``0 .. m-1``, output register = qubits ``m .. m+k-1``) as the basis
    permutation ``|x>|y> -> |x>|y XOR f(x)>``.  The function is tabulated
    once at construction, so the per-query cost is a vectorised index
    permutation.
    """

    def __init__(
        self,
        function: Callable[[int], int] | Sequence[int],
        input_bits: int,
        output_bits: int,
        max_queries: int | None = None,
    ) -> None:
        if input_bits <= 0 or output_bits <= 0:
            raise QuantumError("registers need at least one qubit each")
        self._input_bits = input_bits
        self._output_bits = output_bits
        self._max_queries = max_queries
        self._queries = 0
        size = 1 << input_bits
        if callable(function):
            table = [function(value) for value in range(size)]
        else:
            table = list(function)
            if len(table) != size:
                raise QuantumError(
                    f"function table has {len(table)} entries, expected {size}"
                )
        limit = 1 << output_bits
        if any(not 0 <= value < limit for value in table):
            raise QuantumError("function value does not fit the output register")
        self._table = np.asarray(table, dtype=np.intp)

    @property
    def num_qubits(self) -> int:
        """Total register width ``m + k``."""
        return self._input_bits + self._output_bits

    @property
    def input_bits(self) -> int:
        """Input register width ``m``."""
        return self._input_bits

    @property
    def output_bits(self) -> int:
        """Output register width ``k``."""
        return self._output_bits

    @property
    def query_count(self) -> int:
        """Number of queries (quantum XOR queries plus classical probes)."""
        return self._queries

    def reset_counts(self) -> None:
        """Reset the query counter."""
        self._queries = 0

    def classical_query(self, value: int) -> int:
        """Evaluate ``f`` on a classical input (counted like any query)."""
        if not 0 <= value < (1 << self._input_bits):
            raise QuantumError(
                f"input {value} does not fit the {self._input_bits}-bit register"
            )
        if self._max_queries is not None and self._queries >= self._max_queries:
            raise QuantumError(f"query budget of {self._max_queries} exhausted")
        self._queries += 1
        return int(self._table[value])

    def query_vector(self, amplitudes: np.ndarray) -> np.ndarray:
        """Apply the XOR-query permutation to a raw amplitude vector."""
        expected = 1 << self.num_qubits
        if amplitudes.shape != (expected,):
            raise QuantumError(
                f"state has {amplitudes.shape[0]} amplitudes, expected {expected}"
            )
        if self._max_queries is not None and self._queries >= self._max_queries:
            raise QuantumError(f"query budget of {self._max_queries} exhausted")
        self._queries += 1
        indices = np.arange(expected, dtype=np.intp)
        input_part = indices & ((1 << self._input_bits) - 1)
        output_part = indices >> self._input_bits
        new_output = output_part ^ self._table[input_part]
        new_indices = input_part | (new_output << self._input_bits)
        result = np.empty_like(amplitudes)
        result[new_indices] = amplitudes
        return result


def _hadamard_on_input_register(amplitudes: np.ndarray, input_bits: int) -> np.ndarray:
    """Apply H to every qubit of the input register (vectorised)."""
    total_qubits = int(np.log2(amplitudes.shape[0]))
    # Reshape to [output, input] and apply the Walsh-Hadamard transform along
    # the input axis, qubit by qubit.
    output_dim = 1 << (total_qubits - input_bits)
    work = amplitudes.reshape(output_dim, 1 << input_bits).copy()
    for qubit in range(input_bits):
        mask = 1 << qubit
        indices = np.arange(1 << input_bits)
        low = indices[(indices & mask) == 0]
        high = low | mask
        a = work[:, low]
        b = work[:, high]
        work[:, low] = (a + b) / np.sqrt(2.0)
        work[:, high] = (a - b) / np.sqrt(2.0)
    return work.reshape(-1)


def simon_sample(
    oracle: XorQueryOracle, rng: _random.Random | int | None = None
) -> int:
    """One round of Simon's circuit: returns ``y`` with ``y . s = 0``."""
    rng = coerce_rng(rng)
    m = oracle.input_bits
    dimension = 1 << oracle.num_qubits
    amplitudes = np.zeros(dimension, dtype=complex)
    amplitudes[0] = 1.0
    amplitudes = _hadamard_on_input_register(amplitudes, m)
    amplitudes = oracle.query_vector(amplitudes)
    amplitudes = _hadamard_on_input_register(amplitudes, m)
    # Measure the input register: marginalise the output register.
    probabilities = (
        np.abs(amplitudes.reshape(-1, 1 << m)) ** 2
    ).sum(axis=0)
    probabilities = probabilities / probabilities.sum()
    outcomes = np.arange(1 << m)
    return int(rng.choices(outcomes.tolist(), weights=probabilities.tolist())[0])


def find_hidden_period(
    oracle: XorQueryOracle,
    rng: _random.Random | int | None = None,
    max_samples: int | None = None,
) -> int:
    """Recover Simon's hidden period ``s`` (0 for an injective function).

    Samples until the collected vectors have rank at least ``m - 1``.  Under
    the two-to-one promise the one-dimensional null space then contains
    exactly the hidden period; the candidate is confirmed with one classical
    collision check (``f(0) == f(s)``), which distinguishes it from the
    spurious candidate an injective function can transiently leave behind.

    Args:
        oracle: the XOR-query oracle of the promised function.
        rng: randomness for the measurements.
        max_samples: optional cap on Simon rounds (default ``8 * m + 32``).

    Raises:
        QuantumError: if the cap is exceeded (promise violated or extremely
            unlucky sampling).
    """
    rng = coerce_rng(rng)
    m = oracle.input_bits
    if max_samples is None:
        max_samples = 8 * m + 32
    rows: list[int] = []
    for _ in range(max_samples):
        sample = simon_sample(oracle, rng)
        if sample:
            rows.append(sample)
        if rank(rows, m) >= m - 1:
            candidate = solve_unique_nullspace_vector(rows, m)
            if candidate is None:
                # Rank m: only the zero vector is orthogonal to everything,
                # so the function is injective (period 0).
                return 0
            # One classical collision check certifies the candidate: a
            # two-to-one function must collide on (0, s); an injective one
            # cannot collide anywhere, so keep sampling until its rank
            # reaches m.
            if oracle.classical_query(0) == oracle.classical_query(candidate):
                return candidate
    raise QuantumError(
        f"Simon sampling did not converge within {max_samples} rounds"
    )
