"""Dense state vectors over ``n`` qubits.

A state of ``n`` qubits is stored as a complex numpy vector of length
``2**n``; the amplitude at index ``x`` belongs to the computational basis
state whose qubit ``i`` equals bit ``i`` of ``x`` — the same line/bit
convention the classical simulator uses, so a reversible circuit acts on a
:class:`Statevector` simply by permuting amplitude indices.

Only what the paper's algorithms need is implemented: product-state
preparation over the single-qubit alphabet ``{|0>, |1>, |+>, |->}``, inner
products, fidelity, normalisation checks and Born-rule sampling of a single
qubit.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import QuantumError

__all__ = [
    "ZERO",
    "ONE",
    "PLUS",
    "MINUS",
    "Statevector",
    "basis_state",
    "product_state",
]

#: Single-qubit state labels accepted by :func:`product_state`.
ZERO = "0"
ONE = "1"
PLUS = "+"
MINUS = "-"

_SINGLE_QUBIT_AMPLITUDES: dict[str, np.ndarray] = {
    ZERO: np.array([1.0, 0.0], dtype=complex),
    ONE: np.array([0.0, 1.0], dtype=complex),
    PLUS: np.array([1.0, 1.0], dtype=complex) / np.sqrt(2.0),
    MINUS: np.array([1.0, -1.0], dtype=complex) / np.sqrt(2.0),
}

_ATOL = 1e-9


class Statevector:
    """An ``n``-qubit pure state.

    Args:
        amplitudes: complex vector of length ``2**num_qubits``.
        num_qubits: number of qubits; inferred from the vector length when
            omitted.
        validate: check the length is a power of two and the norm is one.
    """

    def __init__(
        self,
        amplitudes: Sequence[complex] | np.ndarray,
        num_qubits: int | None = None,
        validate: bool = True,
    ) -> None:
        vector = np.asarray(amplitudes, dtype=complex)
        if vector.ndim != 1:
            raise QuantumError("amplitudes must form a one-dimensional vector")
        size = vector.shape[0]
        if num_qubits is None:
            num_qubits = int(size).bit_length() - 1
        if size != 1 << num_qubits:
            raise QuantumError(f"vector length {size} is not 2**{num_qubits}")
        if validate and not np.isclose(np.vdot(vector, vector).real, 1.0, atol=1e-6):
            raise QuantumError("state vector is not normalised")
        self._vector = vector
        self._num_qubits = num_qubits

    # -- structure -----------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Number of qubits ``n``."""
        return self._num_qubits

    @property
    def vector(self) -> np.ndarray:
        """The underlying amplitude vector (a copy is *not* made)."""
        return self._vector

    @property
    def dimension(self) -> int:
        """Hilbert-space dimension ``2**n``."""
        return self._vector.shape[0]

    def copy(self) -> "Statevector":
        """An independent copy of the state."""
        return Statevector(self._vector.copy(), self._num_qubits, validate=False)

    # -- algebra ---------------------------------------------------------------
    def inner_product(self, other: "Statevector") -> complex:
        """The inner product ``<self|other>``."""
        if other._num_qubits != self._num_qubits:
            raise QuantumError("inner product of states with different qubit counts")
        return complex(np.vdot(self._vector, other._vector))

    def fidelity(self, other: "Statevector") -> float:
        """``|<self|other>|**2``."""
        return float(abs(self.inner_product(other)) ** 2)

    def is_normalized(self, atol: float = 1e-6) -> bool:
        """Whether the state has unit norm."""
        return bool(np.isclose(np.vdot(self._vector, self._vector).real, 1.0, atol=atol))

    def tensor(self, other: "Statevector") -> "Statevector":
        """The tensor product ``self (x) other``.

        ``other``'s qubits are appended *after* ``self``'s, i.e. they occupy
        the higher bit positions of the joint index — consistent with the
        bit-per-line convention.
        """
        joint = np.zeros(self.dimension * other.dimension, dtype=complex)
        for high in range(other.dimension):
            block = other._vector[high] * self._vector
            joint[high * self.dimension : (high + 1) * self.dimension] = block
        return Statevector(
            joint, self._num_qubits + other._num_qubits, validate=False
        )

    def probability_of_qubit(self, qubit: int, outcome: int) -> float:
        """Born-rule probability that measuring ``qubit`` yields ``outcome``."""
        if not 0 <= qubit < self._num_qubits:
            raise QuantumError(f"qubit {qubit} out of range")
        indices = np.arange(self.dimension)
        mask = ((indices >> qubit) & 1) == (outcome & 1)
        return float(np.sum(np.abs(self._vector[mask]) ** 2))

    def probabilities(self) -> np.ndarray:
        """The full Born-rule distribution over computational basis states."""
        return np.abs(self._vector) ** 2

    # -- comparison --------------------------------------------------------------
    def equals(self, other: "Statevector", atol: float = _ATOL) -> bool:
        """Exact amplitude-wise equality up to ``atol`` (no global phase)."""
        if other._num_qubits != self._num_qubits:
            return False
        return bool(np.allclose(self._vector, other._vector, atol=atol))

    def equals_up_to_global_phase(
        self, other: "Statevector", atol: float = 1e-7
    ) -> bool:
        """Equality up to a global phase factor."""
        if other._num_qubits != self._num_qubits:
            return False
        overlap = self.inner_product(other)
        return bool(np.isclose(abs(overlap), 1.0, atol=atol))

    def __repr__(self) -> str:
        return f"<Statevector qubits={self._num_qubits}>"


def basis_state(value: int, num_qubits: int) -> Statevector:
    """The computational basis state ``|value>`` on ``num_qubits`` qubits."""
    if value < 0 or value >> num_qubits:
        raise QuantumError(f"basis label {value} does not fit in {num_qubits} qubits")
    vector = np.zeros(1 << num_qubits, dtype=complex)
    vector[value] = 1.0
    return Statevector(vector, num_qubits, validate=False)


def product_state(labels: Sequence[str]) -> Statevector:
    """A product state from per-qubit labels.

    ``labels[i]`` is the state of qubit ``i`` and must be one of ``"0"``,
    ``"1"``, ``"+"`` or ``"-"``.  This covers every input state the paper's
    algorithms prepare (e.g. ``|0>|+>...|+>`` in Algorithm 1 or the
    ``|+>/|->`` patterns of the NP-I matcher).
    """
    if not labels:
        raise QuantumError("a product state needs at least one qubit")
    num_qubits = len(labels)
    vector = np.ones(1, dtype=complex)
    # Qubit i occupies bit i of the amplitude index, so each new qubit's
    # amplitudes multiply in as the slow (outer) Kronecker factor.
    for label in labels:
        if label not in _SINGLE_QUBIT_AMPLITUDES:
            raise QuantumError(
                f"unknown single-qubit label {label!r}; expected one of 0, 1, +, -"
            )
        vector = np.kron(_SINGLE_QUBIT_AMPLITUDES[label], vector)
    return Statevector(vector, num_qubits, validate=False)
