"""Applying gates and circuits to state vectors.

A reversible circuit is a permutation of the computational basis, so its
action on a state vector is a permutation of amplitude indices — no matrix
is ever materialised.  Single-qubit X and Hadamard gates are provided as
well: X because the negation circuits ``C_nu`` are NOT layers, Hadamard
because the circuit-level swap-test validation needs it.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.permutation import Permutation
from repro.exceptions import QuantumError
from repro.quantum.statevector import Statevector

__all__ = [
    "apply_circuit",
    "apply_permutation",
    "apply_x",
    "apply_hadamard",
    "apply_controlled_swap",
]

_INV_SQRT2 = 1.0 / np.sqrt(2.0)


def apply_permutation(permutation: Permutation, state: Statevector) -> Statevector:
    """Apply a basis permutation to a state: ``new[f(x)] = old[x]``."""
    if permutation.num_bits != state.num_qubits:
        raise QuantumError(
            f"permutation acts on {permutation.num_bits} qubits, state has "
            f"{state.num_qubits}"
        )
    old = state.vector
    new = np.empty_like(old)
    new[np.asarray(permutation.mapping, dtype=np.intp)] = old
    return Statevector(new, state.num_qubits, validate=False)


def apply_circuit(circuit: ReversibleCircuit, state: Statevector) -> Statevector:
    """Run a reversible circuit on a state vector.

    The circuit is evaluated once per basis state (``2**n`` classical
    simulations) and the amplitudes are permuted accordingly.
    """
    if circuit.num_lines != state.num_qubits:
        raise QuantumError(
            f"circuit has {circuit.num_lines} lines, state has "
            f"{state.num_qubits} qubits"
        )
    old = state.vector
    new = np.empty_like(old)
    images = np.fromiter(
        (circuit.simulate(source) for source in range(old.shape[0])),
        dtype=np.intp,
        count=old.shape[0],
    )
    new[images] = old
    return Statevector(new, state.num_qubits, validate=False)


def apply_x(state: Statevector, qubit: int) -> Statevector:
    """Apply a Pauli-X (NOT) gate to one qubit."""
    if not 0 <= qubit < state.num_qubits:
        raise QuantumError(f"qubit {qubit} out of range")
    indices = np.arange(state.dimension)
    flipped = indices ^ (1 << qubit)
    new = state.vector[flipped]
    return Statevector(new.copy(), state.num_qubits, validate=False)


def apply_hadamard(state: Statevector, qubit: int) -> Statevector:
    """Apply a Hadamard gate to one qubit."""
    if not 0 <= qubit < state.num_qubits:
        raise QuantumError(f"qubit {qubit} out of range")
    old = state.vector
    new = np.empty_like(old)
    mask = 1 << qubit
    indices = np.arange(state.dimension)
    low = indices[(indices & mask) == 0]
    high = low | mask
    new[low] = _INV_SQRT2 * (old[low] + old[high])
    new[high] = _INV_SQRT2 * (old[low] - old[high])
    return Statevector(new, state.num_qubits, validate=False)


def apply_controlled_swap(
    state: Statevector, control: int, qubit_a: int, qubit_b: int
) -> Statevector:
    """Apply a Fredkin (controlled-swap) gate.

    Used by the explicit circuit-level swap-test construction; the analytic
    swap test never builds the joint state.
    """
    for qubit in (control, qubit_a, qubit_b):
        if not 0 <= qubit < state.num_qubits:
            raise QuantumError(f"qubit {qubit} out of range")
    if len({control, qubit_a, qubit_b}) != 3:
        raise QuantumError("controlled swap needs three distinct qubits")
    old = state.vector
    new = old.copy()
    indices = np.arange(state.dimension)
    control_on = (indices >> control) & 1 == 1
    bit_a = (indices >> qubit_a) & 1
    bit_b = (indices >> qubit_b) & 1
    to_swap = control_on & (bit_a != bit_b)
    swapped = indices ^ (1 << qubit_a) ^ (1 << qubit_b)
    new[swapped[to_swap]] = old[indices[to_swap]]
    return Statevector(new, state.num_qubits, validate=False)
