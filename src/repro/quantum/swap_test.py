"""The swap test (Fig. 3).

Given two ``n``-qubit states ``|psi1>`` and ``|psi2>``, the swap test
prepares an ancilla in ``|0>``, applies H, a controlled swap of the two
registers, H again, and measures the ancilla.  The outcome is

* ``0`` with probability ``1/2 + |<psi1|psi2>|**2 / 2``,
* ``1`` with probability ``1/2 - |<psi1|psi2>|**2 / 2``.

Identical states therefore always measure 0, orthogonal states measure 1
with probability exactly 1/2 — the two regimes Algorithm 1 and the NP-I
matcher distinguish.

Two implementations are provided:

* the default *analytic* path computes the overlap directly and samples the
  Born rule, which is exact and fast;
* the *circuit* path builds the full ``2n + 1``-qubit joint state and applies
  the Fig. 3 gates one by one, which is what a real device would do.  The
  test suite checks both paths produce identical outcome probabilities.
"""

from __future__ import annotations

import random as _random

from repro.exceptions import QuantumError
from repro.quantum.apply import apply_controlled_swap, apply_hadamard
from repro.quantum.statevector import Statevector, basis_state

__all__ = ["swap_test_probability", "swap_test_probability_via_circuit", "SwapTest"]


def swap_test_probability(state_a: Statevector, state_b: Statevector) -> float:
    """Probability of measuring 0 on the swap-test ancilla (analytic)."""
    if state_a.num_qubits != state_b.num_qubits:
        raise QuantumError("swap test requires states of equal qubit count")
    overlap = abs(state_a.inner_product(state_b)) ** 2
    return 0.5 + 0.5 * overlap


def swap_test_probability_via_circuit(
    state_a: Statevector, state_b: Statevector
) -> float:
    """Probability of measuring 0, computed by simulating the Fig. 3 circuit.

    The joint register layout is ``[psi1 (qubits 0..n-1)] [psi2 (n..2n-1)]
    [ancilla (2n)]``.  Exponential in ``2n``; used for validation only.
    """
    if state_a.num_qubits != state_b.num_qubits:
        raise QuantumError("swap test requires states of equal qubit count")
    num_qubits = state_a.num_qubits
    ancilla = 2 * num_qubits
    joint = state_a.tensor(state_b).tensor(basis_state(0, 1))
    joint = apply_hadamard(joint, ancilla)
    for qubit in range(num_qubits):
        joint = apply_controlled_swap(joint, ancilla, qubit, num_qubits + qubit)
    joint = apply_hadamard(joint, ancilla)
    return joint.probability_of_qubit(ancilla, 0)


class SwapTest:
    """A repeatable, seedable swap-test sampler.

    Args:
        rng: a :class:`random.Random`, an integer seed, or ``None``.
        use_circuit: compute outcome probabilities by simulating the explicit
            Fig. 3 circuit instead of analytically (slower; for validation).

    The sampler also counts how many swap tests were performed, which the
    matching algorithms report alongside oracle queries.
    """

    def __init__(
        self,
        rng: _random.Random | int | None = None,
        use_circuit: bool = False,
    ) -> None:
        if rng is None:
            rng = _random.Random()
        elif isinstance(rng, int):
            rng = _random.Random(rng)
        self._rng = rng
        self._use_circuit = use_circuit
        self._runs = 0

    @property
    def runs(self) -> int:
        """Number of swap tests sampled so far."""
        return self._runs

    def reset(self) -> None:
        """Reset the run counter."""
        self._runs = 0

    def probability_of_zero(
        self, state_a: Statevector, state_b: Statevector
    ) -> float:
        """The probability the ancilla measures 0 for these two states."""
        if self._use_circuit:
            return swap_test_probability_via_circuit(state_a, state_b)
        return swap_test_probability(state_a, state_b)

    def sample(self, state_a: Statevector, state_b: Statevector) -> int:
        """Run one swap test and return the ancilla measurement (0 or 1)."""
        probability_zero = self.probability_of_zero(state_a, state_b)
        self._runs += 1
        return 0 if self._rng.random() < probability_zero else 1

    def sample_many(
        self, state_a: Statevector, state_b: Statevector, repetitions: int
    ) -> list[int]:
        """Run ``repetitions`` independent swap tests."""
        return [self.sample(state_a, state_b) for _ in range(repetitions)]

    def any_one(
        self, state_a: Statevector, state_b: Statevector, repetitions: int
    ) -> bool:
        """Whether any of ``repetitions`` swap tests measures 1.

        This is the exact primitive Algorithm 1 uses: a single observed 1
        certifies the states are not identical; ``repetitions`` consecutive
        zeros give confidence ``1 - 2**-repetitions`` that they are.
        """
        for _ in range(repetitions):
            if self.sample(state_a, state_b) == 1:
                return True
        return False
