"""Quantum oracles: black boxes that accept superposition inputs.

The quantum algorithms of Sections 4.5/4.6 assume the reversible circuits
"can take quantum states as inputs".  :class:`QuantumCircuitOracle` models
exactly that: the only operation is "hand the oracle an ``n``-qubit state,
receive the transformed state", and every such execution is counted as one
quantum query.  The counting convention matches the classical oracles so the
classical and quantum columns of Table 1 are directly comparable.
"""

from __future__ import annotations

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.permutation import Permutation
from repro.exceptions import OracleError, QueryBudgetExceededError
from repro.quantum.apply import apply_circuit, apply_permutation
from repro.quantum.statevector import Statevector

__all__ = ["QuantumCircuitOracle"]


class QuantumCircuitOracle:
    """Query-counted quantum access to a reversible circuit or permutation.

    Args:
        target: the hidden reversible circuit or permutation.
        max_queries: optional hard budget on quantum queries.
    """

    def __init__(
        self,
        target: ReversibleCircuit | Permutation,
        max_queries: int | None = None,
    ) -> None:
        if isinstance(target, ReversibleCircuit):
            self._num_qubits = target.num_lines
            self._permutation = Permutation.from_circuit(target)
        elif isinstance(target, Permutation):
            self._num_qubits = target.num_bits
            self._permutation = target
        else:
            raise OracleError(
                f"cannot build a quantum oracle from {type(target).__name__}"
            )
        self._max_queries = max_queries
        self._queries = 0

    @property
    def num_qubits(self) -> int:
        """Number of qubits / circuit lines ``n``."""
        return self._num_qubits

    @property
    def query_count(self) -> int:
        """Number of quantum queries made so far."""
        return self._queries

    @property
    def permutation(self) -> Permutation:
        """The hidden permutation (white-box escape hatch, like
        :attr:`repro.oracles.oracle.CircuitOracle.circuit`; used by
        verification and by the service layer's fingerprinting, never by
        matchers)."""
        return self._permutation

    def reset_counts(self) -> None:
        """Reset the query counter."""
        self._queries = 0

    def query_state(self, state: Statevector) -> Statevector:
        """Run the hidden circuit on ``state`` (one quantum query)."""
        if state.num_qubits != self._num_qubits:
            raise OracleError(
                f"state has {state.num_qubits} qubits, oracle expects "
                f"{self._num_qubits}"
            )
        if self._max_queries is not None and self._queries >= self._max_queries:
            raise QueryBudgetExceededError(
                f"quantum query budget of {self._max_queries} exhausted"
            )
        self._queries += 1
        return apply_permutation(self._permutation, state)

    def query_basis(self, value: int) -> int:
        """Classical convenience query (counted like any other query).

        Quantum oracles can of course be queried on computational basis
        states; the matchers use this for the cheap classical preprocessing
        steps (e.g. the all-zero probe of the P-N matcher).
        """
        if self._max_queries is not None and self._queries >= self._max_queries:
            raise QueryBudgetExceededError(
                f"quantum query budget of {self._max_queries} exhausted"
            )
        self._queries += 1
        return self._permutation(value)
