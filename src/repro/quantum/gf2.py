"""Linear algebra over GF(2) on bit-packed vectors.

Simon's algorithm reduces period finding to solving a homogeneous linear
system over GF(2): every measurement yields a vector ``y`` with
``y . s = 0``, and once the collected vectors span an ``(m-1)``-dimensional
space the hidden period ``s`` is the unique non-zero vector in their null
space.  Vectors are packed into Python ints (bit ``i`` = coordinate ``i``),
which keeps elimination a handful of XORs.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = [
    "dot",
    "row_echelon",
    "rank",
    "nullspace_basis",
    "solve_unique_nullspace_vector",
]


def dot(a: int, b: int) -> int:
    """The GF(2) inner product of two bit-packed vectors."""
    return bin(a & b).count("1") & 1


def row_echelon(rows: Iterable[int], width: int) -> tuple[list[int], list[int]]:
    """Reduce ``rows`` to row-echelon form.

    Returns:
        ``(echelon_rows, pivot_columns)`` where ``echelon_rows[i]`` has its
        leading 1 in column ``pivot_columns[i]`` (columns are bit positions,
        processed from the most significant to the least so the result is
        stable regardless of insertion order).
    """
    echelon: list[int] = []
    pivots: list[int] = []
    for row in rows:
        current = row & ((1 << width) - 1)
        for existing, pivot in zip(echelon, pivots):
            if (current >> pivot) & 1:
                current ^= existing
        if current == 0:
            continue
        pivot = current.bit_length() - 1
        # Back-substitute so earlier rows are clean above the new pivot.
        for index, existing in enumerate(echelon):
            if (existing >> pivot) & 1:
                echelon[index] = existing ^ current
        echelon.append(current)
        pivots.append(pivot)
    order = sorted(range(len(echelon)), key=lambda i: -pivots[i])
    return [echelon[i] for i in order], [pivots[i] for i in order]


def rank(rows: Iterable[int], width: int) -> int:
    """The GF(2) rank of the row set."""
    return len(row_echelon(rows, width)[0])


def nullspace_basis(rows: Sequence[int], width: int) -> list[int]:
    """A basis of ``{x : row . x = 0 for every row}`` as bit-packed ints."""
    echelon, pivots = row_echelon(rows, width)
    pivot_set = set(pivots)
    free_columns = [column for column in range(width) if column not in pivot_set]
    basis: list[int] = []
    for free in free_columns:
        vector = 1 << free
        # Determine the pivot coordinates forced by this free choice.
        for row, pivot in zip(echelon, pivots):
            if dot(row, vector):
                vector ^= 1 << pivot
        basis.append(vector)
    return basis


def solve_unique_nullspace_vector(rows: Sequence[int], width: int) -> int | None:
    """The unique non-zero null-space vector, if the null space has dimension 1.

    Returns ``None`` when the null space is larger (not enough equations yet)
    or trivial (only the zero vector — the function under test was 1-to-1).
    """
    basis = nullspace_basis(rows, width)
    if len(basis) != 1:
        return None
    return basis[0]
