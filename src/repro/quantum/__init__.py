"""Quantum substrate: dense state-vector simulation and the swap test.

The paper's quantum algorithms (Section 4.5 and 4.6) only need three
ingredients from a quantum computer:

1. preparing product states whose qubits are each ``|0>``, ``|1>``, ``|+>``
   or ``|->``;
2. running the (black-box) reversible circuits on such states — a reversible
   circuit acts on a state vector as a permutation of the computational
   basis;
3. the swap test of Fig. 3, which compares two states and measures a single
   ancilla qubit.

This package implements exactly those ingredients on top of numpy:

* :class:`Statevector` with :func:`product_state` and friends,
* :func:`apply_circuit` / :func:`apply_x` / :func:`apply_hadamard`,
* :class:`SwapTest` (analytic Born-rule sampling, with an explicit
  circuit-level construction available for cross-validation),
* :class:`QuantumCircuitOracle` — the query-counted quantum oracle.

The substitution relative to the paper: real quantum hardware is replaced by
this simulator.  Query counts — the complexity measure of Table 1 — are
unaffected; only the per-query wall-clock cost becomes exponential in ``n``,
which bounds the quantum experiment sweeps to n ≈ 8–10.
"""

from __future__ import annotations

from repro.quantum import gf2, simon
from repro.quantum.apply import (
    apply_circuit,
    apply_hadamard,
    apply_permutation,
    apply_x,
)
from repro.quantum.oracle import QuantumCircuitOracle
from repro.quantum.simon import XorQueryOracle, find_hidden_period, simon_sample
from repro.quantum.statevector import (
    MINUS,
    PLUS,
    ZERO,
    ONE,
    Statevector,
    basis_state,
    product_state,
)
from repro.quantum.swap_test import SwapTest, swap_test_probability

__all__ = [
    "Statevector",
    "basis_state",
    "product_state",
    "ZERO",
    "ONE",
    "PLUS",
    "MINUS",
    "apply_circuit",
    "apply_permutation",
    "apply_x",
    "apply_hadamard",
    "SwapTest",
    "swap_test_probability",
    "QuantumCircuitOracle",
    "XorQueryOracle",
    "simon_sample",
    "find_hidden_period",
    "simon",
    "gf2",
]
