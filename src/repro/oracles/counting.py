"""Query-count bookkeeping.

The benchmark harness runs each matcher many times over random instances and
needs per-run query counts plus simple aggregates (mean, min, max).  Keeping
that bookkeeping here keeps the oracles themselves trivial.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

__all__ = ["QueryStatistics"]


@dataclass
class QueryStatistics:
    """Aggregate of per-run oracle query counts.

    Attributes:
        label: free-form label (typically "equivalence class / regime").
        samples: one entry per run — the total query count of that run.
    """

    label: str = ""
    samples: list[int] = field(default_factory=list)

    def record(self, queries: int) -> None:
        """Record the query count of one run."""
        self.samples.append(int(queries))

    def extend(self, queries: Iterable[int]) -> None:
        """Record several runs at once."""
        for value in queries:
            self.record(value)

    @property
    def count(self) -> int:
        """Number of recorded runs."""
        return len(self.samples)

    @property
    def total(self) -> int:
        """Sum of all recorded query counts."""
        return sum(self.samples)

    @property
    def mean(self) -> float:
        """Mean query count (0.0 when no runs are recorded)."""
        return self.total / len(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> int:
        """Smallest recorded query count (0 when no runs are recorded)."""
        return min(self.samples) if self.samples else 0

    @property
    def maximum(self) -> int:
        """Largest recorded query count (0 when no runs are recorded)."""
        return max(self.samples) if self.samples else 0

    def summary(self) -> dict[str, float]:
        """A plain-dict summary used by the report renderer."""
        return {
            "runs": self.count,
            "mean": self.mean,
            "min": float(self.minimum),
            "max": float(self.maximum),
        }

    @classmethod
    def from_samples(cls, label: str, samples: Sequence[int]) -> "QueryStatistics":
        """Build a statistics object directly from a list of counts."""
        stats = cls(label)
        stats.extend(samples)
        return stats

    def __repr__(self) -> str:
        return (
            f"<QueryStatistics {self.label!r} runs={self.count} "
            f"mean={self.mean:.2f} min={self.minimum} max={self.maximum}>"
        )
