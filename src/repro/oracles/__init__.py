"""Black-box oracle model.

Every complexity statement in the paper (Table 1, Theorem 1) counts *oracle
queries*: the number of times an algorithm evaluates one of the circuits on
an input.  This package supplies the oracle wrappers in which that counting
happens, so every matcher — the paper's and the baselines — is charged under
exactly the same rules:

* :class:`ReversibleOracle` — the abstract interface: ``query`` (and, when
  the variant problem grants it, ``query_inverse``), plus query counters and
  an optional query budget.
* :class:`CircuitOracle`, :class:`PermutationOracle`,
  :class:`FunctionOracle` — concrete oracles wrapping a circuit, a
  permutation table, or an arbitrary bijection.
* :func:`as_oracle` — coerce "circuit or oracle" arguments used throughout
  the matcher API.
* :class:`QueryStatistics` — aggregation helper used by the benchmark
  harness.
"""

from __future__ import annotations

from repro.oracles.counting import QueryStatistics
from repro.oracles.oracle import (
    CircuitOracle,
    FunctionOracle,
    PermutationOracle,
    ReversibleOracle,
    as_oracle,
)

__all__ = [
    "ReversibleOracle",
    "CircuitOracle",
    "PermutationOracle",
    "FunctionOracle",
    "as_oracle",
    "QueryStatistics",
]
