"""Classical black-box oracles with query counting.

Problem 1 of the paper hands the matcher two circuits *as black boxes*: the
only allowed interaction is "feed an input, observe the output", and — in
the variant problem — the same for the inverse circuit.  The classes here
enforce that discipline and count every interaction, because the number of
such interactions is precisely the complexity measure of Table 1.

The quantum counterpart (oracles that accept superposition states) lives in
:mod:`repro.quantum.oracle`; it shares the counting conventions so classical
and quantum query counts are directly comparable.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable

from repro.circuits import bitslice
from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.permutation import Permutation
from repro.exceptions import (
    InverseUnavailableError,
    OracleError,
    QueryBudgetExceededError,
)

__all__ = [
    "ReversibleOracle",
    "CircuitOracle",
    "PermutationOracle",
    "FunctionOracle",
    "as_oracle",
]


class ReversibleOracle(ABC):
    """Abstract black-box access to an ``n``-bit reversible function.

    Args:
        num_lines: bit width ``n`` of the hidden function.
        with_inverse: whether :meth:`query_inverse` is allowed (the "inverse
            circuit available" rows of Table 1).
        max_queries: optional hard budget on the *total* number of queries
            (forward + inverse); exceeding it raises
            :class:`QueryBudgetExceededError`.  Used by lower-bound
            experiments to cap runaway classical searches.
    """

    def __init__(
        self,
        num_lines: int,
        with_inverse: bool = False,
        max_queries: int | None = None,
    ) -> None:
        if num_lines <= 0:
            raise OracleError(f"oracle needs at least one line, got {num_lines}")
        self._num_lines = num_lines
        self._with_inverse = with_inverse
        self._max_queries = max_queries
        self._forward_queries = 0
        self._inverse_queries = 0

    # -- interface -----------------------------------------------------------
    @property
    def num_lines(self) -> int:
        """Bit width ``n`` of the hidden function."""
        return self._num_lines

    @property
    def has_inverse(self) -> bool:
        """Whether inverse queries are permitted."""
        return self._with_inverse

    @property
    def query_count(self) -> int:
        """Number of forward queries made so far."""
        return self._forward_queries

    @property
    def inverse_query_count(self) -> int:
        """Number of inverse queries made so far."""
        return self._inverse_queries

    @property
    def total_queries(self) -> int:
        """Forward plus inverse queries."""
        return self._forward_queries + self._inverse_queries

    def reset_counts(self) -> None:
        """Reset both query counters to zero."""
        self._forward_queries = 0
        self._inverse_queries = 0

    def peek(self, value: int) -> int:
        """White-box evaluation on one input, charging no queries.

        The pointwise counterpart of :meth:`peek_table`: the sampled-probe
        fingerprinter evaluates opaque oracles through this hatch so
        identity computation stays outside the query-complexity
        accounting — and stays affordable at widths where tabulating the
        whole table is not.  Never for matchers.
        """
        self._check_input(value)
        return self._evaluate(value)

    def evaluate_many(self, values: "Iterable[int]") -> list[int]:
        """White-box batch evaluation, charging no queries.

        The batch counterpart of :meth:`peek` and the capability the
        bit-parallel hot path hangs off: the base class falls back to a
        scalar loop (exactly ``[self.peek(v) for v in values]``), while
        :class:`CircuitOracle` overrides the hook with the 64-lane
        bitsliced evaluator and :class:`PermutationOracle` with direct
        table lookups.  Like ``peek``/``peek_table``, never for matchers —
        they batch through :meth:`query_many`, which charges.
        """
        values = list(values)
        for value in values:
            self._check_input(value)
        return self._evaluate_many(values)

    def peek_table(self) -> list[int]:
        """White-box tabulation of the hidden function, charging no queries.

        Like the ``circuit``/``permutation`` escape hatches of the concrete
        oracles, this steps outside the black-box model: it is for
        verification and for the service layer's fingerprinting/caching,
        never for matchers (whose complexity is measured in queries).
        Exponential in the line count — fingerprinting routes through
        :meth:`evaluate_many` on a bounded probe set instead wherever the
        probe scheme applies (the ``peek_table`` cost cliff).
        """
        return self._evaluate_many(list(range(1 << self._num_lines)))

    # -- querying --------------------------------------------------------------
    def _charge(self) -> None:
        if (
            self._max_queries is not None
            and self.total_queries >= self._max_queries
        ):
            raise QueryBudgetExceededError(
                f"query budget of {self._max_queries} exhausted"
            )

    def _check_input(self, value: int) -> None:
        if value < 0 or value >> self._num_lines:
            raise OracleError(
                f"query value {value} does not fit in {self._num_lines} lines"
            )

    def query(self, value: int) -> int:
        """Evaluate the hidden function on the bit vector ``value``."""
        self._check_input(value)
        self._charge()
        self._forward_queries += 1
        return self._evaluate(value)

    def query_inverse(self, value: int) -> int:
        """Evaluate the hidden function's inverse on ``value``.

        Raises :class:`InverseUnavailableError` unless the oracle was created
        with ``with_inverse=True``.
        """
        if not self._with_inverse:
            raise InverseUnavailableError(
                "this oracle does not expose the inverse circuit"
            )
        self._check_input(value)
        self._charge()
        self._inverse_queries += 1
        return self._evaluate_inverse(value)

    def query_many(self, values: Iterable[int]) -> list[int]:
        """Batch form of :meth:`query`: one logical query per value.

        Query accounting is *per probe, not per word*: each value is
        checked and charged in order exactly as the scalar loop
        ``[self.query(v) for v in values]`` would, so a budget that
        exhausts mid-batch raises at the same probe index with the same
        counters — only the evaluation itself is batched (bitsliced for
        circuit oracles), never the complexity measure.
        """
        values = list(values)
        for value in values:
            self._check_input(value)
            self._charge()
            self._forward_queries += 1
        return self._evaluate_many(values)

    def query_inverse_many(self, values: Iterable[int]) -> list[int]:
        """Batch form of :meth:`query_inverse` (same accounting contract)."""
        if not self._with_inverse:
            raise InverseUnavailableError(
                "this oracle does not expose the inverse circuit"
            )
        values = list(values)
        for value in values:
            self._check_input(value)
            self._charge()
            self._inverse_queries += 1
        return self._evaluate_inverse_many(values)

    # -- implementation hooks --------------------------------------------------
    @abstractmethod
    def _evaluate(self, value: int) -> int:
        """Evaluate the hidden function (no counting, no checks)."""

    @abstractmethod
    def _evaluate_inverse(self, value: int) -> int:
        """Evaluate the hidden inverse function (no counting, no checks)."""

    def _evaluate_many(self, values: list[int]) -> list[int]:
        """Batch-evaluate the hidden function (no counting, no checks).

        The scalar reference loop; concrete oracles with a bit-parallel
        representation override this.
        """
        return [self._evaluate(value) for value in values]

    def _evaluate_inverse_many(self, values: list[int]) -> list[int]:
        """Batch-evaluate the hidden inverse (no counting, no checks)."""
        return [self._evaluate_inverse(value) for value in values]


class CircuitOracle(ReversibleOracle):
    """Black-box view of a :class:`ReversibleCircuit`.

    The inverse, when requested, is materialised once as the reversed
    cascade — exactly what "the inverse circuit is available" means for a
    white-box circuit.
    """

    def __init__(
        self,
        circuit: ReversibleCircuit,
        with_inverse: bool = False,
        max_queries: int | None = None,
    ) -> None:
        super().__init__(circuit.num_lines, with_inverse, max_queries)
        self._circuit = circuit
        self._inverse_circuit = circuit.inverse() if with_inverse else None
        # (num_gates, compiled ops or None) — circuits only grow by
        # appending, so a gate-count mismatch is a reliable staleness
        # signal for the compiled-op cache.
        self._compiled: tuple[int, list[tuple] | None] | None = None
        self._compiled_inverse: tuple[int, list[tuple] | None] | None = None

    @property
    def circuit(self) -> ReversibleCircuit:
        """The wrapped circuit (white-box escape hatch for verification)."""
        return self._circuit

    def _evaluate(self, value: int) -> int:
        return self._circuit.simulate(value)

    def _evaluate_inverse(self, value: int) -> int:
        assert self._inverse_circuit is not None
        return self._inverse_circuit.simulate(value)

    @staticmethod
    def _compiled_ops(
        circuit: ReversibleCircuit,
        cache: tuple[int, list[tuple] | None] | None,
    ) -> tuple[int, list[tuple] | None]:
        if cache is not None and cache[0] == circuit.num_gates:
            return cache
        gates = circuit.gates
        ops = bitslice.compile_gates(gates) if bitslice.supports(gates) else None
        return (circuit.num_gates, ops)

    def _evaluate_many(self, values: list[int]) -> list[int]:
        # 64-lane bitsliced evaluation; user-defined gate kinds fall back
        # to the scalar reference loop.
        self._compiled = self._compiled_ops(self._circuit, self._compiled)
        ops = self._compiled[1]
        if ops is None:
            return super()._evaluate_many(values)
        return bitslice.evaluate_compiled(ops, self._num_lines, values)

    def _evaluate_inverse_many(self, values: list[int]) -> list[int]:
        assert self._inverse_circuit is not None
        self._compiled_inverse = self._compiled_ops(
            self._inverse_circuit, self._compiled_inverse
        )
        ops = self._compiled_inverse[1]
        if ops is None:
            return super()._evaluate_inverse_many(values)
        return bitslice.evaluate_compiled(ops, self._num_lines, values)


class PermutationOracle(ReversibleOracle):
    """Black-box view of a tabulated :class:`Permutation`."""

    def __init__(
        self,
        permutation: Permutation,
        with_inverse: bool = False,
        max_queries: int | None = None,
    ) -> None:
        super().__init__(permutation.num_bits, with_inverse, max_queries)
        self._permutation = permutation
        self._inverse = permutation.inverse() if with_inverse else None

    @property
    def permutation(self) -> Permutation:
        """The wrapped permutation (white-box escape hatch for verification)."""
        return self._permutation

    def _evaluate(self, value: int) -> int:
        return self._permutation(value)

    def _evaluate_inverse(self, value: int) -> int:
        assert self._inverse is not None
        return self._inverse(value)

    def _evaluate_many(self, values: list[int]) -> list[int]:
        mapping = self._permutation.mapping
        return [mapping[value] for value in values]

    def _evaluate_inverse_many(self, values: list[int]) -> list[int]:
        assert self._inverse is not None
        mapping = self._inverse.mapping
        return [mapping[value] for value in values]


class FunctionOracle(ReversibleOracle):
    """Black-box view of an arbitrary Python bijection on ``range(2**n)``.

    Args:
        function: the forward mapping.
        num_lines: bit width.
        inverse_function: optional inverse mapping; required when
            ``with_inverse`` is set.
    """

    def __init__(
        self,
        function: Callable[[int], int],
        num_lines: int,
        inverse_function: Callable[[int], int] | None = None,
        with_inverse: bool = False,
        max_queries: int | None = None,
    ) -> None:
        if with_inverse and inverse_function is None:
            raise OracleError(
                "with_inverse=True requires an explicit inverse_function"
            )
        super().__init__(num_lines, with_inverse, max_queries)
        self._function = function
        self._inverse_function = inverse_function

    def _evaluate(self, value: int) -> int:
        return self._function(value)

    def _evaluate_inverse(self, value: int) -> int:
        assert self._inverse_function is not None
        return self._inverse_function(value)


def as_oracle(
    target: "ReversibleOracle | ReversibleCircuit | Permutation",
    with_inverse: bool = False,
    max_queries: int | None = None,
) -> ReversibleOracle:
    """Coerce a circuit, permutation or oracle into a :class:`ReversibleOracle`.

    Existing oracles are returned unchanged (their own inverse availability
    wins); circuits and permutations are wrapped.  Matchers call this so
    users can pass plain circuits in example code while experiments pass
    carefully configured oracles.
    """
    if isinstance(target, ReversibleOracle):
        return target
    if isinstance(target, ReversibleCircuit):
        return CircuitOracle(target, with_inverse=with_inverse, max_queries=max_queries)
    if isinstance(target, Permutation):
        return PermutationOracle(
            target, with_inverse=with_inverse, max_queries=max_queries
        )
    raise OracleError(f"cannot build an oracle from {type(target).__name__}")
