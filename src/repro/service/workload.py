"""Workload/corpus generation: problem families across the 16 classes.

A *corpus* is a directory of RevLib ``.real`` circuit files plus a
``manifest.json`` describing pairs to match: which two files, under which
promised X-Y class, from which problem family, and whether the pair is
actually equivalent.  Three families cover the scenario space:

* ``random`` — a random MCT cascade wrapped in class-appropriate random
  transforms (:func:`repro.core.verify.make_instance`): the "generic
  function" workload on which Table 1 query counts are measured.
* ``library`` — the same construction over the named benchmark functions
  of :mod:`repro.circuits.library` (adders, hidden-weighted-bit, ...):
  structured functions a matcher might accidentally exploit.
* ``adversarial`` — near-miss pairs that are **not** equivalent: the
  correctly transformed circuit is perturbed by a single transposition
  (one fully-controlled Toffoli appended), so exactly two truth-table
  entries differ.  These probe the promise boundary — matchers may raise
  :class:`~repro.exceptions.PromiseViolationError` or return witnesses
  that fail verification, and ``expected_equivalent: false`` in the
  manifest records which outcome is the honest one.
* ``wide`` — 16–24-line pairs over the library functions, beyond the
  exact-fingerprint width limit, so corpora exercise the sampled-probe
  identity path end to end.  Odd-indexed entries are near-miss variants
  whose transposition is placed *on the probe set* (the perturbed output
  is the image of the first probe input), so probe digests are
  guaranteed to distinguish them at any probe count — the adversarial
  regime the probabilistic scheme is documented against.  Only the
  classically easy classes are generated (:func:`wide_classes`):
  quantum matchers tabulate ``2**n`` amplitudes, which is exactly what
  wide workloads must avoid.

Generation is deterministic: every pair derives its own seed from the
corpus seed and its identifier, so the same arguments reproduce the same
corpus byte-for-byte regardless of generation order.
"""

from __future__ import annotations

import hashlib
import json
import os
import random as _random
from dataclasses import dataclass
from pathlib import Path

from repro.circuits import library
from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import Control, MCTGate
from repro.circuits.io import real
from repro.circuits.random import random_circuit
from repro.core.equivalence import EquivalenceType, Hardness, classify
from repro.core.verify import make_instance
from repro.exceptions import ServiceError

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "DEFAULT_FAMILIES",
    "KNOWN_FAMILIES",
    "WIDE_MIN_LINES",
    "WIDE_MAX_LINES",
    "CorpusEntry",
    "CorpusManifest",
    "tractable_classes",
    "wide_classes",
    "generate_corpus",
    "load_entry_circuits",
]

MANIFEST_FORMAT = "repro-corpus/v1"
MANIFEST_NAME = "manifest.json"
DEFAULT_FAMILIES = ("random", "library", "adversarial")
#: Every family ``generate_corpus`` accepts; ``wide`` is opt-in because
#: its pairs dwarf the default 4-line corpora.
KNOWN_FAMILIES = DEFAULT_FAMILIES + ("wide",)

#: Width range of the ``wide`` family — past the exact-fingerprint limit,
#: where only sampled-probe identities can key the cache.
WIDE_MIN_LINES = 16
WIDE_MAX_LINES = 24


@dataclass(frozen=True)
class CorpusEntry:
    """One pair in a corpus manifest.

    Attributes:
        pair_id: stable identifier, also the stem of the circuit filenames
            and the resume key in result stores.
        circuit1, circuit2: circuit file paths relative to the manifest.
        equivalence: promised class label ("X-Y").
        family: generating family name.
        num_lines: bit width of the pair.
        expected_equivalent: whether the pair truly is equivalent (False
            for the adversarial near-misses).
        seed: the derived seed the pair was generated from.
    """

    pair_id: str
    circuit1: str
    circuit2: str
    equivalence: str
    family: str
    num_lines: int
    expected_equivalent: bool
    seed: int

    def to_dict(self) -> dict:
        """The entry as a JSON-ready dict."""
        return {
            "pair_id": self.pair_id,
            "circuit1": self.circuit1,
            "circuit2": self.circuit2,
            "equivalence": self.equivalence,
            "family": self.family,
            "num_lines": self.num_lines,
            "expected_equivalent": self.expected_equivalent,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        """Rebuild an entry from :meth:`to_dict` output."""
        try:
            return cls(
                pair_id=data["pair_id"],
                circuit1=data["circuit1"],
                circuit2=data["circuit2"],
                equivalence=data["equivalence"],
                family=data["family"],
                num_lines=data["num_lines"],
                expected_equivalent=data["expected_equivalent"],
                seed=data["seed"],
            )
        except KeyError as error:
            raise ServiceError(f"corpus entry is missing field {error}") from None


@dataclass(frozen=True)
class CorpusManifest:
    """A generated corpus: header plus one :class:`CorpusEntry` per pair."""

    num_lines: int
    seed: int
    families: tuple[str, ...]
    classes: tuple[str, ...]
    entries: tuple[CorpusEntry, ...]

    def to_dict(self) -> dict:
        """The manifest as a JSON-ready dict."""
        return {
            "format": MANIFEST_FORMAT,
            "num_lines": self.num_lines,
            "seed": self.seed,
            "families": list(self.families),
            "classes": list(self.classes),
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusManifest":
        """Rebuild a manifest, validating the format marker."""
        if data.get("format") != MANIFEST_FORMAT:
            raise ServiceError(
                f"not a corpus manifest (format {data.get('format')!r}, "
                f"expected {MANIFEST_FORMAT!r})"
            )
        return cls(
            num_lines=data["num_lines"],
            seed=data["seed"],
            families=tuple(data["families"]),
            classes=tuple(data["classes"]),
            entries=tuple(
                CorpusEntry.from_dict(entry) for entry in data["entries"]
            ),
        )

    def save(self, path: str | Path) -> Path:
        """Write the manifest as JSON; returns the path written.

        Published atomically (tmp file + ``os.replace``): a concurrent
        reader — a daemon submit pointed at the corpus directory, say —
        sees either the old complete manifest or the new one, never a
        torn file.
        """
        path = Path(path)
        tmp = path.with_suffix(path.suffix + f".{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CorpusManifest":
        """Read a manifest written by :meth:`save`.

        Raises :class:`ServiceError` on malformed JSON or a wrong format
        marker.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except json.JSONDecodeError as error:
            raise ServiceError(f"{path}: not valid JSON ({error})") from None
        if not isinstance(data, dict):
            raise ServiceError(f"{path}: manifest must be a JSON object")
        return cls.from_dict(data)


def tractable_classes() -> tuple[EquivalenceType, ...]:
    """The classes matchable without inverse access or brute force.

    Trivial, classically easy and quantum-easy per the Fig. 1
    classification — the default corpus sticks to these so a plain
    ``repro run`` completes without failures; ``--classes all`` opts into
    the conditionally-easy and UNIQUE-SAT-hard classes.
    """
    allowed = (Hardness.TRIVIAL, Hardness.CLASSICAL_EASY, Hardness.QUANTUM_EASY)
    return tuple(eq for eq in EquivalenceType if classify(eq) in allowed)


def wide_classes() -> tuple[EquivalenceType, ...]:
    """The classes the ``wide`` family generates: classically easy only.

    The quantum-easy classes simulate ``2**n``-amplitude statevectors,
    which is unaffordable at 16–24 lines; the classical matchers of these
    classes spend a polynomial number of queries, each one circuit
    simulation, so wide pairs stay cheap to match.
    """
    allowed = (Hardness.TRIVIAL, Hardness.CLASSICAL_EASY)
    return tuple(eq for eq in EquivalenceType if classify(eq) in allowed)


def _entry_seed(corpus_seed: int, pair_id: str) -> int:
    digest = hashlib.sha256(f"{corpus_seed}:{pair_id}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _library_base(num_lines: int, index: int) -> ReversibleCircuit:
    catalogue = library.catalogue(num_lines)
    names = sorted(catalogue)
    return catalogue[names[index % len(names)]]()


def _transposition_gate(
    num_lines: int, rng: _random.Random
) -> MCTGate:
    """A fully-controlled Toffoli: swaps exactly two truth-table entries."""
    target = rng.randrange(num_lines)
    pattern = rng.getrandbits(num_lines)
    controls = tuple(
        Control(line, bool((pattern >> line) & 1))
        for line in range(num_lines)
        if line != target
    )
    return MCTGate(controls, target)


def _probe_aligned_transposition(
    circuit: ReversibleCircuit, rng: _random.Random
) -> MCTGate:
    """A transposition that perturbs the circuit *on the probe set*.

    Appending a random transposition to a 16-line circuit would change 2
    of the 65536 truth-table entries — all but invisible to a sampled
    probe digest.  The wide family's near-misses instead aim the
    transposition at the image of the **first probe input**: the
    perturbed circuit's output at that probe flips, so probe fingerprints
    distinguish the near-miss from the original at *any* probe count.
    """
    # Deferred import: fingerprint is a sibling service module and the
    # probe set is its contract; workload only consumes it.
    from repro.service.fingerprint import probe_inputs

    num_lines = circuit.num_lines
    image = circuit.simulate(probe_inputs(num_lines, 1)[0])
    target = rng.randrange(num_lines)
    controls = tuple(
        Control(line, bool((image >> line) & 1))
        for line in range(num_lines)
        if line != target
    )
    return MCTGate(controls, target)


def _build_pair(
    family: str,
    equivalence: EquivalenceType,
    num_lines: int,
    index: int,
    rng: _random.Random,
) -> tuple[ReversibleCircuit, ReversibleCircuit, bool]:
    """Build ``(circuit1, circuit2, expected_equivalent)`` for one entry."""
    if family == "wide":
        # Width varies across 16..24 (even, so the adder/multiplier
        # library entries participate); odd indices are near-miss
        # variants perturbed on the probe set.
        span = (WIDE_MAX_LINES - WIDE_MIN_LINES) // 2 + 1
        width = WIDE_MIN_LINES + 2 * rng.randrange(span)
        base = _library_base(width, index)
        circuit1, circuit2, _ = make_instance(base, equivalence, rng)
        if index % 2 == 1:
            circuit1.append(_probe_aligned_transposition(circuit1, rng))
            return circuit1, circuit2, False
        return circuit1, circuit2, True
    if family == "library":
        base = _library_base(num_lines, index)
    else:
        base = random_circuit(num_lines, 4 * num_lines, rng, name="base")
    circuit1, circuit2, _ = make_instance(base, equivalence, rng)
    if family == "adversarial":
        circuit1.append(_transposition_gate(num_lines, rng))
        return circuit1, circuit2, False
    return circuit1, circuit2, True


def generate_corpus(
    out_dir: str | Path,
    *,
    num_lines: int = 4,
    classes: tuple[EquivalenceType, ...] | None = None,
    families: tuple[str, ...] = DEFAULT_FAMILIES,
    pairs_per_class: int = 1,
    seed: int | None = None,
) -> CorpusManifest:
    """Generate a corpus directory and its ``manifest.json``.

    Args:
        out_dir: directory to create/populate (circuit files + manifest).
        num_lines: bit width of every pair (except the ``wide`` family,
            which draws its own 16–24-line widths and records them per
            entry).
        classes: equivalence classes to cover; defaults to
            :func:`tractable_classes` (the ``wide`` family additionally
            restricts itself to :func:`wide_classes`).
        families: problem families to draw from (subset of
            :data:`KNOWN_FAMILIES`; ``wide`` is opt-in).
        pairs_per_class: pairs per (family, class) cell.
        seed: corpus seed; ``None`` draws one (the manifest records it, so
            every corpus is reproducible after the fact).

    Returns:
        The manifest, already saved to ``out_dir/manifest.json``.
    """
    for family in families:
        if family not in KNOWN_FAMILIES:
            raise ServiceError(
                f"unknown workload family {family!r}; "
                f"known: {', '.join(KNOWN_FAMILIES)}"
            )
    if "adversarial" in families and num_lines < 2:
        # On one line the "transposition" degenerates to a bare NOT gate,
        # which IS a valid negation witness — the pair would be genuinely
        # equivalent while labelled expected_equivalent=False.
        raise ServiceError(
            "the adversarial family needs num_lines >= 2"
        )
    if pairs_per_class <= 0:
        raise ServiceError(
            f"pairs_per_class must be positive, got {pairs_per_class}"
        )
    if classes is None:
        classes = tractable_classes()
    if seed is None:
        # Fresh corpora without an explicit seed deliberately draw one
        # from OS entropy; the drawn seed is recorded in the manifest,
        # so the corpus stays reproducible from its own metadata.
        seed = _random.SystemRandom().getrandbits(32)  # repro: allow[det-unseeded-random]

    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    entries: list[CorpusEntry] = []
    for family in families:
        family_classes = classes
        if family == "wide":
            # Wide pairs only exist for the classically easy classes;
            # other requested classes simply contribute no wide cells.
            allowed = set(wide_classes())
            family_classes = tuple(eq for eq in classes if eq in allowed)
        for equivalence in family_classes:
            for index in range(pairs_per_class):
                label = equivalence.label.lower()
                pair_id = f"{family}-{label}-{index:03d}"
                entry_seed = _entry_seed(seed, pair_id)
                rng = _random.Random(entry_seed)
                circuit1, circuit2, expected = _build_pair(
                    family, equivalence, num_lines, index, rng
                )
                file1 = f"{pair_id}-c1.real"
                file2 = f"{pair_id}-c2.real"
                real.write_real(circuit1, out_dir / file1)
                real.write_real(circuit2, out_dir / file2)
                entries.append(
                    CorpusEntry(
                        pair_id=pair_id,
                        circuit1=file1,
                        circuit2=file2,
                        equivalence=equivalence.label,
                        family=family,
                        # The wide family picks its own (wider) widths;
                        # the entry records what was actually built.
                        num_lines=circuit1.num_lines,
                        expected_equivalent=expected,
                        seed=entry_seed,
                    )
                )

    manifest = CorpusManifest(
        num_lines=num_lines,
        seed=seed,
        families=tuple(families),
        classes=tuple(eq.label for eq in classes),
        entries=tuple(entries),
    )
    manifest.save(out_dir / MANIFEST_NAME)
    return manifest


def load_entry_circuits(
    entry: CorpusEntry, root: str | Path
) -> tuple[ReversibleCircuit, ReversibleCircuit]:
    """Load one entry's circuit pair relative to the manifest directory."""
    root = Path(root)
    return (
        real.read_real(root / entry.circuit1),
        real.read_real(root / entry.circuit2),
    )
