"""The matching service layer: throughput on top of the matching engine.

:mod:`repro.core` answers "are these two circuits X-Y equivalent?" for one
pair; this package turns that into a streaming pipeline that answers it
for corpora:

* :mod:`repro.service.fingerprint` — oracle identity as a versioned
  strategy registry (:class:`FingerprintRegistry`): exact truth-table
  digests up to a width limit, width-independent sampled-probe digests
  beyond, gate-structure digests as the last resort.
* :mod:`repro.service.cache` — LRU in-memory and on-disk result caches
  plus :class:`EngineCacheAdapter`, the bridge into
  :meth:`MatchingEngine.match_many`'s ``result_cache`` hook.
* :mod:`repro.service.executor` — pluggable execution backends exposing
  the as-completed :meth:`Executor.stream` contract with deterministic
  per-pair seeding (serial / process-pool parallel / overlap, all
  byte-identical per task).
* :mod:`repro.service.events` — the typed lifecycle events a run streams
  (``RunStarted`` ... ``RunCompleted``) and the pluggable ``Observer``
  protocol with progress / JSONL-log / stats implementations.
* :mod:`repro.service.workload` — corpus generation across the 16
  equivalence classes (random, library and adversarial near-miss
  families) with a JSON manifest format.
* :mod:`repro.service.pipeline` — :class:`MatchingService`, whose
  :meth:`~MatchingService.stream` generator is the primitive (cache +
  executor + engine + JSONL store as an event stream), with
  ``run_manifest``/``match_pairs`` as thin consumers; shard-aware runs
  (:func:`shard_index`) and :func:`merge_stores` to union shard stores.
* :mod:`repro.service.serialize` — the JSON form of matching results
  shared by cache, store and executor.
* :mod:`repro.service.daemon` — the long-lived front end:
  :class:`MatchingDaemon` keeps one warm engine and one shared cache
  alive across many submissions behind a newline-delimited JSON socket
  protocol (``repro-daemon/v1``), with :class:`DaemonClient` as the
  Python/CLI counterpart; every submission streams into its own JSONL
  result store, so daemon runs resume and merge like CLI runs.

The CLI surfaces this as ``repro corpus`` (generate), ``repro run``
(execute, with ``--workers``, ``--overlap``, ``--cache-dir``,
``--resume``, ``--shard i/n``, ``--progress`` and ``--events``),
``repro merge`` (union shard stores), and the daemon quartet ``repro
serve`` / ``repro submit`` / ``repro watch`` / ``repro daemon``
(admin: status, stats, cancel, shutdown).

The layer's contracts — the versioned ``v2|label|fp1|fp2|config_digest``
cache-key contract, the event ordering and persist-before-yield
guarantees, the shard/merge byte-identity guarantee, and the daemon wire
protocol — are specified in ``docs/`` (``cache-keys.md``, ``events.md``,
``architecture.md``, ``protocol.md``).
"""

from __future__ import annotations

from repro.service.daemon import (
    PROTOCOL_VERSION,
    DaemonClient,
    DaemonJob,
    MatchingDaemon,
    RunState,
)
from repro.service.cache import (
    CacheStats,
    DiskCache,
    EngineCacheAdapter,
    LRUCache,
    ResultCache,
    TieredCache,
    build_cache,
    migrate_cache,
)
from repro.service.events import (
    CacheHit,
    EventLogObserver,
    Observer,
    ProgressObserver,
    ReportSummary,
    RunCompleted,
    RunStarted,
    ServiceEvent,
    StatsObserver,
    StoreFlushed,
    TaskCompleted,
    TaskFailed,
    TaskStarted,
    event_from_dict,
)
from repro.service.executor import (
    Executor,
    OverlapExecutor,
    PairTask,
    ParallelExecutor,
    SerialExecutor,
    TaskOutcome,
    derive_seed,
)
from repro.service.fingerprint import (
    DEFAULT_PROBE_COUNT,
    FINGERPRINT_SCHEMES,
    FUNCTIONAL_WIDTH_LIMIT,
    KEY_VERSION,
    FingerprintContext,
    Fingerprinter,
    FingerprintRegistry,
    OracleFingerprint,
    SampledProbeFingerprinter,
    StructureFingerprinter,
    TruthTableFingerprinter,
    build_registry,
    config_digest,
    default_registry,
    fingerprint,
    pair_key,
    pair_key_schemes,
    probe_inputs,
    registry_for_config,
    scheme_label,
)
from repro.service.pipeline import (
    MatchingService,
    ResultStore,
    ServiceReport,
    merge_stores,
    parse_shard,
    shard_index,
)
from repro.service.serialize import result_from_dict, result_to_dict
from repro.service.workload import (
    DEFAULT_FAMILIES,
    KNOWN_FAMILIES,
    CorpusEntry,
    CorpusManifest,
    generate_corpus,
    load_entry_circuits,
    tractable_classes,
    wide_classes,
)

__all__ = [
    # fingerprint
    "FUNCTIONAL_WIDTH_LIMIT",
    "DEFAULT_PROBE_COUNT",
    "FINGERPRINT_SCHEMES",
    "KEY_VERSION",
    "OracleFingerprint",
    "FingerprintContext",
    "Fingerprinter",
    "FingerprintRegistry",
    "TruthTableFingerprinter",
    "SampledProbeFingerprinter",
    "StructureFingerprinter",
    "build_registry",
    "registry_for_config",
    "default_registry",
    "probe_inputs",
    "fingerprint",
    "config_digest",
    "pair_key",
    "pair_key_schemes",
    "scheme_label",
    # cache
    "CacheStats",
    "ResultCache",
    "LRUCache",
    "DiskCache",
    "TieredCache",
    "build_cache",
    "migrate_cache",
    "EngineCacheAdapter",
    # events
    "ServiceEvent",
    "RunStarted",
    "TaskStarted",
    "CacheHit",
    "TaskCompleted",
    "TaskFailed",
    "StoreFlushed",
    "RunCompleted",
    "ReportSummary",
    "event_from_dict",
    "Observer",
    "ProgressObserver",
    "EventLogObserver",
    "StatsObserver",
    # daemon
    "PROTOCOL_VERSION",
    "RunState",
    "DaemonJob",
    "MatchingDaemon",
    "DaemonClient",
    # executor
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "OverlapExecutor",
    "PairTask",
    "TaskOutcome",
    "derive_seed",
    # workload
    "DEFAULT_FAMILIES",
    "KNOWN_FAMILIES",
    "CorpusEntry",
    "CorpusManifest",
    "generate_corpus",
    "load_entry_circuits",
    "tractable_classes",
    "wide_classes",
    # pipeline
    "MatchingService",
    "ResultStore",
    "ServiceReport",
    "parse_shard",
    "shard_index",
    "merge_stores",
    # serialize
    "result_to_dict",
    "result_from_dict",
]
