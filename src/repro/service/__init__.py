"""The matching service layer: throughput on top of the matching engine.

:mod:`repro.core` answers "are these two circuits X-Y equivalent?" for one
pair; this package turns that into a pipeline that answers it for corpora:

* :mod:`repro.service.fingerprint` — canonical oracle fingerprints, the
  stable cache keys (truth-table digests up to a width limit, structural
  digests beyond).
* :mod:`repro.service.cache` — LRU in-memory and on-disk result caches
  plus :class:`EngineCacheAdapter`, the bridge into
  :meth:`MatchingEngine.match_many`'s ``result_cache`` hook.
* :mod:`repro.service.executor` — pluggable serial/process-pool execution
  backends with deterministic per-pair seeding (parallel == serial,
  byte for byte).
* :mod:`repro.service.workload` — corpus generation across the 16
  equivalence classes (random, library and adversarial near-miss
  families) with a JSON manifest format.
* :mod:`repro.service.pipeline` — :class:`MatchingService`, wiring cache
  + executor + engine, streaming JSONL records and resuming interrupted
  runs.
* :mod:`repro.service.serialize` — the JSON form of matching results
  shared by cache, store and executor.

The CLI surfaces this as ``repro corpus`` (generate) and ``repro run``
(execute, with ``--workers``, ``--cache`` and ``--resume``).
"""

from __future__ import annotations

from repro.service.cache import (
    CacheStats,
    DiskCache,
    EngineCacheAdapter,
    LRUCache,
    ResultCache,
    TieredCache,
    build_cache,
)
from repro.service.executor import (
    Executor,
    PairTask,
    ParallelExecutor,
    SerialExecutor,
    TaskOutcome,
    derive_seed,
)
from repro.service.fingerprint import (
    FUNCTIONAL_WIDTH_LIMIT,
    OracleFingerprint,
    config_digest,
    fingerprint,
    pair_key,
)
from repro.service.pipeline import MatchingService, ResultStore, ServiceReport
from repro.service.serialize import result_from_dict, result_to_dict
from repro.service.workload import (
    DEFAULT_FAMILIES,
    CorpusEntry,
    CorpusManifest,
    generate_corpus,
    load_entry_circuits,
    tractable_classes,
)

__all__ = [
    # fingerprint
    "FUNCTIONAL_WIDTH_LIMIT",
    "OracleFingerprint",
    "fingerprint",
    "config_digest",
    "pair_key",
    # cache
    "CacheStats",
    "ResultCache",
    "LRUCache",
    "DiskCache",
    "TieredCache",
    "build_cache",
    "EngineCacheAdapter",
    # executor
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "PairTask",
    "TaskOutcome",
    "derive_seed",
    # workload
    "DEFAULT_FAMILIES",
    "CorpusEntry",
    "CorpusManifest",
    "generate_corpus",
    "load_entry_circuits",
    "tractable_classes",
    # pipeline
    "MatchingService",
    "ResultStore",
    "ServiceReport",
    # serialize
    "result_to_dict",
    "result_from_dict",
]
