"""Oracle identity as a pluggable, versioned strategy API.

A fingerprint identifies *what function* an oracle hides, not which Python
object wraps it, so two batches (or two processes, or two runs on
different days) that match the same pair under the same policy can share
one cached result.  Identity used to be a hard-coded ``isinstance``
ladder; it is now a registry of :class:`Fingerprinter` strategies —
mirroring how the matcher registry replaced the dispatch ladder — with
three built-ins:

* :class:`TruthTableFingerprinter` (scheme ``exact``) — a digest of the
  full truth table.  Canonical: any two representations of the same
  reversible function collide.  Exponential in the bit width, so it only
  applies up to :data:`FUNCTIONAL_WIDTH_LIMIT` lines.
* :class:`SampledProbeFingerprinter` (scheme ``probe``) — a digest of the
  function's outputs on a deterministic pseudo-random probe set derived
  from ``sha256(width:probe_salt)``.  Width-independent and canonical
  across representations (a circuit, its resynthesis, the tabulated
  permutation, an opaque oracle's white-box peek all collide), at the
  cost of a *probabilistic* distinctness guarantee: two functions
  differing in ``d`` of the ``2**n`` truth-table entries collide with
  probability ``(1 - d/2**n)**probe_count``.  Random different functions
  essentially never collide; an adversarial near-miss differing in a
  handful of entries can — which is why distinctness-critical corpora
  (:mod:`repro.service.workload`'s ``wide`` family) place their
  perturbations on the probe set, and why ``exact`` remains available.
* :class:`StructureFingerprinter` (scheme ``structure``) — a digest of
  the gate cascade.  Cheap at any width but only structural; the
  last-resort fallback (a structural mismatch is a cache miss, never a
  wrong hit).

Fingerprints and pair keys are **versioned**: fingerprint key fragments
render as ``fp/v2:...`` and pair keys carry the ``v2|`` prefix, so caches
and result stores written under the v1 contract read as clean misses —
never as wrong hits — once the identity scheme changes (see
``repro cache migrate`` for dropping stale v1 entries).

The cache key for a matched pair (:func:`pair_key`) combines both
fingerprints with the equivalence class and a digest of the
:class:`~repro.core.engine.MatchingConfig` policy, because the policy
changes what a matcher may do (inverse access, quantum access, budgets,
and now the fingerprint scheme itself) and therefore what is cached.
"""

from __future__ import annotations

import functools
import hashlib
import json
from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass

from repro.circuits import bitslice
from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.permutation import Permutation
from repro.core.engine import MatchingConfig
from repro.core.equivalence import EquivalenceType
from repro.exceptions import FingerprintError
from repro.oracles.oracle import (
    CircuitOracle,
    PermutationOracle,
    ReversibleOracle,
)
from repro.quantum.oracle import QuantumCircuitOracle

__all__ = [
    "FUNCTIONAL_WIDTH_LIMIT",
    "DEFAULT_PROBE_COUNT",
    "PROBE_SALT",
    "FP_VERSION",
    "KEY_VERSION",
    "KEY_PREFIX",
    "FINGERPRINT_SCHEMES",
    "OracleFingerprint",
    "FingerprintContext",
    "Fingerprinter",
    "TruthTableFingerprinter",
    "SampledProbeFingerprinter",
    "StructureFingerprinter",
    "FingerprintRegistry",
    "build_registry",
    "registry_for_config",
    "default_registry",
    "probe_inputs",
    "fingerprint",
    "config_digest",
    "pair_key",
    "pair_key_schemes",
    "scheme_label",
]

#: Widest circuit whose truth table is tabulated for an exact functional
#: fingerprint; beyond it the registry falls through to the next strategy
#: (sampled probes in ``auto`` mode, gate structure in ``exact`` mode).
FUNCTIONAL_WIDTH_LIMIT = 14

#: Probes per sampled-probe fingerprint unless configured otherwise.
DEFAULT_PROBE_COUNT = 64

#: Salt mixed into the probe-set derivation; part of the digest payload,
#: so changing it (a new key version) can never replay old digests.
PROBE_SALT = "repro-probe"

#: Version stamped on every fingerprint (the ``fp/v2`` key fragment).
FP_VERSION = 2

#: Version prefix of every pair key.  v1 keys had no prefix, so v1 cache
#: and store entries are textually disjoint from v2 ones: clean misses.
KEY_VERSION = "v2"
KEY_PREFIX = KEY_VERSION + "|"

#: The registry modes ``build_registry`` accepts (and the CLI exposes).
FINGERPRINT_SCHEMES = ("auto", "exact", "probe")


@dataclass(frozen=True)
class OracleFingerprint:
    """Identity of one oracle for caching purposes.

    Attributes:
        num_lines: bit width of the hidden function.
        kind: ``"function"`` (truth-table digest, canonical),
            ``"probe"`` (sampled-probe digest, canonical up to probe
            collisions) or ``"structure"`` (gate-cascade digest).
        digest: hex SHA-256 of the canonical payload.
        with_inverse: whether matchers get inverse access to this oracle —
            part of the identity because it changes which algorithm runs.
        scheme: name of the strategy that produced the fingerprint
            (``exact`` / ``probe`` / ``structure``).
        version: fingerprint contract version (:data:`FP_VERSION`).
    """

    num_lines: int
    kind: str
    digest: str
    with_inverse: bool = False
    scheme: str = "exact"
    version: int = FP_VERSION

    @property
    def key(self) -> str:
        """The fingerprint rendered as a stable, versioned key fragment."""
        access = "inv" if self.with_inverse else "fwd"
        return (
            f"fp/v{self.version}:{self.num_lines}:{self.scheme}:"
            f"{self.kind}:{access}:{self.digest}"
        )


@dataclass(frozen=True)
class FingerprintContext:
    """Per-call context handed to a :class:`Fingerprinter` strategy.

    Strategy *tuning* (width limits, probe counts) is construction-time
    state of the strategy itself; the context carries only what varies
    per request.

    Attributes:
        with_inverse: the effective inverse-access flag of the target
            (resolved by the registry: pre-built oracles contribute their
            own, raw circuits and permutations take the caller's).
    """

    with_inverse: bool = False


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _width(target) -> int | None:
    """The bit width of a fingerprintable target, or None for foreign types."""
    if isinstance(target, Permutation):
        return target.num_bits
    if isinstance(target, (ReversibleCircuit, ReversibleOracle)):
        return target.num_lines
    if isinstance(target, QuantumCircuitOracle):
        return target.num_qubits
    return None


@functools.lru_cache(maxsize=512)
def _probe_inputs_cached(
    num_lines: int, count: int, salt: str
) -> tuple[int, ...]:
    seed = hashlib.sha256(f"{num_lines}:{salt}".encode("utf-8")).digest()
    return tuple(
        int.from_bytes(
            hashlib.sha256(seed + index.to_bytes(8, "big")).digest()[:8],
            "big",
        )
        % (1 << num_lines)
        for index in range(count)
    )


def probe_inputs(
    num_lines: int, count: int, salt: str = PROBE_SALT
) -> list[int]:
    """The deterministic pseudo-random probe set for one bit width.

    Derived from ``sha256(f"{num_lines}:{salt}")`` expanded in counter
    mode — a pure function of ``(num_lines, count, salt)``, so every
    process, host and run derives the identical set (what makes probe
    digests canonical) and the expansion is memoised per ``(num_lines,
    count, salt)`` triple.  Duplicates are possible and kept: the digest
    is over the output *sequence*, so determinism matters more than
    coverage.
    """
    if count <= 0:
        raise FingerprintError(f"probe count must be positive, got {count}")
    return list(_probe_inputs_cached(num_lines, count, salt))


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
class Fingerprinter(ABC):
    """One identity strategy: can it fingerprint a target, and how.

    Attributes (class-level):
        name: human-readable strategy name (CLI / docs / errors).
        scheme: the scheme stamped on produced fingerprints.
        cost_rank: resolution order — the registry asks strategies in
            ascending rank and the first that ``supports`` the target
            wins, so cheaper/stronger identities shadow weaker ones.
    """

    name: str = "?"
    scheme: str = "?"
    cost_rank: int = 100

    @abstractmethod
    def supports(self, target) -> bool:
        """Whether this strategy can fingerprint ``target``."""

    @abstractmethod
    def fingerprint(self, target, ctx: FingerprintContext) -> OracleFingerprint:
        """Fingerprint a supported ``target`` (never charges oracle queries)."""


class TruthTableFingerprinter(Fingerprinter):
    """Exact functional identity: a digest of the full truth table.

    Canonical — any two representations of the same function collide —
    but exponential in width, so :meth:`supports` caps at
    ``width_limit`` lines.
    """

    name = "truth-table"
    scheme = "exact"
    cost_rank = 10

    def __init__(
        self,
        width_limit: int = FUNCTIONAL_WIDTH_LIMIT,
        batched: bool = True,
    ) -> None:
        if width_limit <= 0:
            raise FingerprintError(
                f"width limit must be positive, got {width_limit}"
            )
        self.width_limit = width_limit
        self.batched = batched

    def supports(self, target) -> bool:
        width = _width(target)
        return width is not None and width <= self.width_limit

    def _table(self, target) -> list[int]:
        if isinstance(target, Permutation):
            return list(target.mapping)
        if isinstance(target, ReversibleCircuit):
            if self.batched and bitslice.supports(target.gates):
                return bitslice.simulate_many(
                    target, range(1 << target.num_lines)
                )
            return target.truth_table()
        if isinstance(target, QuantumCircuitOracle):
            return list(target.permutation.mapping)
        # Any classical oracle, opaque or not: white-box tabulation without
        # charging queries.  evaluate_many keeps circuit-backed oracles on
        # the bitsliced path; peek_table is the scalar reference.
        if self.batched:
            return target.evaluate_many(range(1 << target.num_lines))
        return target.peek_table()

    def fingerprint(self, target, ctx: FingerprintContext) -> OracleFingerprint:
        table = self._table(target)
        return OracleFingerprint(
            num_lines=_width(target),
            kind="function",
            digest=_digest("tt:" + ",".join(str(value) for value in table)),
            with_inverse=ctx.with_inverse,
            scheme=self.scheme,
        )


class SampledProbeFingerprinter(Fingerprinter):
    """Width-independent identity: a digest of outputs on a fixed probe set.

    The probe set (:func:`probe_inputs`) depends only on the bit width,
    the salt and the probe count, so the digest is canonical across
    representations of the same function — including *opaque* oracles,
    which are evaluated through their white-box
    :meth:`~repro.oracles.oracle.ReversibleOracle.evaluate_many` hatch so
    fingerprinting stays free under the query-complexity accounting **and**
    bounded by the probe budget at every width: an opaque 16-line oracle
    costs ``probe_count`` evaluations, never a ``2**16``-entry tabulation
    (the ``peek_table`` cost cliff).  The whole probe set is evaluated in
    one batched call — bitsliced for circuit-backed targets — and batching
    is digest-invariant: ``batched=False`` keeps the scalar reference loop
    and produces byte-identical digests (the differential fingerprint
    tests hold the two paths together, so ``v2|`` cache keys never fork).
    The probe count bounds the work per fingerprint (the "probe budget");
    distinctness is probabilistic, as documented in ``docs/cache-keys.md``.
    """

    name = "sampled-probe"
    scheme = "probe"
    cost_rank = 20

    def __init__(
        self,
        probe_count: int = DEFAULT_PROBE_COUNT,
        salt: str = PROBE_SALT,
        batched: bool = True,
    ) -> None:
        if probe_count <= 0:
            raise FingerprintError(
                f"probe count must be positive, got {probe_count}"
            )
        self.probe_count = probe_count
        self.salt = salt
        self.batched = batched

    def supports(self, target) -> bool:
        return _width(target) is not None

    def _evaluator(self, target):
        if isinstance(target, Permutation):
            return target
        if isinstance(target, ReversibleCircuit):
            return target.simulate
        if isinstance(target, QuantumCircuitOracle):
            return target.permutation
        return target.peek

    def _outputs(self, target, probes: list[int]) -> list[int]:
        """The target's responses on the probe set, batched when possible."""
        if not self.batched:
            evaluate = self._evaluator(target)
            return [evaluate(value) for value in probes]
        if isinstance(target, Permutation):
            mapping = target.mapping
            return [mapping[value] for value in probes]
        if isinstance(target, ReversibleCircuit):
            if bitslice.supports(target.gates):
                return bitslice.simulate_many(target, probes)
            return [target.simulate(value) for value in probes]
        if isinstance(target, QuantumCircuitOracle):
            mapping = target.permutation.mapping
            return [mapping[value] for value in probes]
        return target.evaluate_many(probes)

    def fingerprint(self, target, ctx: FingerprintContext) -> OracleFingerprint:
        width = _width(target)
        outputs = self._outputs(
            target, probe_inputs(width, self.probe_count, self.salt)
        )
        payload = (
            f"probe:{self.salt}:{self.probe_count}:"
            + ",".join(str(value) for value in outputs)
        )
        return OracleFingerprint(
            num_lines=width,
            kind="probe",
            digest=_digest(payload),
            with_inverse=ctx.with_inverse,
            scheme=self.scheme,
        )


class StructureFingerprinter(Fingerprinter):
    """Last-resort structural identity: a digest of the gate cascade.

    Width-independent and free, but functionally equal circuits with
    different gates get different fingerprints — a cache miss, never a
    wrong hit.  Only circuits (and circuit-backed oracles) have structure
    to digest.
    """

    name = "structure"
    scheme = "structure"
    cost_rank = 30

    def supports(self, target) -> bool:
        return isinstance(target, (ReversibleCircuit, CircuitOracle))

    def fingerprint(self, target, ctx: FingerprintContext) -> OracleFingerprint:
        circuit = target.circuit if isinstance(target, CircuitOracle) else target
        payload = "gates:" + ";".join(repr(gate) for gate in circuit.gates)
        return OracleFingerprint(
            num_lines=circuit.num_lines,
            kind="structure",
            digest=_digest(payload),
            with_inverse=ctx.with_inverse,
            scheme=self.scheme,
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
class FingerprintRegistry:
    """An ordered collection of strategies resolving targets to identities.

    Resolution walks the registered strategies in ascending
    :attr:`~Fingerprinter.cost_rank` and uses the first whose
    :meth:`~Fingerprinter.supports` accepts the target — the same
    capability-registry shape :class:`repro.core.registry.MatcherRegistry`
    gave matcher dispatch.
    """

    def __init__(self, fingerprinters: tuple[Fingerprinter, ...] = ()) -> None:
        self._fingerprinters: list[Fingerprinter] = []
        for fingerprinter in fingerprinters:
            self.register(fingerprinter)

    def register(self, fingerprinter: Fingerprinter) -> Fingerprinter:
        """Add a strategy, keeping the collection sorted by cost rank."""
        self._fingerprinters.append(fingerprinter)
        self._fingerprinters.sort(key=lambda entry: entry.cost_rank)
        return fingerprinter

    @property
    def fingerprinters(self) -> tuple[Fingerprinter, ...]:
        """The registered strategies in resolution order."""
        return tuple(self._fingerprinters)

    def resolve(self, target) -> Fingerprinter:
        """The strategy that will fingerprint ``target``.

        Raises:
            FingerprintError: when no registered strategy supports it
                (e.g. an opaque wide oracle under the ``exact`` scheme).
        """
        for fingerprinter in self._fingerprinters:
            if fingerprinter.supports(target):
                return fingerprinter
        tried = ", ".join(f.name for f in self._fingerprinters) or "none"
        width = _width(target)
        what = (
            f"a {width}-line {type(target).__name__}"
            if width is not None
            else f"a {type(target).__name__}"
        )
        raise FingerprintError(
            f"cannot fingerprint {what} (strategies tried: {tried})"
        )

    def fingerprint(
        self, target, *, with_inverse: bool = False
    ) -> OracleFingerprint:
        """Fingerprint a circuit, permutation or oracle.

        Pre-built oracles contribute their own inverse availability; raw
        circuits and permutations take the ``with_inverse`` argument
        (mirroring how the engine coerces them).  Quantum oracles have no
        inverse access by construction.
        """
        if isinstance(target, ReversibleOracle):
            with_inverse = target.has_inverse
        elif isinstance(target, QuantumCircuitOracle):
            with_inverse = False
        strategy = self.resolve(target)
        return strategy.fingerprint(
            target, FingerprintContext(with_inverse=with_inverse)
        )


def build_registry(
    scheme: str = "auto",
    *,
    probe_count: int = DEFAULT_PROBE_COUNT,
    width_limit: int = FUNCTIONAL_WIDTH_LIMIT,
    salt: str = PROBE_SALT,
    batched: bool = True,
) -> FingerprintRegistry:
    """The standard registry for one of the :data:`FINGERPRINT_SCHEMES`.

    * ``auto`` — exact up to ``width_limit`` lines, sampled probes
      beyond, structure as the last resort (``probe_count=0`` disables
      the probe tier, restoring the v1 exact-then-structure behaviour).
    * ``exact`` — exact up to the limit, structure beyond; opaque wide
      oracles are unfingerprintable (bypass the cache).
    * ``probe`` — sampled probes at every width.

    ``batched=False`` pins every strategy to its scalar reference loop;
    digests are byte-identical either way (batching is evaluation
    strategy, not identity, so it is deliberately *not* part of
    :func:`config_digest`).
    """
    if scheme == "exact":
        strategies: tuple[Fingerprinter, ...] = (
            TruthTableFingerprinter(width_limit, batched=batched),
            StructureFingerprinter(),
        )
    elif scheme == "probe":
        strategies = (
            SampledProbeFingerprinter(probe_count, salt, batched=batched),
        )
    elif scheme == "auto":
        strategies = (TruthTableFingerprinter(width_limit, batched=batched),)
        if probe_count > 0:
            strategies += (
                SampledProbeFingerprinter(probe_count, salt, batched=batched),
            )
        strategies += (StructureFingerprinter(),)
    else:
        raise FingerprintError(
            f"unknown fingerprint scheme {scheme!r}; "
            f"known: {', '.join(FINGERPRINT_SCHEMES)}"
        )
    return FingerprintRegistry(strategies)


def registry_for_config(
    config: MatchingConfig, width_limit: int = FUNCTIONAL_WIDTH_LIMIT
) -> FingerprintRegistry:
    """A fresh registry describing a config's fingerprint knobs.

    Every call builds a new registry (three tiny objects — far cheaper
    than any digest it will compute), so a caller that ``register``\\ s a
    custom strategy on its copy can never mutate cache-key policy for
    other services or a running daemon in the same process.
    """
    return build_registry(
        config.fingerprint_scheme,
        probe_count=config.probe_count,
        width_limit=width_limit,
    )


def default_registry() -> FingerprintRegistry:
    """A fresh ``auto`` registry with default knobs."""
    return build_registry("auto")


def fingerprint(
    target,
    *,
    with_inverse: bool = False,
    width_limit: int = FUNCTIONAL_WIDTH_LIMIT,
    registry: FingerprintRegistry | None = None,
) -> OracleFingerprint:
    """Fingerprint a circuit, permutation or oracle (module-level wrapper).

    Delegates to ``registry`` (default: a fresh ``auto``-mode registry
    honouring ``width_limit``).  Kept for the many call sites that need
    one fingerprint without holding a registry.

    Raises:
        FingerprintError: when no strategy supports the target.
    """
    if registry is None:
        registry = build_registry("auto", width_limit=width_limit)
    return registry.fingerprint(target, with_inverse=with_inverse)


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------
def config_digest(config: MatchingConfig) -> str:
    """Digest of the policy knobs that can change a matching result.

    Derived from the *sorted, complete* ``dataclasses.asdict`` dump of the
    config — a new ``MatchingConfig`` field can never be silently omitted
    from the cache key — and version-prefixed alongside the v2 pair key.
    """
    payload = json.dumps(asdict(config), sort_keys=True)
    return _digest(f"cfg/{KEY_VERSION}:" + payload)[:16]


def pair_key(
    fp1: OracleFingerprint,
    fp2: OracleFingerprint,
    equivalence: EquivalenceType,
    config: MatchingConfig,
) -> str:
    """The versioned cache key for one matched pair under one policy.

    Contract (``docs/cache-keys.md``): a cached result may be replayed
    exactly when the key version, the two hidden functions (as seen by
    the configured fingerprint scheme), their inverse availability, the
    promised class and every policy knob of the config coincide.  The
    engine seed is deliberately *not* part of the key — any seed's
    witnesses are valid witnesses, so replays trade bitwise RNG
    reproducibility for hits (run with a cold cache when auditing
    determinism).
    """
    return (
        f"{KEY_PREFIX}{equivalence.label}|{fp1.key}|{fp2.key}|"
        f"{config_digest(config)}"
    )


def pair_key_schemes(key: str) -> tuple[str, str] | None:
    """The two fingerprint schemes recorded in a v2 pair key.

    Returns ``None`` for v1 or otherwise foreign keys — the hook cache
    statistics use to attribute hits per scheme without re-fingerprinting
    anything.
    """
    if not key.startswith(KEY_PREFIX):
        return None
    parts = key.split("|")
    if len(parts) != 5:
        return None
    schemes = []
    for fragment in parts[2:4]:
        fields = fragment.split(":")
        if len(fields) != 6 or not fields[0].startswith("fp/"):
            return None
        schemes.append(fields[2])
    return schemes[0], schemes[1]


def scheme_label(key: str) -> str:
    """A per-scheme counter label for a pair key (``"unversioned"`` for v1)."""
    schemes = pair_key_schemes(key)
    if schemes is None:
        return "unversioned"
    first, second = schemes
    return first if first == second else f"{first}+{second}"
