"""Canonical oracle fingerprints — stable cache keys for matching results.

A fingerprint identifies *what function* an oracle hides, not which Python
object wraps it, so two batches (or two processes, or two runs on different
days) that match the same pair under the same policy can share one cached
result.  Two flavours exist:

* ``function`` — a digest of the full truth table.  Canonical: any two
  representations of the same reversible function (a circuit, its
  resynthesis, the tabulated permutation) collide.  Exponential in the bit
  width, so it is only computed up to :data:`FUNCTIONAL_WIDTH_LIMIT` lines.
* ``structure`` — a digest of the gate cascade.  Cheap at any width but
  only structural: functionally equal circuits with different gates get
  different fingerprints (a cache miss, never a wrong hit).

The cache key for a matched pair (:func:`pair_key`) combines both
fingerprints with the equivalence class and a digest of the
:class:`~repro.core.engine.MatchingConfig` policy, because the policy
changes what a matcher may do (inverse access, quantum access, budgets) and
therefore what result is produced.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.permutation import Permutation
from repro.core.engine import MatchingConfig
from repro.core.equivalence import EquivalenceType
from repro.exceptions import FingerprintError
from repro.oracles.oracle import (
    CircuitOracle,
    PermutationOracle,
    ReversibleOracle,
)
from repro.quantum.oracle import QuantumCircuitOracle

__all__ = [
    "FUNCTIONAL_WIDTH_LIMIT",
    "OracleFingerprint",
    "fingerprint",
    "config_digest",
    "pair_key",
]

#: Widest circuit whose truth table is tabulated for a functional
#: fingerprint; beyond it circuits fall back to structural digests.
FUNCTIONAL_WIDTH_LIMIT = 14


@dataclass(frozen=True)
class OracleFingerprint:
    """Identity of one oracle for caching purposes.

    Attributes:
        num_lines: bit width of the hidden function.
        kind: ``"function"`` (truth-table digest, canonical) or
            ``"structure"`` (gate-cascade digest, width-independent).
        digest: hex SHA-256 of the canonical payload.
        with_inverse: whether matchers get inverse access to this oracle —
            part of the identity because it changes which algorithm runs.
    """

    num_lines: int
    kind: str
    digest: str
    with_inverse: bool = False

    @property
    def key(self) -> str:
        """The fingerprint rendered as a stable key fragment."""
        access = "inv" if self.with_inverse else "fwd"
        return f"{self.num_lines}:{self.kind}:{access}:{self.digest}"


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _table_fingerprint(
    table: list[int], num_lines: int, with_inverse: bool
) -> OracleFingerprint:
    return OracleFingerprint(
        num_lines=num_lines,
        kind="function",
        digest=_digest("tt:" + ",".join(str(value) for value in table)),
        with_inverse=with_inverse,
    )


def _structure_fingerprint(
    circuit: ReversibleCircuit, with_inverse: bool
) -> OracleFingerprint:
    payload = "gates:" + ";".join(repr(gate) for gate in circuit.gates)
    return OracleFingerprint(
        num_lines=circuit.num_lines,
        kind="structure",
        digest=_digest(payload),
        with_inverse=with_inverse,
    )


def fingerprint(
    target,
    *,
    with_inverse: bool = False,
    width_limit: int = FUNCTIONAL_WIDTH_LIMIT,
) -> OracleFingerprint:
    """Fingerprint a circuit, permutation or oracle.

    Args:
        target: a :class:`~repro.circuits.circuit.ReversibleCircuit`,
            :class:`~repro.circuits.permutation.Permutation`, classical
            :class:`~repro.oracles.oracle.ReversibleOracle` or
            :class:`~repro.quantum.oracle.QuantumCircuitOracle`.  Pre-built
            oracles contribute their own inverse availability; raw circuits
            and permutations take the ``with_inverse`` argument (mirroring
            how the engine coerces them).
        with_inverse: inverse-access flag for raw circuits/permutations.
        width_limit: widest function to fingerprint functionally.

    Raises:
        FingerprintError: for an opaque oracle (no white-box escape hatch
            would be exponential to tabulate) wider than ``width_limit``,
            or an unsupported type.
    """
    if isinstance(target, Permutation):
        return _table_fingerprint(
            list(target.mapping), target.num_bits, with_inverse
        )
    if isinstance(target, ReversibleCircuit):
        if target.num_lines <= width_limit:
            return _table_fingerprint(
                target.truth_table(), target.num_lines, with_inverse
            )
        return _structure_fingerprint(target, with_inverse)
    if isinstance(target, CircuitOracle):
        return fingerprint(
            target.circuit,
            with_inverse=target.has_inverse,
            width_limit=width_limit,
        )
    if isinstance(target, PermutationOracle):
        return fingerprint(
            target.permutation,
            with_inverse=target.has_inverse,
            width_limit=width_limit,
        )
    if isinstance(target, QuantumCircuitOracle):
        return fingerprint(
            target.permutation, with_inverse=False, width_limit=width_limit
        )
    if isinstance(target, ReversibleOracle):
        if target.num_lines > width_limit:
            raise FingerprintError(
                f"cannot fingerprint an opaque {target.num_lines}-line oracle "
                f"(functional limit is {width_limit} lines)"
            )
        return _table_fingerprint(
            target.peek_table(), target.num_lines, target.has_inverse
        )
    raise FingerprintError(
        f"cannot fingerprint a {type(target).__name__}"
    )


def config_digest(config: MatchingConfig) -> str:
    """Digest of the policy knobs that can change a matching result."""
    payload = (
        f"eps={config.epsilon!r}:quantum={config.allow_quantum}:"
        f"brute={config.allow_brute_force}:inv={config.with_inverse}:"
        f"budget={config.max_queries}"
    )
    return _digest(payload)[:16]


def pair_key(
    fp1: OracleFingerprint,
    fp2: OracleFingerprint,
    equivalence: EquivalenceType,
    config: MatchingConfig,
) -> str:
    """The cache key for one matched pair under one policy.

    Contract (recorded in ROADMAP.md): a cached result may be replayed
    exactly when the two hidden functions, their inverse availability, the
    promised class and every policy knob of the config coincide.  The
    engine seed is deliberately *not* part of the key — any seed's
    witnesses are valid witnesses, so replays trade bitwise RNG
    reproducibility for hits (run with a cold cache when auditing
    determinism).
    """
    return f"{equivalence.label}|{fp1.key}|{fp2.key}|{config_digest(config)}"
