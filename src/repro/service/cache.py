"""Result caches: in-memory LRU, on-disk store, and the engine adapter.

Caches map a :func:`~repro.service.fingerprint.pair_key` to a JSON record
``{"key": ..., "matcher": ..., "result": result_to_dict(...)}``.  Keeping
the value a plain JSON dict (rather than a live ``MatchingResult``) means
the memory tier, the disk tier and the JSONL run store all share one
format, and a cached entry read back from disk is byte-for-byte the entry
that was written.

:class:`EngineCacheAdapter` packages a cache behind the duck-typed
``lookup``/``store`` protocol that
:meth:`repro.core.engine.MatchingEngine.match_many` consults, computing
fingerprint keys on the engine's behalf so the core layer stays ignorant
of keying.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import warnings
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.engine import MatchingConfig
from repro.core.equivalence import EquivalenceType
from repro.core.problem import MatchingResult
from repro.exceptions import FingerprintError, ServiceError
from repro.service import serialize
from repro.service.fingerprint import (
    FUNCTIONAL_WIDTH_LIMIT,
    KEY_PREFIX,
    FingerprintRegistry,
    pair_key,
    registry_for_config,
    scheme_label,
)

__all__ = [
    "CacheStats",
    "ResultCache",
    "LRUCache",
    "DiskCache",
    "TieredCache",
    "build_cache",
    "migrate_cache",
    "EngineCacheAdapter",
]


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache tier.

    Attributes:
        scheme_hits: hits broken down by the fingerprint scheme(s) of the
            hitting key (``"exact"``, ``"probe"``, ``"structure"``, a
            ``"a+b"`` mix, or ``"unversioned"`` for foreign keys) — how
            the daemon's ``stats`` op reports where warm traffic comes
            from per scheme.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    scheme_hits: dict[str, int] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when none were made)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        """JSON-ready counters — the shape the daemon's ``stats`` op reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "scheme_hits": {
                label: self.scheme_hits[label]
                for label in sorted(self.scheme_hits)
            },
        }


class ResultCache(ABC):
    """A key -> JSON-record store with hit/miss accounting.

    Thread-safe at the public surface: the daemon shares one cache
    between its worker thread (which reads and writes entries) and its
    handler threads (whose ``stats`` op reads the counters), so ``get``
    and ``put`` serialise entry access *and* stats updates under one
    re-entrant lock.  Subclass hooks (``_get``/``_put``) always run with
    the lock held and must not take it themselves.

    :meth:`bind_metrics` optionally mirrors the counters into a
    duck-typed metrics registry (``repro_cache_*_total`` with a ``tier``
    label, see ``docs/observability.md``); increments happen inside the
    same lock as the :class:`CacheStats` updates, so the two views always
    reconcile exactly.
    """

    metrics_tier = "cache"

    def __init__(self) -> None:
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._metrics = None

    def bind_metrics(self, registry, tier: str | None = None) -> None:
        """Mirror this tier's counters into ``registry`` from now on."""
        with self._lock:
            self._metrics = registry
            if tier is not None:
                self.metrics_tier = tier

    @abstractmethod
    def _get(self, key: str) -> dict | None:
        """Fetch the record for ``key`` or ``None``."""

    @abstractmethod
    def _put(self, key: str, record: dict) -> None:
        """Store ``record`` under ``key`` (overwriting)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of records currently stored."""

    def get(self, key: str) -> dict | None:
        """Look up ``key``, updating the hit/miss (and per-scheme) statistics."""
        with self._lock:
            record = self._get(key)
            if record is None:
                self.stats.misses += 1
                if self._metrics is not None:
                    self._metrics.counter("repro_cache_misses_total").inc(
                        tier=self.metrics_tier
                    )
            else:
                self.stats.hits += 1
                label = scheme_label(key)
                self.stats.scheme_hits[label] = (
                    self.stats.scheme_hits.get(label, 0) + 1
                )
                if self._metrics is not None:
                    self._metrics.counter("repro_cache_hits_total").inc(
                        tier=self.metrics_tier
                    )
            return record

    def put(self, key: str, record: dict) -> None:
        """Store ``record`` under ``key``, updating the store counter."""
        with self._lock:
            self._put(key, record)
            self.stats.stores += 1
            if self._metrics is not None:
                self._metrics.counter("repro_cache_stores_total").inc(
                    tier=self.metrics_tier
                )


class LRUCache(ResultCache):
    """Bounded in-memory cache with least-recently-used eviction."""

    metrics_tier = "memory"

    def __init__(self, maxsize: int = 4096) -> None:
        super().__init__()
        if maxsize <= 0:
            raise ValueError(f"LRU cache needs a positive maxsize, got {maxsize}")
        self._maxsize = maxsize
        self._entries: OrderedDict[str, dict] = OrderedDict()

    @property
    def maxsize(self) -> int:
        """Capacity in records."""
        return self._maxsize

    def _get(self, key: str) -> dict | None:
        record = self._entries.get(key)
        if record is not None:
            self._entries.move_to_end(key)
        return record

    def _put(self, key: str, record: dict) -> None:
        self._entries[key] = record
        self._entries.move_to_end(key)
        while len(self._entries) > self._maxsize:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            if self._metrics is not None:
                self._metrics.counter("repro_cache_evictions_total").inc(
                    tier=self.metrics_tier
                )

    def __len__(self) -> int:
        return len(self._entries)


class DiskCache(ResultCache):
    """One-JSON-file-per-key cache surviving process restarts.

    Filenames are the SHA-256 of the key, so arbitrary key strings are
    safe; the full key is stored inside the record and checked on read, so
    a (cosmically unlikely) filename collision degrades to a miss rather
    than a wrong result.  Writes go through a per-process temp file +
    ``os.replace`` so a crash mid-write leaves no torn record, two shard
    runs sharing a cache directory never clobber each other's in-flight
    writes, and an unreadable or corrupt file reads as a miss.
    """

    metrics_tier = "disk"

    def __init__(self, directory: str | os.PathLike) -> None:
        super().__init__()
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        """The backing directory."""
        return self._directory

    def _path(self, key: str) -> Path:
        name = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self._directory / f"{name}.json"

    def _get(self, key: str) -> dict | None:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
        except OSError:
            # Missing file: the ordinary miss.  Other I/O refusals read
            # as misses too — correctness never depends on a hit.
            return None
        except ValueError:
            # Torn entry.  Our own writers publish atomically (temp file
            # + os.replace), but a cache directory shared over NFS-style
            # storage can expose a reader to a partially synced file —
            # truncated JSON or even invalid UTF-8 (UnicodeDecodeError
            # is a ValueError, not a JSONDecodeError).  Mirror the
            # result store's torn-line rule: warn, count it a miss, and
            # let the pair re-run.
            warnings.warn(
                f"{path}: skipping undecodable cache entry "
                "(torn shared-disk write?); treating as a miss",
                RuntimeWarning,
                stacklevel=4,
            )
            return None
        if not isinstance(envelope, dict):
            warnings.warn(
                f"{path}: cache entry is not an envelope object; "
                "treating as a miss",
                RuntimeWarning,
                stacklevel=4,
            )
            return None
        if envelope.get("key") != key:
            return None
        record = envelope.get("record")
        return record if isinstance(record, dict) else None

    def _put(self, key: str, record: dict) -> None:
        path = self._path(key)
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"key": key, "record": record}, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def __len__(self) -> int:
        return sum(1 for _ in self._directory.glob("*.json"))


class TieredCache(ResultCache):
    """A fast tier in front of a persistent tier (read-through, write-both).

    Hits in the slow tier are promoted into the fast tier; every store goes
    to both, so the slow tier is the authoritative record set.
    """

    metrics_tier = "tiered"

    def __init__(self, fast: ResultCache, slow: ResultCache) -> None:
        super().__init__()
        self._fast = fast
        self._slow = slow

    def bind_metrics(self, registry, tier: str | None = None) -> None:
        """Bind this tier and both member tiers (each keeps its own label)."""
        super().bind_metrics(registry, tier=tier)
        # Outside our own lock: each member tier serialises the assignment
        # under its own lock, and nesting their locks inside ours would
        # invert the get/put ordering.
        self._fast.bind_metrics(registry)
        self._slow.bind_metrics(registry)

    @property
    def fast(self) -> ResultCache:
        """The front (typically in-memory) tier."""
        return self._fast

    @property
    def slow(self) -> ResultCache:
        """The authoritative (typically on-disk) tier."""
        return self._slow

    def prefetch(self, keys) -> None:
        """Forward a batch-lookup hint to every member tier that takes one.

        Local tiers have no ``prefetch`` and ignore the hint; a
        :class:`~repro.cachenet.remote.RemoteCache` member resolves the
        whole batch in one ``get_many`` round trip.  Stats are untouched
        — lookups are counted when ``get`` consumes them.  Deliberately
        outside this tier's lock, mirroring :meth:`bind_metrics`: each
        member serialises under its own lock.
        """
        for member in (self._fast, self._slow):
            hook = getattr(member, "prefetch", None)
            if hook is not None:
                hook(keys)

    def _get(self, key: str) -> dict | None:
        record = self._fast.get(key)
        if record is not None:
            return record
        record = self._slow.get(key)
        if record is not None:
            self._fast.put(key, record)
        return record

    def _put(self, key: str, record: dict) -> None:
        self._fast.put(key, record)
        self._slow.put(key, record)

    def __len__(self) -> int:
        return len(self._slow)


def build_cache(
    memory_size: int = 4096,
    disk_dir: str | os.PathLike | None = None,
    remote: str | None = None,
    remote_auth_token: str | None = None,
) -> ResultCache:
    """The standard cache stack: LRU, optional disk tier, optional remote tier.

    With ``remote`` (a ``unix:<path>`` / ``tcp:<host>:<port>`` cache-server
    address, see ``docs/remote-cache.md``) the local stack fronts a
    :class:`~repro.cachenet.remote.RemoteCache`: local misses fall
    through to the shared server, remote hits are promoted locally, and
    every store is written through — so a fleet of runs shares one
    warm-hit pool.  The remote tier degrades to a no-op if the server is
    unreachable; it can slow a run down, never fail one.
    """
    memory = LRUCache(maxsize=memory_size)
    local: ResultCache = memory
    if disk_dir is not None:
        local = TieredCache(memory, DiskCache(disk_dir))
    if remote is None:
        return local
    # Lazy import: repro.cachenet imports this module for the cache
    # contract, so the service layer must only reach back at call time.
    from repro.cachenet.remote import RemoteCache

    return TieredCache(
        local, RemoteCache.from_address(remote, auth_token=remote_auth_token)
    )


def migrate_cache(
    directory: str | os.PathLike, *, drop_v1: bool = False
) -> dict:
    """Inventory (and optionally clean) a disk cache across key versions.

    v1 entries can never be replayed under the v2 key contract — their
    keys lack the ``v2|`` prefix, so every v2 lookup hashes to a
    different filename and reads as a clean miss.  They only cost disk
    space; this is the ``repro cache migrate`` maintenance path that
    reclaims it.

    Args:
        directory: a :class:`DiskCache` backing directory.
        drop_v1: delete every entry that is not a current-version record
            (v1 keys and unreadable envelopes alike — neither can ever
            hit again).

    Returns:
        Counters: ``{"v2": ..., "v1": ..., "unreadable": ..., "dropped": ...}``.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ServiceError(f"{directory}: not a cache directory")
    counts = {"v2": 0, "v1": 0, "unreadable": 0, "dropped": 0}
    for path in sorted(directory.glob("*.json")):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                envelope = json.load(handle)
            key = envelope.get("key") if isinstance(envelope, dict) else None
        except (OSError, json.JSONDecodeError):
            key = None
            counts["unreadable"] += 1
        else:
            if isinstance(key, str) and key.startswith(KEY_PREFIX):
                counts["v2"] += 1
                continue
            counts["v1"] += 1
        if drop_v1:
            path.unlink(missing_ok=True)
            counts["dropped"] += 1
    return counts


@dataclass
class EngineCacheAdapter:
    """Bridge a :class:`ResultCache` to the engine's ``result_cache`` hook.

    Implements the ``lookup``/``store`` protocol documented on
    :meth:`repro.core.engine.MatchingEngine.match_many`: fingerprints the
    pair, derives the :func:`~repro.service.fingerprint.pair_key`, and
    (de)serialises results at the boundary.  Unfingerprintable inputs
    (opaque wide oracles under the ``exact`` scheme) silently bypass the
    cache — correctness never depends on a hit.

    Attributes:
        cache: the backing store.
        width_limit: functional-fingerprint width cutoff (only consulted
            when no explicit registry is injected).
        registry: the :class:`~repro.service.fingerprint.FingerprintRegistry`
            keys are computed with; ``None`` derives one per lookup from
            the config's fingerprint knobs (cheap — far below the cost of
            the digests it computes).
    """

    cache: ResultCache
    width_limit: int = FUNCTIONAL_WIDTH_LIMIT
    registry: FingerprintRegistry | None = None

    def __post_init__(self) -> None:
        # One-slot memo bridging the engine's lookup -> store round trip:
        # on a miss the engine calls both for the same pair back to back,
        # and each key computation tabulates two truth tables.  `lookup`
        # fills the slot, `store` consumes it, so the memo never outlives
        # one pair — a circuit mutated in place between batches can never
        # be served a stale key.  The strong references pin the circuits'
        # id()s against recycling while the slot is live.
        self._pending: tuple[tuple, str] | None = None

    def key_for(
        self,
        circuit1,
        circuit2,
        equivalence: EquivalenceType,
        config: MatchingConfig,
    ) -> str:
        """The cache key this adapter uses for a pair (raises on unsupported input)."""
        registry = self.registry
        if registry is None:
            registry = registry_for_config(config, self.width_limit)
        fp1 = registry.fingerprint(circuit1, with_inverse=config.with_inverse)
        fp2 = registry.fingerprint(circuit2, with_inverse=config.with_inverse)
        return pair_key(fp1, fp2, equivalence, config)

    def _pending_key(
        self, circuit1, circuit2, equivalence, config
    ) -> str | None:
        if self._pending is None:
            return None
        (c1, c2, eq, cfg), key = self._pending
        self._pending = None
        if c1 is circuit1 and c2 is circuit2 and eq is equivalence and cfg == config:
            return key
        return None

    def lookup(
        self,
        circuit1,
        circuit2,
        equivalence: EquivalenceType,
        config: MatchingConfig,
    ) -> tuple[MatchingResult, str | None] | None:
        """Return ``(result, matcher_name)`` on a hit, ``None`` otherwise."""
        try:
            key = self.key_for(circuit1, circuit2, equivalence, config)
        except FingerprintError:
            return None
        self._pending = ((circuit1, circuit2, equivalence, config), key)
        record = self.cache.get(key)
        if record is None or record.get("result") is None:
            # Failure records (stored by the service pipeline) have no
            # result; the engine hook has no failure channel, so they read
            # as misses and the pair is simply re-dispatched.
            return None
        return serialize.result_from_dict(record["result"]), record.get("matcher")

    def store(
        self,
        circuit1,
        circuit2,
        equivalence: EquivalenceType,
        config: MatchingConfig,
        result: MatchingResult,
        matcher: str | None = None,
    ) -> None:
        """Record a freshly computed result (no-op on unfingerprintable input)."""
        key = self._pending_key(circuit1, circuit2, equivalence, config)
        if key is None:
            try:
                key = self.key_for(circuit1, circuit2, equivalence, config)
            except FingerprintError:
                return
        self.cache.put(
            key,
            {"matcher": matcher, "result": serialize.result_to_dict(result)},
        )
