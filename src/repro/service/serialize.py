"""JSON (de)serialisation of matching results and batch records.

Both persistence surfaces of the service layer — the on-disk result cache
and the JSONL run store — need :class:`~repro.core.problem.MatchingResult`
as plain JSON, and the process-pool executor ships results between
processes in the same form so serial and parallel runs produce literally
identical records.  Witness fields map to JSON naturally (negations become
0/1 lists, line permutations become mapping lists); free-form metadata is
sanitised value-by-value because matchers may stash arbitrary objects
there.
"""

from __future__ import annotations

from repro.circuits.line_permutation import LinePermutation
from repro.core.equivalence import EquivalenceType
from repro.core.problem import MatchingResult

__all__ = ["json_safe", "result_to_dict", "result_from_dict"]


def json_safe(value):
    """Recursively coerce ``value`` into JSON-serialisable builtins.

    Dicts and lists/tuples are walked; scalars pass through; anything else
    (a LinePermutation in matcher metadata, say) is stringified rather than
    dropped, so records stay lossless enough to read while always
    serialising.

    Dict entries are emitted in sorted (stringified) key order: metadata
    dicts reach cache entries and JSONL records byte-for-byte, so their
    serialised form must not depend on insertion or hash order.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {
            str(key): json_safe(item)
            for key, item in sorted(
                value.items(), key=lambda entry: str(entry[0])
            )
        }
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    return str(value)


def _negation_to_json(nu: tuple[bool, ...] | None) -> list[int] | None:
    if nu is None:
        return None
    return [1 if flag else 0 for flag in nu]


def _permutation_to_json(pi: LinePermutation | None) -> list[int] | None:
    if pi is None:
        return None
    return list(pi.mapping)


def result_to_dict(result: MatchingResult) -> dict:
    """Serialise a result (witnesses, query accounting, metadata) to JSON."""
    return {
        "equivalence": result.equivalence.label,
        "nu_x": _negation_to_json(result.nu_x),
        "pi_x": _permutation_to_json(result.pi_x),
        "nu_y": _negation_to_json(result.nu_y),
        "pi_y": _permutation_to_json(result.pi_y),
        "queries": result.queries,
        "quantum_queries": result.quantum_queries,
        "swap_tests": result.swap_tests,
        "metadata": json_safe(result.metadata),
    }


def result_from_dict(data: dict) -> MatchingResult:
    """Rebuild a :class:`MatchingResult` from :func:`result_to_dict` output.

    ``MatchingResult.__post_init__`` re-coerces the witness fields, so the
    0/1 lists and mapping lists round-trip into tuples of bools and
    :class:`LinePermutation` instances.
    """
    return MatchingResult(
        equivalence=EquivalenceType.from_label(data["equivalence"]),
        nu_x=data.get("nu_x"),
        pi_x=data.get("pi_x"),
        nu_y=data.get("nu_y"),
        pi_y=data.get("pi_y"),
        queries=data.get("queries", 0),
        quantum_queries=data.get("quantum_queries", 0),
        swap_tests=data.get("swap_tests", 0),
        metadata=dict(data.get("metadata") or {}),
    )
