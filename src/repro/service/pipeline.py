"""The :class:`MatchingService` — cache + executor + engine as a pipeline.

The service is the production front door the ROADMAP asks for, and its
primitive is **streaming**: :meth:`MatchingService.stream` is a generator
of typed :mod:`repro.service.events` — it takes a corpus manifest (or
in-memory pairs), skips whatever a previous run already answered (resume
via the JSONL result store), answers whatever an earlier batch or run
already answered (the result cache, consulted *before* any oracle is
built — a warm-cache run performs zero oracle queries), hands the
remainder to an execution backend's as-completed stream, and appends one
JSON record per pair to the store the moment the pair finishes.
:meth:`~MatchingService.run_manifest` and :meth:`~MatchingService.match_pairs`
are thin consumers of that stream that forward events to registered
:class:`~repro.service.events.Observer`\\ s and return the final
:class:`ServiceReport`.

Runs shard: ``shard=(i, n)`` deterministically keeps the pairs whose id
hashes to bucket ``i`` of ``n`` (:func:`shard_index`), with per-pair
seeds still derived from the *manifest* position — so the union of the
``n`` shard stores (:func:`merge_stores`) is byte-identical to the store
of one unsharded run.

Records are JSON dicts end to end — the executor, the cache and the
store all speak :mod:`repro.service.serialize` — so a serial run, a
4-worker run, an overlap run and a cache replay of the same manifest
write interchangeable stores.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import time
import warnings
from collections import deque
from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from repro.analysis.report import format_table
from repro.core.engine import MatchingConfig
from repro.core.equivalence import EquivalenceType
from repro.core.verify import verify_match
from repro.exceptions import FingerprintError, ServiceError
from repro.service import serialize
from repro.service.cache import ResultCache
from repro.service.events import (
    CacheHit,
    Observer,
    RunCompleted,
    RunStarted,
    ServiceEvent,
    StoreFlushed,
    TaskCompleted,
    TaskFailed,
    TaskStarted,
)
from repro.service.executor import (
    Executor,
    PairTask,
    SerialExecutor,
    derive_seed,
)
from repro.service.fingerprint import (
    KEY_VERSION,
    FingerprintRegistry,
    pair_key,
    registry_for_config,
)
from repro.service.workload import (
    MANIFEST_NAME,
    CorpusManifest,
    load_entry_circuits,
)

__all__ = [
    "ResultStore",
    "ServiceReport",
    "MatchingService",
    "RUN_META_FORMAT",
    "parse_shard",
    "shard_index",
    "merge_stores",
]

#: Format tag of the per-run ``<store>.meta.json`` timing sidecar.
RUN_META_FORMAT = "repro-run-meta/v1"


class _NullSpan:
    """Placeholder span when tracing is off."""

    __slots__ = ()
    span_id = None

    def end(self) -> None:
        return None


class _NullTracer:
    """Do-nothing tracer, so the pipeline never branches on tracing.

    The service takes tracers duck-typed (``repro.service`` never imports
    ``repro.obs``); pass a :class:`repro.obs.trace.Tracer` to get a real
    span log with the same call sites.
    """

    def start(self, name, parent=None, **attrs):
        return _NULL_SPAN

    @contextlib.contextmanager
    def span(self, name, parent=None, **attrs):
        yield _NULL_SPAN

    def record(self, name, duration_s, parent=None, **attrs):
        return _NULL_SPAN


_NULL_SPAN = _NullSpan()
_NULL_TRACER = _NullTracer()


class ResultStore:
    """Append-only JSONL store of per-pair run records, keyed by pair id.

    One JSON object per line; :meth:`load` tolerates a torn final line (a
    crash mid-append) by skipping, with a warning, anything that does not
    parse — which is exactly what resume needs: the half-written pair is
    simply re-run.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        #: Unparseable lines skipped by the most recent :meth:`load` —
        #: surfaced as the ``repro_store_torn_lines`` gauge and in
        #: ``repro report``, so silent corruption stays visible.
        self.torn_lines = 0

    @property
    def path(self) -> Path:
        """The JSONL file backing the store."""
        return self._path

    @property
    def exists(self) -> bool:
        """Whether the store file exists on disk."""
        return self._path.exists()

    def load(self) -> dict[str, dict]:
        """Read all complete records, newest occurrence of each pair winning.

        Unparseable lines (a crash mid-append leaves at most one, at the
        end) are skipped with a :class:`UserWarning` naming the line, so a
        resume both survives the torn record and tells the operator it
        happened; :attr:`torn_lines` counts them for this load.
        """
        records: dict[str, dict] = {}
        self.torn_lines = 0
        if not self.exists:
            return records
        with open(self._path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self.torn_lines += 1
                    warnings.warn(
                        f"{self._path}:{lineno}: skipping truncated or "
                        "malformed record (crash mid-append?); the pair "
                        "will be re-run on resume",
                        stacklevel=2,
                    )
                    continue
                pair_id = record.get("pair_id")
                if isinstance(pair_id, str):
                    records[pair_id] = record
        return records

    def touch(self) -> None:
        """Materialise the (possibly empty) store file on disk.

        Runs call this up front so a shard that owns zero pairs still
        leaves a store behind — ``repro merge`` can then take one store
        per shard without guessing which shards happened to be empty.
        """
        self._path.touch(exist_ok=True)

    def append(self, record: dict) -> None:
        """Append one record and flush it to disk.

        If a crash left the file without a trailing newline (a torn
        record), a newline is inserted first — otherwise the new record
        would concatenate onto the partial line and both would be lost.
        """
        with open(self._path, "a+b") as handle:
            handle.seek(0, os.SEEK_END)
            if handle.tell() > 0:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
            handle.write((json.dumps(record) + "\n").encode("utf-8"))
            handle.flush()


# ---------------------------------------------------------------------------
# Sharding and merging
# ---------------------------------------------------------------------------
def parse_shard(spec: str) -> tuple[int, int]:
    """Parse an ``"i/n"`` shard spec into a validated ``(index, count)``."""
    index_text, _, count_text = spec.partition("/")
    try:
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ServiceError(
            f"shard must look like 'i/n' (e.g. 0/3), got {spec!r}"
        ) from None
    if count <= 0:
        raise ServiceError(f"shard count must be positive, got {count}")
    if not 0 <= index < count:
        raise ServiceError(
            f"shard index must be in [0, {count}), got {index}"
        )
    return index, count


def shard_index(pair_id: str, count: int) -> int:
    """The shard bucket of a pair id — a stable SHA-256 partition.

    Hashing (rather than round-robin by position) keeps the partition
    independent of manifest ordering and identical on every machine, so
    ``n`` hosts can each run their shard of the same manifest with no
    coordination beyond agreeing on ``n``.
    """
    if count <= 0:
        raise ServiceError(f"shard count must be positive, got {count}")
    digest = hashlib.sha256(pair_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % count


def merge_stores(
    output: str | Path, inputs: Sequence[str | Path]
) -> int:
    """Union shard result stores into one, ordered by manifest index.

    Each input is read through :meth:`ResultStore.load` (newest record per
    pair wins; torn lines are skipped with a warning), the union is sorted
    by the records' manifest ``index``, and the result is written fresh to
    ``output``.  Because shard runs keep manifest positions (and therefore
    per-pair seeds), merging the ``n`` shard stores of a manifest
    reproduces the unsharded *serial* run's store byte for byte — shard
    stores written by a ``--workers N`` run are completion-ordered, but
    the index sort makes the merged output identical either way.

    Returns:
        The number of records written.

    Raises:
        ServiceError: when an input store is missing or the inputs share a
            pair id with conflicting records (overlapping, non-disjoint
            shards).
    """
    merged: dict[str, dict] = {}
    for path in inputs:
        store = ResultStore(path)
        if not store.exists:
            raise ServiceError(f"{store.path}: result store does not exist")
        for pair_id, record in store.load().items():
            previous = merged.get(pair_id)
            if previous is not None and previous != record:
                raise ServiceError(
                    f"pair {pair_id!r} has conflicting records across the "
                    "input stores; shards of one run never overlap, so "
                    "these stores do not belong to the same run"
                )
            merged[pair_id] = record
    records = sorted(
        merged.values(),
        key=lambda record: (record.get("index", 0), record.get("pair_id", "")),
    )
    output = Path(output)
    # Publish atomically: an interrupted merge must not leave a torn
    # store where a complete shard store (or a previous merge) stood.
    tmp = output.with_suffix(output.suffix + f".{os.getpid()}.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, output)
    return len(records)


def _write_run_meta(store: ResultStore, report: "ServiceReport", seed) -> None:
    """Publish the run's ``<store>.meta.json`` timing sidecar atomically.

    Store records are byte-identical across serial, parallel and sharded
    runs, so wall-clock facts must never enter them; this sidecar carries
    the run's aggregate timing instead, and ``repro report`` merges it
    back into the per-store summary.  Written via tmp + rename so a crash
    mid-write cannot leave a torn sidecar.
    """
    meta = {
        "format": RUN_META_FORMAT,
        "store": store.path.name,
        "executor": report.executor,
        "seed": seed,
        "elapsed": report.elapsed,
        "total": report.total,
        "matched": report.matched,
        "failed": report.failed,
        "resumed": report.resumed,
        "cache_hits": report.cache_hits,
        "executed": report.executed,
        "torn_lines": store.torn_lines,
        "shard": list(report.shard) if report.shard is not None else None,
    }
    path = store.path.with_name(store.path.name + ".meta.json")
    tmp = path.with_name(path.name + f".{os.getpid()}.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class ServiceReport:
    """Outcome of one service run: per-pair records plus throughput stats.

    Attributes:
        records: one JSON record per pair, in manifest order.  Statuses:
            ``ok`` (freshly executed), ``failed`` (matcher raised),
            ``cached`` (served by the result cache) and whatever a resumed
            record carried when it was first written.
        resumed: how many pairs were skipped because the store already had
            them.
        executed: how many pairs actually went through an executor.
        elapsed: wall-clock seconds for the run.
        shard: the ``(index, count)`` shard this run covered, if any.
    """

    def __init__(
        self,
        records: list[dict],
        *,
        resumed: int,
        cache_hits: int,
        executed: int,
        elapsed: float,
        executor: str,
        store_path: Path | None = None,
        shard: tuple[int, int] | None = None,
    ) -> None:
        self.records = records
        self.resumed = resumed
        self.cache_hits = cache_hits
        self.executed = executed
        self.elapsed = elapsed
        self.executor = executor
        self.store_path = store_path
        self.shard = shard

    # -- aggregates ------------------------------------------------------------
    @property
    def total(self) -> int:
        """Number of pairs this run accounted for."""
        return len(self.records)

    @property
    def matched(self) -> int:
        """Pairs with witnesses (fresh, cached or resumed)."""
        return sum(1 for record in self.records if record.get("result"))

    @property
    def failed(self) -> int:
        """Pairs whose matcher raised (fresh, cached or resumed)."""
        return self.total - self.matched

    @property
    def classical_queries(self) -> int:
        """Classical oracle queries spent on freshly executed pairs."""
        return sum(
            record["result"]["queries"]
            for record in self.records
            if record.get("status") == "ok" and record.get("result")
        )

    @property
    def quantum_queries(self) -> int:
        """Quantum oracle queries spent on freshly executed pairs."""
        return sum(
            record["result"]["quantum_queries"]
            for record in self.records
            if record.get("status") == "ok" and record.get("result")
        )

    @property
    def pairs_per_second(self) -> float:
        """Throughput over the pairs actually processed this run."""
        processed = self.executed + self.cache_hits
        if processed == 0 or self.elapsed <= 0:
            return 0.0
        return processed / self.elapsed

    # -- rendering -------------------------------------------------------------
    def as_rows(self) -> list[tuple[object, ...]]:
        """Table rows (pair, class, family, status, matcher, queries, quantum)."""
        rows: list[tuple[object, ...]] = []
        for record in self.records:
            result = record.get("result") or {}
            rows.append(
                (
                    record.get("pair_id", record.get("index", "-")),
                    record.get("equivalence", "-"),
                    record.get("family") or "-",
                    record.get("status", "-"),
                    record.get("matcher") or "-",
                    result.get("queries", 0),
                    result.get("quantum_queries", 0),
                )
            )
        return rows

    def to_table(self, title: str | None = None) -> str:
        """Render the run through :func:`repro.analysis.report.format_table`."""
        return format_table(
            ["pair", "class", "family", "status", "matcher", "queries", "quantum"],
            self.as_rows(),
            title=title,
        )

    def summary(self) -> str:
        """One-line aggregate with throughput."""
        prefix = ""
        if self.shard is not None:
            prefix = f"shard {self.shard[0]}/{self.shard[1]}: "
        return (
            f"{prefix}{self.matched}/{self.total} matched ({self.failed} failed), "
            f"{self.cache_hits} cached, {self.resumed} resumed, "
            f"{self.executed} executed via {self.executor} in "
            f"{self.elapsed:.2f}s ({self.pairs_per_second:.1f} pairs/s); "
            f"{self.classical_queries} classical + "
            f"{self.quantum_queries} quantum queries spent"
        )


class _Unit:
    """One pair flowing through the pipeline (internal bookkeeping)."""

    __slots__ = ("position", "pair_id", "circuit1", "circuit2", "label", "meta", "key")

    def __init__(self, position, pair_id, circuit1, circuit2, label, meta):
        self.position = position
        self.pair_id = pair_id
        self.circuit1 = circuit1
        self.circuit2 = circuit2
        self.label = label
        self.meta = meta
        self.key = None


class MatchingService:
    """High-throughput, cached, resumable, shard-aware matching over corpora.

    Args:
        config: the :class:`~repro.core.engine.MatchingConfig` policy every
            pair is matched under (also part of every cache key).
        executor: execution backend; defaults to
            :class:`~repro.service.executor.SerialExecutor`.
        cache: optional :class:`~repro.service.cache.ResultCache` consulted
            per pair before any oracle exists.
        verify: exhaustively verify the witnesses of freshly executed
            pairs (white-box, exponential in width — meant for corpora of
            small circuits, where it catches promise-violating
            near-misses; recorded as ``verified`` on the run record).
        observers: :class:`~repro.service.events.Observer` objects notified
            of every event by the consuming entry points
            (:meth:`run_manifest` / :meth:`match_pairs`; the raw
            :meth:`stream` generator leaves delivery to its caller).
        fingerprint_registry: the
            :class:`~repro.service.fingerprint.FingerprintRegistry` cache
            keys and pair digests are computed with; defaults to the one
            the config's ``fingerprint_scheme``/``probe_count`` knobs
            describe.
        metrics: optional metrics registry (duck-typed
            :class:`repro.obs.metrics.MetricsRegistry`): runs, per-pair
            outcomes, task/run latency histograms and store flushes are
            counted on it.  Bind the same registry to the cache
            (``cache.bind_metrics``) for per-tier hit/miss counters.
        tracer: optional span tracer (duck-typed
            :class:`repro.obs.trace.Tracer`): each pair gets a root
            ``pair`` span with ``fingerprint`` / ``cache_probe`` /
            ``match`` / ``store_append`` children.
    """

    def __init__(
        self,
        config: MatchingConfig | None = None,
        *,
        executor: Executor | None = None,
        cache: ResultCache | None = None,
        verify: bool = False,
        observers: Sequence[Observer] = (),
        fingerprint_registry: FingerprintRegistry | None = None,
        metrics=None,
        tracer=None,
    ) -> None:
        self._config = config if config is not None else MatchingConfig()
        self._executor = executor if executor is not None else SerialExecutor()
        self._cache = cache
        self._verify = verify
        self._observers = tuple(observers)
        self._registry = (
            fingerprint_registry
            if fingerprint_registry is not None
            else registry_for_config(self._config)
        )
        self._metrics = metrics
        self._tracer = tracer if tracer is not None else _NULL_TRACER

    # -- introspection ---------------------------------------------------------
    @property
    def config(self) -> MatchingConfig:
        """The matching policy."""
        return self._config

    @property
    def executor(self) -> Executor:
        """The execution backend."""
        return self._executor

    @property
    def cache(self) -> ResultCache | None:
        """The result cache, if any."""
        return self._cache

    @property
    def observers(self) -> tuple[Observer, ...]:
        """The observers registered at construction."""
        return self._observers

    @property
    def fingerprint_registry(self) -> FingerprintRegistry:
        """The identity registry cache keys are computed with."""
        return self._registry

    @property
    def metrics(self):
        """The metrics registry runs are counted on, if any."""
        return self._metrics

    # -- internal --------------------------------------------------------------
    def _cache_key(self, unit: _Unit) -> str | None:
        if self._cache is None:
            return None
        try:
            fp1 = self._registry.fingerprint(
                unit.circuit1, with_inverse=self._config.with_inverse
            )
            fp2 = self._registry.fingerprint(
                unit.circuit2, with_inverse=self._config.with_inverse
            )
        except FingerprintError:
            return None
        equivalence = EquivalenceType.from_label(unit.label)
        return pair_key(fp1, fp2, equivalence, self._config)

    def _base_record(self, unit: _Unit) -> dict:
        record = {
            "pair_id": unit.pair_id,
            "index": unit.position,
            "equivalence": unit.label,
            "cache_key": unit.key,
            "key_version": KEY_VERSION,
        }
        record.update(unit.meta)
        return record

    @staticmethod
    def _replayable(done: dict[str, dict]) -> dict[str, dict]:
        """The store records resume may trust: current key version only.

        Records written under an older identity contract (v1 stores have
        no ``key_version`` field) are treated as clean misses — the pair
        is simply re-run — so a version bump can never replay a result
        the current fingerprint scheme would not have produced.
        """
        return {
            pair_id: record
            for pair_id, record in done.items()
            if record.get("key_version") == KEY_VERSION
        }

    def _stream_units(
        self,
        units: list[_Unit],
        *,
        done: dict[str, dict],
        store: ResultStore | None,
        seed: int | None,
        shard: tuple[int, int] | None = None,
    ) -> Iterator[ServiceEvent]:
        """The event-stream core every entry point is built on.

        Phase one walks the units in manifest order, settling whatever the
        result store (resume) or the result cache already answers — no
        oracle is ever built for those.  Phase two feeds the remainder to
        the executor as a lazy task stream and relays outcomes as they
        complete, appending each record to the store the moment it exists
        so an interrupt loses at most the pair in flight.
        """
        start = time.perf_counter()
        metrics = self._metrics
        tracer = self._tracer
        store_path = str(store.path) if store is not None else None
        if store is not None:
            store.touch()
        yield RunStarted(
            total=len(units),
            executor=self._executor.name,
            store_path=store_path,
            seed=seed,
            shard=shard,
        )
        if metrics is not None:
            metrics.counter("repro_runs_total").inc()
            if store is not None:
                # Torn lines the resume load skipped (0 on a fresh store).
                metrics.gauge("repro_store_torn_lines").set(store.torn_lines)

        records: dict[int, dict] = {}
        resumed = 0
        cache_hits = 0
        flushed = 0
        pending: list[_Unit] = []
        pair_spans: dict[int, object] = {}

        def flush(record: dict, parent=None) -> StoreFlushed:
            nonlocal flushed
            with tracer.span("store_append", parent=parent):
                store.append(record)
            flushed += 1
            if metrics is not None:
                metrics.counter("repro_store_flushes_total").inc()
            return StoreFlushed(path=store_path, records_written=flushed)

        def settled(outcome_label: str) -> None:
            if metrics is not None:
                metrics.counter("repro_run_pairs_total").inc(outcome=outcome_label)

        # A cache stack with a network tier exposes a `prefetch` hint:
        # resolve every non-resumed key in one batched round trip up
        # front, so the per-unit probes below are answered from the
        # tier's buffer — one network exchange per run, not per pair.
        # Purely local stacks have no `prefetch` and take the unchanged
        # per-unit path (keys computed inside the pair span).
        prefetched = False
        prefetcher = getattr(self._cache, "prefetch", None)
        if prefetcher is not None:
            with tracer.span("cache_prefetch", total=len(units)):
                for unit in units:
                    if unit.pair_id is not None and unit.pair_id in done:
                        continue
                    unit.key = self._cache_key(unit)
                prefetcher(
                    [unit.key for unit in units if unit.key is not None]
                )
            prefetched = True

        for unit in units:
            if unit.pair_id is not None and unit.pair_id in done:
                # Shallow copy so the store's record keeps its original
                # status; in this report the pair reads as "resumed" and
                # its (historical) queries are excluded from the spend.
                record = dict(done[unit.pair_id])
                record["status"] = "resumed"
                records[unit.position] = record
                resumed += 1
                settled("resumed")
                yield CacheHit(
                    index=unit.position,
                    pair_id=unit.pair_id,
                    source="store",
                    record=record,
                )
                continue
            pair_span = tracer.start(
                "pair", pair_id=unit.pair_id, index=unit.position
            )
            settle_started = time.perf_counter()
            with tracer.span("fingerprint", parent=pair_span):
                if not prefetched:
                    unit.key = self._cache_key(unit)
            if unit.key is not None:
                with tracer.span("cache_probe", parent=pair_span):
                    cached = self._cache.get(unit.key)
                if cached is not None:
                    record = self._base_record(unit)
                    record.update(
                        status="cached",
                        matcher=cached.get("matcher"),
                        error=cached.get("error"),
                        result=cached.get("result"),
                    )
                    records[unit.position] = record
                    cache_hits += 1
                    settled("cached")
                    # Persist before yielding: a consumer that stops at
                    # this event must still find the record in the store.
                    flushed_event = (
                        flush(record, pair_span) if store is not None else None
                    )
                    pair_span.end()
                    yield CacheHit(
                        index=unit.position,
                        pair_id=unit.pair_id,
                        source="cache",
                        record=record,
                        duration_s=time.perf_counter() - settle_started,
                    )
                    if flushed_event is not None:
                        yield flushed_event
                    continue
            pair_spans[unit.position] = pair_span
            pending.append(unit)

        by_position = {unit.position: unit for unit in pending}
        # TaskStarted events are minted as the executor *pulls* tasks (a
        # serial backend pulls one at a time, pooled backends pull ahead)
        # and relayed before the outcome they precede; a deque because the
        # overlap executor pulls from a producer thread.
        submitted: deque[TaskStarted] = deque()

        def tasks() -> Iterator[PairTask]:
            for unit in pending:
                submitted.append(
                    TaskStarted(
                        index=unit.position,
                        pair_id=unit.pair_id,
                        equivalence=unit.label,
                    )
                )
                yield PairTask(
                    index=unit.position,
                    circuit1=unit.circuit1,
                    circuit2=unit.circuit2,
                    equivalence=unit.label,
                    seed=derive_seed(seed, unit.position),
                    pair_id=unit.pair_id,
                )

        executed = 0
        for outcome in self._executor.stream(tasks(), self._config):
            while submitted:
                yield submitted.popleft()
            unit = by_position[outcome.index]
            record = self._base_record(unit)
            record.update(
                status="ok" if outcome.matched else "failed",
                matcher=outcome.matcher,
                error=outcome.error,
                result=outcome.result,
            )
            if self._verify and outcome.matched:
                result = serialize.result_from_dict(outcome.result)
                record["verified"] = verify_match(
                    unit.circuit1,
                    unit.circuit2,
                    EquivalenceType.from_label(unit.label),
                    result,
                )
            if unit.key is not None:
                # Failures are cached too: under a fixed policy the verdict
                # is the verdict (clear the cache to force a retry), and a
                # warm re-run of a manifest must spend zero oracle queries.
                self._cache.put(
                    unit.key,
                    {
                        "matcher": outcome.matcher,
                        "error": outcome.error,
                        "result": outcome.result,
                    },
                )
            records[outcome.index] = record
            executed += 1
            pair_span = pair_spans.pop(outcome.index, _NULL_SPAN)
            if outcome.duration_s is not None:
                # The executor measured the matcher dispatch (possibly in
                # a worker process); log it as a completed child span.
                tracer.record(
                    "match",
                    outcome.duration_s,
                    parent=pair_span,
                    pair_id=outcome.pair_id,
                    matcher=outcome.matcher,
                )
                if metrics is not None:
                    metrics.histogram("repro_task_seconds").observe(
                        outcome.duration_s
                    )
            settled("completed" if outcome.matched else "failed")
            # Persist before yielding the completion event, so stopping
            # the stream at any event never loses an already-seen pair.
            flushed_event = (
                flush(record, pair_span) if store is not None else None
            )
            pair_span.end()
            event_type = TaskCompleted if outcome.matched else TaskFailed
            yield event_type(
                index=outcome.index,
                pair_id=outcome.pair_id,
                record=record,
                duration_s=outcome.duration_s,
            )
            if flushed_event is not None:
                yield flushed_event
        while submitted:  # pragma: no cover - an executor that over-pulls
            yield submitted.popleft()

        report = ServiceReport(
            records=[records[position] for position in sorted(records)],
            resumed=resumed,
            cache_hits=cache_hits,
            executed=executed,
            elapsed=time.perf_counter() - start,
            executor=self._executor.name,
            store_path=store.path if store is not None else None,
            shard=shard,
        )
        if metrics is not None:
            metrics.histogram("repro_run_seconds").observe(report.elapsed)
            if store is not None:
                metrics.gauge("repro_store_torn_lines").set(store.torn_lines)
        if store is not None:
            # Durations never enter the records (stores stay byte-identical
            # across serial/parallel/shard runs); the run's wall clock goes
            # in an atomic sidecar that `repro report` merges back in.
            _write_run_meta(store, report, seed)
        yield RunCompleted(report=report)

    def _consume(
        self,
        events: Iterator[ServiceEvent],
        observers: Sequence[Observer] | None,
    ) -> ServiceReport:
        """Drain an event stream into observers; return the final report."""
        watchers = self._observers + tuple(observers or ())
        report: ServiceReport | None = None
        for event in events:
            for observer in watchers:
                observer.notify(event)
            if isinstance(event, RunCompleted):
                report = event.report
        if report is None:  # pragma: no cover - stream() always completes
            raise ServiceError("event stream ended without a RunCompleted")
        return report

    def _manifest_units(
        self,
        manifest: CorpusManifest,
        root: str | Path,
        done: dict[str, dict],
        shard: tuple[int, int] | None,
    ) -> list[_Unit]:
        units = []
        for position, entry in enumerate(manifest.entries):
            if shard is not None and shard_index(entry.pair_id, shard[1]) != shard[0]:
                # Not this shard's pair.  Positions keep counting, so the
                # surviving units' seeds match the unsharded run's.
                continue
            if entry.pair_id in done:
                # Circuits of already-answered pairs are never even loaded.
                circuit1 = circuit2 = None
            else:
                circuit1, circuit2 = load_entry_circuits(entry, root)
            units.append(
                _Unit(
                    position,
                    entry.pair_id,
                    circuit1,
                    circuit2,
                    entry.equivalence,
                    {
                        "family": entry.family,
                        "expected_equivalent": entry.expected_equivalent,
                    },
                )
            )
        return units

    # -- entry points ----------------------------------------------------------
    def stream(
        self,
        manifest: CorpusManifest | str | Path,
        *,
        root: str | Path | None = None,
        store_path: str | Path | None = None,
        resume: bool = False,
        seed: int | None = None,
        shard: tuple[int, int] | str | None = None,
    ) -> Iterator[ServiceEvent]:
        """Execute a corpus manifest as a stream of lifecycle events.

        The primitive behind :meth:`run_manifest`: a generator yielding
        :class:`~repro.service.events.RunStarted` first,
        :class:`~repro.service.events.RunCompleted` (carrying the
        :class:`ServiceReport`) last, and per-pair events in between, in
        the executor's as-completed order.  Store records are appended as
        their events are yielded, so a consumer that stops early keeps
        everything already streamed.

        Args:
            manifest: a loaded :class:`CorpusManifest` or a path to one
                (a directory is taken to contain ``manifest.json``).
            root: directory circuit paths are relative to; defaults to the
                manifest's directory when a path was given, else the
                current directory.
            store_path: JSONL result store to stream records to.
            resume: skip pairs whose ids the store already holds (requires
                ``store_path``).
            seed: run seed; per-pair seeds derive from it and the pair's
                manifest position, so a resumed run, a shard run and an
                unsharded run all execute a given pair with the same seed.
            shard: ``(index, count)`` or an ``"i/n"`` spec restricting the
                run to the pairs :func:`shard_index` assigns to bucket
                ``index``; merge the shard stores with
                :func:`merge_stores`.
        """
        if isinstance(manifest, (str, Path)):
            path = Path(manifest)
            if path.is_dir():
                path = path / MANIFEST_NAME
            if root is None:
                root = path.parent
            manifest = CorpusManifest.load(path)
        if root is None:
            root = Path(".")
        if resume and store_path is None:
            raise ServiceError("resume requires a result store path")
        if isinstance(shard, str):
            shard = parse_shard(shard)
        elif shard is not None:
            index, count = shard
            if count <= 0 or not 0 <= index < count:
                raise ServiceError(f"invalid shard {index}/{count}")

        store = ResultStore(store_path) if store_path is not None else None
        done = (
            self._replayable(store.load())
            if (resume and store is not None)
            else {}
        )
        units = self._manifest_units(manifest, root, done, shard)
        return self._stream_units(
            units, done=done, store=store, seed=seed, shard=shard
        )

    def run_manifest(
        self,
        manifest: CorpusManifest | str | Path,
        *,
        root: str | Path | None = None,
        store_path: str | Path | None = None,
        resume: bool = False,
        seed: int | None = None,
        shard: tuple[int, int] | str | None = None,
        observers: Sequence[Observer] | None = None,
    ) -> ServiceReport:
        """Execute a corpus manifest and return the final report.

        A thin consumer of :meth:`stream` (same arguments): every event is
        forwarded to the service's observers plus any passed here, and the
        :class:`ServiceReport` carried by the final
        :class:`~repro.service.events.RunCompleted` is returned.
        """
        return self._consume(
            self.stream(
                manifest,
                root=root,
                store_path=store_path,
                resume=resume,
                seed=seed,
                shard=shard,
            ),
            observers,
        )

    def _pair_digest(self, circuit1, circuit2, label: str) -> str | None:
        """A content digest identifying an ad-hoc pair, or None if opaque.

        Positional ``pair-NNNN`` ids alone would let a resume against a
        store written for *different* pairs replay the wrong results;
        records carry this digest so resume can insist the content
        matches, not just the position.  The payload is versioned (and
        scheme-qualified, via the fingerprint keys), so stores written
        under a different identity contract never digest-match.
        """
        try:
            fp1 = self._registry.fingerprint(circuit1)
            fp2 = self._registry.fingerprint(circuit2)
        except FingerprintError:
            return None
        payload = f"{KEY_VERSION}|{label}|{fp1.key}|{fp2.key}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def _pair_units(
        self,
        pairs: Iterable[Sequence],
        equivalence: EquivalenceType | str | None,
        *,
        with_digests: bool = False,
    ) -> list[_Unit]:
        """Normalise match-many-shaped pairs into positioned units.

        Ad-hoc pairs get deterministic ``pair-NNNN`` ids from their batch
        position, so a pair stream attached to a result store is resumable
        and mergeable exactly like a manifest run.  ``with_digests``
        additionally stamps each unit's record with :meth:`_pair_digest`
        (only wanted when a store is attached — it costs a truth-table
        tabulation per circuit).
        """
        if isinstance(equivalence, EquivalenceType):
            equivalence = equivalence.label
        units = []
        for position, pair in enumerate(pairs):
            if len(pair) == 3:
                circuit1, circuit2, label = pair
            elif len(pair) == 2:
                circuit1, circuit2 = pair
                label = equivalence
            else:
                raise ServiceError(
                    f"pair #{position} has {len(pair)} elements; expected "
                    "(c1, c2) or (c1, c2, equivalence)"
                )
            if label is None:
                raise ServiceError(
                    f"pair #{position} names no equivalence class and no "
                    "batch-wide default was given"
                )
            if isinstance(label, EquivalenceType):
                label = label.label
            else:
                label = EquivalenceType.from_label(label).label
            meta = {}
            if with_digests:
                meta["pair_digest"] = self._pair_digest(circuit1, circuit2, label)
            units.append(
                _Unit(position, f"pair-{position:04d}", circuit1, circuit2, label, meta)
            )
        return units

    def stream_pairs(
        self,
        pairs: Iterable[Sequence],
        *,
        equivalence: EquivalenceType | str | None = None,
        seed: int | None = None,
        store_path: str | Path | None = None,
        resume: bool = False,
    ) -> Iterator[ServiceEvent]:
        """Execute in-memory pairs as a stream of lifecycle events.

        The pair-list counterpart of :meth:`stream`: accepts ``(circuit1,
        circuit2)`` or ``(circuit1, circuit2, equivalence)`` tuples exactly
        like :meth:`repro.core.engine.MatchingEngine.match_many`.  Each
        pair is assigned the deterministic id ``pair-NNNN`` from its batch
        position, so attaching a ``store_path`` makes ad-hoc submissions
        resumable (``resume=True`` skips ids the store already answered) —
        this is what lets the matching daemon persist every submission,
        manifest or not, as an ordinary JSONL result store.

        Positional ids alone cannot tell two different pair lists apart,
        so store records carry a content digest of the pair and resume
        only trusts a stored record whose digest matches — submitting
        *different* pairs against an old store re-runs them instead of
        silently replaying the previous submission's results.
        """
        if resume and store_path is None:
            raise ServiceError("resume requires a result store path")
        units = self._pair_units(
            pairs, equivalence, with_digests=store_path is not None
        )
        store = ResultStore(store_path) if store_path is not None else None
        done = (
            self._replayable(store.load())
            if (resume and store is not None)
            else {}
        )
        if done:
            digests = {
                unit.pair_id: unit.meta.get("pair_digest") for unit in units
            }
            done = {
                pair_id: record
                for pair_id, record in done.items()
                if digests.get(pair_id) is not None
                and record.get("pair_digest") == digests[pair_id]
            }
        return self._stream_units(units, done=done, store=store, seed=seed)

    def match_pairs(
        self,
        pairs: Iterable[Sequence],
        *,
        equivalence: EquivalenceType | str | None = None,
        seed: int | None = None,
        observers: Sequence[Observer] | None = None,
    ) -> ServiceReport:
        """Run in-memory pairs (the :meth:`match_many` shape) as a pipeline.

        A thin consumer of :meth:`stream_pairs` with the service's cache,
        executor and observers in the loop.  No store is involved — pass
        ``store_path`` to :meth:`stream_pairs` (or use :meth:`run_manifest`)
        for resumable runs.
        """
        return self._consume(
            self.stream_pairs(pairs, equivalence=equivalence, seed=seed),
            observers,
        )
