"""The :class:`MatchingService` — cache + executor + engine as a pipeline.

The service is the production front door the ROADMAP asks for: it takes a
corpus manifest (or in-memory pairs), skips whatever a previous run
already answered (resume via the JSONL result store), answers whatever an
earlier batch or run already answered (the result cache, consulted
*before* any oracle is built — a warm-cache run performs zero oracle
queries; lookups happen up front, so duplicates *within* one cold batch
still each execute), shards the remainder over an execution backend, and
streams one JSON record per pair to the store.  Records are JSON dicts end to end — the executor, the
cache and the store all speak :mod:`repro.service.serialize` — so a
serial run, a 4-worker run and a cache replay of the same manifest write
interchangeable stores.
"""

from __future__ import annotations

import json
import time
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analysis.report import format_table
from repro.core.engine import MatchingConfig
from repro.core.equivalence import EquivalenceType
from repro.core.verify import verify_match
from repro.exceptions import FingerprintError, ServiceError
from repro.service import serialize
from repro.service.cache import ResultCache
from repro.service.executor import (
    Executor,
    PairTask,
    SerialExecutor,
    derive_seed,
)
from repro.service.fingerprint import fingerprint, pair_key
from repro.service.workload import (
    MANIFEST_NAME,
    CorpusManifest,
    load_entry_circuits,
)

__all__ = ["ResultStore", "ServiceReport", "MatchingService"]


class ResultStore:
    """Append-only JSONL store of per-pair run records, keyed by pair id.

    One JSON object per line; :meth:`load` tolerates a torn final line (a
    crash mid-append) by skipping anything that does not parse, which is
    exactly what resume needs: the half-written pair is simply re-run.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)

    @property
    def path(self) -> Path:
        """The JSONL file backing the store."""
        return self._path

    @property
    def exists(self) -> bool:
        """Whether the store file exists on disk."""
        return self._path.exists()

    def load(self) -> dict[str, dict]:
        """Read all complete records, newest occurrence of each pair winning."""
        records: dict[str, dict] = {}
        if not self.exists:
            return records
        with open(self._path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                pair_id = record.get("pair_id")
                if isinstance(pair_id, str):
                    records[pair_id] = record
        return records

    def append(self, record: dict) -> None:
        """Append one record and flush it to disk."""
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()


class ServiceReport:
    """Outcome of one service run: per-pair records plus throughput stats.

    Attributes:
        records: one JSON record per pair, in manifest order.  Statuses:
            ``ok`` (freshly executed), ``failed`` (matcher raised),
            ``cached`` (served by the result cache) and whatever a resumed
            record carried when it was first written.
        resumed: how many pairs were skipped because the store already had
            them.
        executed: how many pairs actually went through an executor.
        elapsed: wall-clock seconds for the run.
    """

    def __init__(
        self,
        records: list[dict],
        *,
        resumed: int,
        cache_hits: int,
        executed: int,
        elapsed: float,
        executor: str,
        store_path: Path | None = None,
    ) -> None:
        self.records = records
        self.resumed = resumed
        self.cache_hits = cache_hits
        self.executed = executed
        self.elapsed = elapsed
        self.executor = executor
        self.store_path = store_path

    # -- aggregates ------------------------------------------------------------
    @property
    def total(self) -> int:
        """Number of pairs the manifest listed."""
        return len(self.records)

    @property
    def matched(self) -> int:
        """Pairs with witnesses (fresh, cached or resumed)."""
        return sum(1 for record in self.records if record.get("result"))

    @property
    def failed(self) -> int:
        """Pairs whose matcher raised (fresh, cached or resumed)."""
        return self.total - self.matched

    @property
    def classical_queries(self) -> int:
        """Classical oracle queries spent on freshly executed pairs."""
        return sum(
            record["result"]["queries"]
            for record in self.records
            if record.get("status") == "ok" and record.get("result")
        )

    @property
    def quantum_queries(self) -> int:
        """Quantum oracle queries spent on freshly executed pairs."""
        return sum(
            record["result"]["quantum_queries"]
            for record in self.records
            if record.get("status") == "ok" and record.get("result")
        )

    @property
    def pairs_per_second(self) -> float:
        """Throughput over the pairs actually processed this run."""
        processed = self.executed + self.cache_hits
        if processed == 0 or self.elapsed <= 0:
            return 0.0
        return processed / self.elapsed

    # -- rendering -------------------------------------------------------------
    def as_rows(self) -> list[tuple[object, ...]]:
        """Table rows (pair, class, family, status, matcher, queries, quantum)."""
        rows: list[tuple[object, ...]] = []
        for record in self.records:
            result = record.get("result") or {}
            rows.append(
                (
                    record.get("pair_id", record.get("index", "-")),
                    record.get("equivalence", "-"),
                    record.get("family") or "-",
                    record.get("status", "-"),
                    record.get("matcher") or "-",
                    result.get("queries", 0),
                    result.get("quantum_queries", 0),
                )
            )
        return rows

    def to_table(self, title: str | None = None) -> str:
        """Render the run through :func:`repro.analysis.report.format_table`."""
        return format_table(
            ["pair", "class", "family", "status", "matcher", "queries", "quantum"],
            self.as_rows(),
            title=title,
        )

    def summary(self) -> str:
        """One-line aggregate with throughput."""
        return (
            f"{self.matched}/{self.total} matched ({self.failed} failed), "
            f"{self.cache_hits} cached, {self.resumed} resumed, "
            f"{self.executed} executed via {self.executor} in "
            f"{self.elapsed:.2f}s ({self.pairs_per_second:.1f} pairs/s); "
            f"{self.classical_queries} classical + "
            f"{self.quantum_queries} quantum queries spent"
        )


class _Unit:
    """One pair flowing through the pipeline (internal bookkeeping)."""

    __slots__ = ("position", "pair_id", "circuit1", "circuit2", "label", "meta", "key")

    def __init__(self, position, pair_id, circuit1, circuit2, label, meta):
        self.position = position
        self.pair_id = pair_id
        self.circuit1 = circuit1
        self.circuit2 = circuit2
        self.label = label
        self.meta = meta
        self.key = None


class MatchingService:
    """High-throughput, cached, resumable matching over corpora.

    Args:
        config: the :class:`~repro.core.engine.MatchingConfig` policy every
            pair is matched under (also part of every cache key).
        executor: execution backend; defaults to
            :class:`~repro.service.executor.SerialExecutor`.
        cache: optional :class:`~repro.service.cache.ResultCache` consulted
            per pair before any oracle exists.
        verify: exhaustively verify the witnesses of freshly executed
            pairs (white-box, exponential in width — meant for corpora of
            small circuits, where it catches promise-violating
            near-misses; recorded as ``verified`` on the run record).
    """

    def __init__(
        self,
        config: MatchingConfig | None = None,
        *,
        executor: Executor | None = None,
        cache: ResultCache | None = None,
        verify: bool = False,
    ) -> None:
        self._config = config if config is not None else MatchingConfig()
        self._executor = executor if executor is not None else SerialExecutor()
        self._cache = cache
        self._verify = verify

    # -- introspection ---------------------------------------------------------
    @property
    def config(self) -> MatchingConfig:
        """The matching policy."""
        return self._config

    @property
    def executor(self) -> Executor:
        """The execution backend."""
        return self._executor

    @property
    def cache(self) -> ResultCache | None:
        """The result cache, if any."""
        return self._cache

    # -- internal --------------------------------------------------------------
    def _cache_key(self, unit: _Unit) -> str | None:
        if self._cache is None:
            return None
        try:
            fp1 = fingerprint(unit.circuit1, with_inverse=self._config.with_inverse)
            fp2 = fingerprint(unit.circuit2, with_inverse=self._config.with_inverse)
        except FingerprintError:
            return None
        equivalence = EquivalenceType.from_label(unit.label)
        return pair_key(fp1, fp2, equivalence, self._config)

    def _base_record(self, unit: _Unit) -> dict:
        record = {
            "pair_id": unit.pair_id,
            "index": unit.position,
            "equivalence": unit.label,
            "cache_key": unit.key,
        }
        record.update(unit.meta)
        return record

    def _run_units(
        self,
        units: list[_Unit],
        *,
        done: dict[str, dict],
        store: ResultStore | None,
        seed: int | None,
    ) -> ServiceReport:
        start = time.perf_counter()
        records: list[dict | None] = [None] * len(units)
        resumed = 0
        cache_hits = 0
        pending: list[_Unit] = []

        for unit in units:
            if unit.pair_id is not None and unit.pair_id in done:
                # Shallow copy so the store's record keeps its original
                # status; in this report the pair reads as "resumed" and
                # its (historical) queries are excluded from the spend.
                record = dict(done[unit.pair_id])
                record["status"] = "resumed"
                records[unit.position] = record
                resumed += 1
                continue
            unit.key = self._cache_key(unit)
            if unit.key is not None:
                cached = self._cache.get(unit.key)
                if cached is not None:
                    record = self._base_record(unit)
                    record.update(
                        status="cached",
                        matcher=cached.get("matcher"),
                        error=cached.get("error"),
                        result=cached.get("result"),
                    )
                    records[unit.position] = record
                    cache_hits += 1
                    if store is not None:
                        store.append(record)
                    continue
            pending.append(unit)

        tasks = [
            PairTask(
                index=unit.position,
                circuit1=unit.circuit1,
                circuit2=unit.circuit2,
                equivalence=unit.label,
                seed=derive_seed(seed, unit.position),
                pair_id=unit.pair_id,
            )
            for unit in pending
        ]
        outcomes = {
            outcome.index: outcome
            for outcome in self._executor.execute(tasks, self._config)
        }

        for unit in pending:
            outcome = outcomes[unit.position]
            record = self._base_record(unit)
            record.update(
                status="ok" if outcome.matched else "failed",
                matcher=outcome.matcher,
                error=outcome.error,
                result=outcome.result,
            )
            if self._verify and outcome.matched:
                result = serialize.result_from_dict(outcome.result)
                record["verified"] = verify_match(
                    unit.circuit1,
                    unit.circuit2,
                    EquivalenceType.from_label(unit.label),
                    result,
                )
            if unit.key is not None:
                # Failures are cached too: under a fixed policy the verdict
                # is the verdict (clear the cache to force a retry), and a
                # warm re-run of a manifest must spend zero oracle queries.
                self._cache.put(
                    unit.key,
                    {
                        "matcher": outcome.matcher,
                        "error": outcome.error,
                        "result": outcome.result,
                    },
                )
            records[unit.position] = record
            if store is not None:
                store.append(record)

        return ServiceReport(
            records=[record for record in records if record is not None],
            resumed=resumed,
            cache_hits=cache_hits,
            executed=len(pending),
            elapsed=time.perf_counter() - start,
            executor=self._executor.name,
            store_path=store.path if store is not None else None,
        )

    # -- entry points ----------------------------------------------------------
    def run_manifest(
        self,
        manifest: CorpusManifest | str | Path,
        *,
        root: str | Path | None = None,
        store_path: str | Path | None = None,
        resume: bool = False,
        seed: int | None = None,
    ) -> ServiceReport:
        """Execute a corpus manifest through cache, store and executor.

        Args:
            manifest: a loaded :class:`CorpusManifest` or a path to one
                (a directory is taken to contain ``manifest.json``).
            root: directory circuit paths are relative to; defaults to the
                manifest's directory when a path was given, else the
                current directory.
            store_path: JSONL result store to stream records to.
            resume: skip pairs whose ids the store already holds (requires
                ``store_path``).
            seed: run seed; per-pair seeds derive from it and the pair's
                manifest position, so a resumed run re-executes a pair
                with exactly the seed the interrupted run would have used.
        """
        if isinstance(manifest, (str, Path)):
            path = Path(manifest)
            if path.is_dir():
                path = path / MANIFEST_NAME
            if root is None:
                root = path.parent
            manifest = CorpusManifest.load(path)
        if root is None:
            root = Path(".")
        if resume and store_path is None:
            raise ServiceError("resume requires a result store path")

        store = ResultStore(store_path) if store_path is not None else None
        done = store.load() if (resume and store is not None) else {}

        units = []
        for position, entry in enumerate(manifest.entries):
            if entry.pair_id in done:
                # Circuits of already-answered pairs are never even loaded.
                circuit1 = circuit2 = None
            else:
                circuit1, circuit2 = load_entry_circuits(entry, root)
            units.append(
                _Unit(
                    position,
                    entry.pair_id,
                    circuit1,
                    circuit2,
                    entry.equivalence,
                    {
                        "family": entry.family,
                        "expected_equivalent": entry.expected_equivalent,
                    },
                )
            )
        return self._run_units(units, done=done, store=store, seed=seed)

    def match_pairs(
        self,
        pairs: Iterable[Sequence],
        *,
        equivalence: EquivalenceType | str | None = None,
        seed: int | None = None,
    ) -> ServiceReport:
        """Run in-memory pairs (the :meth:`match_many` shape) as a pipeline.

        Accepts ``(circuit1, circuit2)`` or ``(circuit1, circuit2,
        equivalence)`` tuples exactly like
        :meth:`repro.core.engine.MatchingEngine.match_many`, but with the
        service's cache and executor in the loop.  No store is involved —
        use :meth:`run_manifest` for resumable runs.
        """
        if isinstance(equivalence, EquivalenceType):
            equivalence = equivalence.label
        units = []
        for position, pair in enumerate(pairs):
            if len(pair) == 3:
                circuit1, circuit2, label = pair
            elif len(pair) == 2:
                circuit1, circuit2 = pair
                label = equivalence
            else:
                raise ServiceError(
                    f"pair #{position} has {len(pair)} elements; expected "
                    "(c1, c2) or (c1, c2, equivalence)"
                )
            if label is None:
                raise ServiceError(
                    f"pair #{position} names no equivalence class and no "
                    "batch-wide default was given"
                )
            if isinstance(label, EquivalenceType):
                label = label.label
            else:
                label = EquivalenceType.from_label(label).label
            units.append(_Unit(position, None, circuit1, circuit2, label, {}))
        return self._run_units(units, done={}, store=None, seed=seed)
