"""Typed lifecycle events and the observer protocol of the service layer.

:meth:`repro.service.pipeline.MatchingService.stream` is a generator of
the events defined here — one :class:`RunStarted` first, then one
:class:`TaskStarted`/:class:`CacheHit` per pair followed by its
:class:`TaskCompleted` or :class:`TaskFailed` (plus a
:class:`StoreFlushed` after every record that reaches the JSONL store),
and exactly one :class:`RunCompleted` last.  Events are frozen dataclasses
with a :meth:`~ServiceEvent.to_dict` JSON form, so an event stream can be
logged, shipped or replayed without the service layer knowing who listens.

Consumers either iterate the generator directly or register
:class:`Observer` objects with the service; three stock observers cover
the common cases:

* :class:`ProgressObserver` — a progress line every N finished pairs
  (quiet between lines; what ``repro run --progress`` wires up),
* :class:`EventLogObserver` — append-only JSONL event log,
* :class:`StatsObserver` — in-memory counters for tests and dashboards.

Observer failures are deliberately *not* swallowed: a broken observer is
a bug in the caller's wiring, and silently dropping its exception would
hide it.

Because events are JSON both ways — :meth:`~ServiceEvent.to_dict` out,
:func:`event_from_dict` back in — an event stream crosses process and
socket boundaries losslessly enough for observers: the matching daemon
serialises events onto its wire protocol and ``repro watch`` rebuilds
typed events on the client, so the same ``ProgressObserver`` works
against an in-process run and a remote one.  The one asymmetry is
:class:`RunCompleted`, whose wire form carries only the report's
aggregate counters; :func:`event_from_dict` rebuilds it around a
:class:`ReportSummary` rather than a full
:class:`~repro.service.pipeline.ServiceReport`.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass
from typing import IO, TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pipeline -> events)
    from repro.service.pipeline import ServiceReport

__all__ = [
    "ServiceEvent",
    "RunStarted",
    "TaskStarted",
    "CacheHit",
    "TaskCompleted",
    "TaskFailed",
    "StoreFlushed",
    "RunCompleted",
    "ReportSummary",
    "event_from_dict",
    "Observer",
    "ProgressObserver",
    "EventLogObserver",
    "StatsObserver",
]


@dataclass(frozen=True)
class ServiceEvent:
    """Base class of every service lifecycle event."""

    @property
    def kind(self) -> str:
        """The event's type name (``"TaskCompleted"`` etc.)."""
        return type(self).__name__

    def to_dict(self) -> dict:
        """A JSON-ready dict of the event (``{"event": kind, ...}``)."""
        return {"event": self.kind}


@dataclass(frozen=True)
class RunStarted(ServiceEvent):
    """A run began; emitted once, before any pair is touched.

    Attributes:
        total: pairs this run will account for (after shard filtering).
        executor: the execution backend's name.
        store_path: the JSONL result store, if one is attached.
        seed: the run seed (per-pair seeds derive from it).
        shard: ``(index, count)`` when this is one shard of a larger run.
    """

    total: int
    executor: str
    store_path: str | None = None
    seed: int | None = None
    shard: tuple[int, int] | None = None

    def to_dict(self) -> dict:
        return {
            "event": self.kind,
            "total": self.total,
            "executor": self.executor,
            "store_path": self.store_path,
            "seed": self.seed,
            "shard": list(self.shard) if self.shard is not None else None,
        }


@dataclass(frozen=True)
class TaskStarted(ServiceEvent):
    """A pair was handed to the executor (not served by store or cache)."""

    index: int
    pair_id: str | None
    equivalence: str

    def to_dict(self) -> dict:
        return {
            "event": self.kind,
            "index": self.index,
            "pair_id": self.pair_id,
            "equivalence": self.equivalence,
        }


@dataclass(frozen=True)
class CacheHit(ServiceEvent):
    """A pair was answered without executing anything.

    Attributes:
        source: ``"store"`` when resume found the pair in the result
            store, ``"cache"`` when the result cache had it.
        record: the run record the hit produced.
        duration_s: wall-clock seconds the settle took (fingerprint +
            cache probe + store append); ``None`` for store hits, which
            re-use a prior run's record without doing any work.
    """

    index: int
    pair_id: str | None
    source: str
    record: dict
    duration_s: float | None = None

    def to_dict(self) -> dict:
        return {
            "event": self.kind,
            "index": self.index,
            "pair_id": self.pair_id,
            "source": self.source,
            "record": self.record,
            "duration_s": self.duration_s,
        }


@dataclass(frozen=True)
class TaskCompleted(ServiceEvent):
    """A freshly executed pair produced witnesses.

    ``duration_s`` is the matcher-dispatch wall clock measured by the
    executor (in the worker process for pooled backends).  It never
    enters the persisted record — stores stay byte-identical across
    serial, parallel and sharded runs — so it rides on the event only.
    """

    index: int
    pair_id: str | None
    record: dict
    duration_s: float | None = None

    def to_dict(self) -> dict:
        return {
            "event": self.kind,
            "index": self.index,
            "pair_id": self.pair_id,
            "record": self.record,
            "duration_s": self.duration_s,
        }


@dataclass(frozen=True)
class TaskFailed(ServiceEvent):
    """A freshly executed pair's matcher raised instead of matching.

    ``duration_s`` mirrors :class:`TaskCompleted`: the executor-measured
    dispatch wall clock, carried on the event and never in the record.
    """

    index: int
    pair_id: str | None
    record: dict
    duration_s: float | None = None

    @property
    def error(self) -> str | None:
        """The recorded ``"ExceptionName: message"`` failure."""
        return self.record.get("error")

    def to_dict(self) -> dict:
        return {
            "event": self.kind,
            "index": self.index,
            "pair_id": self.pair_id,
            "record": self.record,
            "duration_s": self.duration_s,
        }


@dataclass(frozen=True)
class StoreFlushed(ServiceEvent):
    """One record reached the JSONL result store (append + flush).

    Attributes:
        path: the store file.
        records_written: cumulative records this run has flushed.
    """

    path: str
    records_written: int

    def to_dict(self) -> dict:
        return {
            "event": self.kind,
            "path": self.path,
            "records_written": self.records_written,
        }


@dataclass(frozen=True)
class RunCompleted(ServiceEvent):
    """The run finished; carries the full :class:`ServiceReport`."""

    report: "ServiceReport"

    def to_dict(self) -> dict:
        report = self.report
        return {
            "event": self.kind,
            "total": report.total,
            "matched": report.matched,
            "failed": report.failed,
            "resumed": report.resumed,
            "cache_hits": report.cache_hits,
            "executed": report.executed,
            "elapsed": report.elapsed,
            "executor": report.executor,
        }


@dataclass(frozen=True)
class ReportSummary:
    """The aggregate counters of a :class:`~repro.service.pipeline.ServiceReport`.

    What survives a :class:`RunCompleted` round trip through
    :meth:`~ServiceEvent.to_dict` / :func:`event_from_dict` — per-pair
    records stay on the producing side (they were already streamed as
    individual events and persisted to the run's result store), the
    counters cross the wire.
    """

    total: int = 0
    matched: int = 0
    failed: int = 0
    resumed: int = 0
    cache_hits: int = 0
    executed: int = 0
    elapsed: float = 0.0
    executor: str = "?"

    def summary(self) -> str:
        """One-line aggregate, mirroring :meth:`ServiceReport.summary`."""
        return (
            f"{self.matched}/{self.total} matched ({self.failed} failed), "
            f"{self.cache_hits} cached, {self.resumed} resumed, "
            f"{self.executed} executed via {self.executor} in "
            f"{self.elapsed:.2f}s"
        )


def event_from_dict(data: dict) -> ServiceEvent:
    """Rebuild a typed event from :meth:`ServiceEvent.to_dict` output.

    The inverse that lets observers watch a run they did not produce —
    an event log replay, or a daemon's wire frames.  ``RunCompleted``
    comes back with a :class:`ReportSummary` as its report (the wire form
    only carries aggregates).  Raises :class:`ValueError` on an unknown
    or missing ``"event"`` kind.
    """
    kind = data.get("event")
    if kind == "RunStarted":
        shard = data.get("shard")
        return RunStarted(
            total=data.get("total", 0),
            executor=data.get("executor", "?"),
            store_path=data.get("store_path"),
            seed=data.get("seed"),
            shard=tuple(shard) if shard is not None else None,
        )
    if kind == "TaskStarted":
        return TaskStarted(
            index=data.get("index", 0),
            pair_id=data.get("pair_id"),
            equivalence=data.get("equivalence", "?"),
        )
    if kind == "CacheHit":
        return CacheHit(
            index=data.get("index", 0),
            pair_id=data.get("pair_id"),
            source=data.get("source", "cache"),
            record=data.get("record") or {},
            duration_s=data.get("duration_s"),
        )
    if kind in ("TaskCompleted", "TaskFailed"):
        event_type = TaskCompleted if kind == "TaskCompleted" else TaskFailed
        return event_type(
            index=data.get("index", 0),
            pair_id=data.get("pair_id"),
            record=data.get("record") or {},
            duration_s=data.get("duration_s"),
        )
    if kind == "StoreFlushed":
        return StoreFlushed(
            path=data.get("path"),
            records_written=data.get("records_written", 0),
        )
    if kind == "RunCompleted":
        return RunCompleted(
            report=ReportSummary(
                total=data.get("total", 0),
                matched=data.get("matched", 0),
                failed=data.get("failed", 0),
                resumed=data.get("resumed", 0),
                cache_hits=data.get("cache_hits", 0),
                executed=data.get("executed", 0),
                elapsed=data.get("elapsed", 0.0),
                executor=data.get("executor", "?"),
            )
        )
    raise ValueError(f"not a service event dict (event kind {kind!r})")


@runtime_checkable
class Observer(Protocol):
    """Anything with a ``notify(event)`` method can watch a run."""

    def notify(self, event: ServiceEvent) -> None:
        """Receive one lifecycle event."""


class ProgressObserver:
    """Print a progress line every ``every`` finished pairs.

    A pair counts as finished when its :class:`TaskCompleted`,
    :class:`TaskFailed` or :class:`CacheHit` arrives; the final tally is
    always printed at :class:`RunCompleted`, so short runs are never
    silent.

    Args:
        stream: output text stream; defaults to ``sys.stderr`` so progress
            never mixes with a report printed on stdout.
        every: line cadence in pairs.
    """

    def __init__(self, stream: IO[str] | None = None, every: int = 1) -> None:
        if every <= 0:
            raise ValueError(f"progress cadence must be positive, got {every}")
        self._stream = stream
        self._every = every
        self._total = 0
        self._done = 0
        self._failed = 0

    def _out(self) -> IO[str]:
        return self._stream if self._stream is not None else sys.stderr

    def notify(self, event: ServiceEvent) -> None:
        if isinstance(event, RunStarted):
            self._total = event.total
            self._done = 0
            self._failed = 0
            print(
                f"run started: {event.total} pairs via {event.executor}",
                file=self._out(),
            )
            return
        if isinstance(event, (TaskCompleted, TaskFailed, CacheHit)):
            self._done += 1
            if isinstance(event, TaskFailed):
                self._failed += 1
            if self._done % self._every == 0:
                label = event.pair_id if event.pair_id is not None else event.index
                print(
                    f"[{self._done}/{self._total}] {label}: "
                    f"{event.record.get('status', '?')}",
                    file=self._out(),
                )
            return
        if isinstance(event, RunCompleted):
            print(
                f"run completed: {self._done}/{self._total} pairs, "
                f"{self._failed} failed",
                file=self._out(),
            )


class EventLogObserver:
    """Append every event as one JSON line to a log file.

    The file is opened lazily on the first event and flushed per line, so
    a crash loses at most the record being written; :meth:`close` (or the
    context-manager form) releases the handle.
    """

    def __init__(self, path) -> None:
        self._path = path
        self._handle: IO[str] | None = None

    @property
    def path(self):
        """The log file path."""
        return self._path

    def notify(self, event: ServiceEvent) -> None:
        if self._handle is None:
            self._handle = open(self._path, "a", encoding="utf-8")
        self._handle.write(json.dumps(event.to_dict()) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventLogObserver":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _TimingStats:
    """Sum/min/max accumulator over the ``duration_s`` of one event kind."""

    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s: float | None = None
        self.max_s: float | None = None

    def add(self, duration_s: float) -> None:
        self.count += 1
        self.total_s += duration_s
        self.min_s = duration_s if self.min_s is None else min(self.min_s, duration_s)
        self.max_s = duration_s if self.max_s is None else max(self.max_s, duration_s)

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }


class StatsObserver:
    """Count events in memory — the assertion-friendly observer.

    Attributes:
        runs_started, runs_completed: run boundary counts.
        started: pairs handed to the executor.
        completed, failed: fresh execution outcomes.
        cache_hits, resumed: pairs served without executing (``resumed``
            counts the store-sourced subset of ``cache_hits_total``).
        store_flushes: records flushed to the JSONL store.
        completed_timing, cache_hit_timing: sum/min/max accumulators over
            the ``duration_s`` of :class:`TaskCompleted` and
            :class:`CacheHit` events (events without a duration — store
            hits, or streams from older producers — are not counted).
    """

    def __init__(self) -> None:
        self.runs_started = 0
        self.runs_completed = 0
        self.started = 0
        self.completed = 0
        self.failed = 0
        self.cache_hits = 0
        self.resumed = 0
        self.store_flushes = 0
        self.completed_timing = _TimingStats()
        self.cache_hit_timing = _TimingStats()

    def notify(self, event: ServiceEvent) -> None:
        if isinstance(event, RunStarted):
            self.runs_started += 1
        elif isinstance(event, TaskStarted):
            self.started += 1
        elif isinstance(event, TaskCompleted):
            self.completed += 1
            if event.duration_s is not None:
                self.completed_timing.add(event.duration_s)
        elif isinstance(event, TaskFailed):
            self.failed += 1
        elif isinstance(event, CacheHit):
            if event.source == "store":
                self.resumed += 1
            else:
                self.cache_hits += 1
            if event.duration_s is not None:
                self.cache_hit_timing.add(event.duration_s)
        elif isinstance(event, StoreFlushed):
            self.store_flushes += 1
        elif isinstance(event, RunCompleted):
            self.runs_completed += 1

    def as_dict(self) -> dict:
        """The counters as a plain dict (stable keys for reports)."""
        return {
            "runs_started": self.runs_started,
            "runs_completed": self.runs_completed,
            "started": self.started,
            "completed": self.completed,
            "failed": self.failed,
            "cache_hits": self.cache_hits,
            "resumed": self.resumed,
            "store_flushes": self.store_flushes,
            "timings": {
                "completed": self.completed_timing.as_dict(),
                "cache_hit": self.cache_hit_timing.as_dict(),
            },
        }
