"""The long-lived matching daemon: one warm engine and cache, many runs.

Every ``repro run`` so far has been a one-shot process — import, build an
engine, fill a cache, exit, repeat.  :class:`MatchingDaemon` keeps all of
that alive: a single server process owns one warm
:class:`~repro.core.engine.MatchingEngine` (via a persistent
:class:`~repro.service.executor.SerialExecutor` inside an
:class:`~repro.service.executor.OverlapExecutor`) and one shared
:class:`~repro.service.cache.ResultCache` across arbitrarily many
submissions, so concurrent clients benefit from each other's work instead
of re-fingerprinting the same pairs.

The wire protocol (``repro-daemon/v1``, specified in
``docs/protocol.md``) is newline-delimited JSON over a Unix or TCP
socket.  Clients send request frames (``{"op": ...}``) and read response
frames; the ``events`` op turns the connection into a subscription that
replays and then live-streams the run's
:mod:`repro.service.events` dicts, which is how ``repro watch`` drives
ordinary :class:`~repro.service.events.Observer` objects against a
remote run.

Jobs flow through a bounded queue consumed by a single worker thread —
one run executes at a time (its executor may itself be a process pool),
later submissions queue, and a full queue rejects the submit rather than
buffering unboundedly.  Each run streams its records into a per-run
JSONL :class:`~repro.service.pipeline.ResultStore` under the daemon's
store directory, so daemon runs stay resumable and mergeable exactly
like CLI runs: a run cancelled (or a daemon shut down) mid-flight keeps
every record already flushed, and resubmitting with ``resume`` picks up
where it stopped.

:class:`DaemonClient` is the Python-side counterpart the CLI commands
(``repro serve`` / ``repro submit`` / ``repro watch`` / ``repro
daemon``) are built on.
"""

from __future__ import annotations

import hmac
import ipaddress
import json
import os
import queue as _queue
import socket
import threading
import time
from collections.abc import Iterator, Sequence
from pathlib import Path

from repro.circuits.io import load_circuit
from repro.core.engine import MatchingConfig
from repro.core.equivalence import EquivalenceType
from repro.exceptions import (
    DaemonConnectionError,
    DaemonError,
    DaemonTimeoutError,
    ServiceError,
)
from repro.obs.metrics import MetricsRegistry
from repro.service.cache import ResultCache, TieredCache, build_cache
from repro.service.events import Observer, event_from_dict
from repro.service.executor import Executor, OverlapExecutor, SerialExecutor
from repro.service.pipeline import MatchingService, ResultStore, parse_shard
from repro.service.workload import MANIFEST_NAME

__all__ = [
    "PROTOCOL_VERSION",
    "RunState",
    "DaemonJob",
    "MatchingDaemon",
    "DaemonClient",
]

#: Wire-protocol version stamped on every response frame.
PROTOCOL_VERSION = "repro-daemon/v1"

#: Subscription-queue sentinel marking the end of a job's event stream.
_EOS = None

#: Subscription-queue sentinel: the subscriber fell too far behind and
#: was dropped (its connection gets an error frame instead of a stream).
_DROPPED = object()

#: How many undelivered events a subscriber may buffer before it is
#: dropped.  Bounds daemon memory against a stalled `events` client the
#: same way the job queue bounds it against submit floods.
SUBSCRIBER_BUFFER_LIMIT = 4096

#: Default-argument sentinel ("build the standard cache"), distinct from
#: an explicit ``cache=None`` ("run without a result cache").
_DEFAULT_CACHE = object()

#: Base backoff (seconds) between an events-stream disconnect and the
#: client's reconnect attempt; grows linearly per attempt, capped below.
EVENTS_RECONNECT_BACKOFF_S = 0.2
EVENTS_RECONNECT_BACKOFF_MAX_S = 2.0


def _is_loopback(host: str) -> bool:
    """Whether a bind/connect host is loopback-only.

    Hostnames other than ``localhost`` are treated as non-loopback: a
    daemon asked to bind a *name* may end up on a routable interface, so
    the auth requirement errs on the side of demanding a token.
    """
    if host == "localhost":
        return True
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False


class RunState:
    """The lifecycle states of a daemon run (plain strings on the wire)."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    #: States a run can no longer leave.
    FINAL = (COMPLETED, FAILED, CANCELLED)


class DaemonJob:
    """One submitted run: its parameters, state, and event history.

    The job doubles as the event broker for its run: the worker thread
    :meth:`publish`\\ es every lifecycle event dict, subscribers get the
    history replayed and then live events until the job reaches a final
    state.  All state transitions happen under the job's lock, so a
    subscriber can never miss the gap between replay and live stream.
    """

    def __init__(
        self,
        run_id: str,
        *,
        manifest: str | None = None,
        pairs: list[dict] | None = None,
        store: str | None = None,
        seed: int | None = None,
        resume: bool = False,
        shard: tuple[int, int] | None = None,
        records: list[dict] | None = None,
        remote_cache: str | None = None,
    ) -> None:
        self.run_id = run_id
        self.manifest = manifest
        self.pairs = pairs
        self.store = store
        self.seed = seed
        self.resume = resume
        self.shard = shard
        self.records = records
        self.remote_cache = remote_cache
        self.state = RunState.QUEUED
        self.error: str | None = None
        self.summary: dict | None = None
        self.total = 0
        self.done = 0
        self.failed = 0
        self._lock = threading.Lock()
        self._history: list[dict] = []
        self._subscribers: list[_queue.SimpleQueue] = []
        self._cancel = threading.Event()

    # -- broker ----------------------------------------------------------------
    def publish(self, event: dict) -> None:
        """Record one event dict and fan it out to live subscribers.

        Delivery happens under the job lock (the queues are unbounded,
        so the puts cannot block): a subscriber that registered is
        guaranteed every subsequent publish — there is no gap between
        the replay a subscription sees and the live stream it joins.
        A subscriber that has fallen ``SUBSCRIBER_BUFFER_LIMIT`` events
        behind is dropped (with a marker, so its handler can tell the
        client) instead of buffering a large run in daemon memory.
        """
        with self._lock:
            self._history.append(event)
            kind = event.get("event")
            if kind == "RunStarted":
                self.total = event.get("total", 0)
            elif kind in ("TaskCompleted", "TaskFailed", "CacheHit"):
                self.done += 1
                if kind == "TaskFailed":
                    self.failed += 1
            elif kind == "RunCompleted":
                # Captured here, not by the worker loop: ``to_dict()``
                # readers take this lock, so the summary must be written
                # under it too.
                self.summary = event
            kept = []
            for subscriber in self._subscribers:
                if subscriber.qsize() >= SUBSCRIBER_BUFFER_LIMIT:
                    subscriber.put(_DROPPED)
                    continue
                subscriber.put(event)
                kept.append(subscriber)
            self._subscribers = kept

    def subscribe(self, *, replay: bool = True) -> _queue.SimpleQueue:
        """A queue that yields this run's events, then the end sentinel.

        With ``replay`` the full history is pre-loaded (so late joiners —
        even after completion — see the whole run); without it only
        events published after the call arrive.
        """
        subscriber: _queue.SimpleQueue = _queue.SimpleQueue()
        with self._lock:
            if replay:
                for event in self._history:
                    subscriber.put(event)
            if self.state in RunState.FINAL:
                subscriber.put(_EOS)
            else:
                self._subscribers.append(subscriber)
        return subscriber

    def unsubscribe(self, subscriber: _queue.SimpleQueue) -> None:
        """Detach a subscriber (a disconnected client)."""
        with self._lock:
            if subscriber in self._subscribers:
                self._subscribers.remove(subscriber)

    def finish(self, state: str, error: str | None = None) -> bool:
        """Move to a final state and release every live subscriber.

        Idempotent: returns False (and changes nothing) when the job
        already reached a final state — so the worker and a concurrent
        canceller cannot double-settle one run.
        """
        with self._lock:
            if self.state in RunState.FINAL:
                return False
            self.state = state
            self.error = error
            subscribers = self._subscribers
            self._subscribers = []
            for subscriber in subscribers:
                subscriber.put(_EOS)
        return True

    # -- cancellation ----------------------------------------------------------
    def start_running(self) -> bool:
        """Atomically move ``queued`` → ``running`` (the worker's claim).

        Returns False when the job is no longer queued — a canceller got
        there first — in which case the worker must skip it.
        """
        with self._lock:
            if self.state != RunState.QUEUED:
                return False
            self.state = RunState.RUNNING
            return True

    def cancel(self) -> bool:
        """Request cancellation; returns True when this call settled it.

        A still-queued job settles to ``cancelled`` immediately (the
        worker will skip it); a running one only gets the flag and stops
        at its next event boundary, where the worker settles it.
        """
        self._cancel.set()
        with self._lock:
            if self.state != RunState.QUEUED:
                return False
            self.state = RunState.CANCELLED
            subscribers = self._subscribers
            self._subscribers = []
            for subscriber in subscribers:
                subscriber.put(_EOS)
        return True

    @property
    def cancel_requested(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancel.is_set()

    def clear_history(self) -> None:
        """Drop a *finished* run's event history (replay then yields nothing).

        The daemon calls this to bound memory: per-pair event dicts are
        the only per-run state that grows with corpus size, and the run's
        records are already persisted in its JSONL store.  No-op while
        the run is live (subscribers still need the replay gap closed).
        """
        with self._lock:
            if self.state in RunState.FINAL:
                self._history.clear()

    # -- wire form -------------------------------------------------------------
    def to_dict(self) -> dict:
        """The job as a JSON-ready status record."""
        with self._lock:
            return {
                "run_id": self.run_id,
                "state": self.state,
                "source": (
                    self.manifest
                    if self.manifest is not None
                    else f"pairs[{len(self.pairs or [])}]"
                ),
                "store": self.store,
                "seed": self.seed,
                "resume": self.resume,
                "shard": list(self.shard) if self.shard is not None else None,
                "total": self.total,
                "done": self.done,
                "failed": self.failed,
                "error": self.error,
                "summary": self.summary,
            }


class MatchingDaemon:
    """A socket server running matching jobs against shared warm state.

    Args:
        config: the :class:`~repro.core.engine.MatchingConfig` every run
            is matched under (one policy per daemon — the cache-key
            contract makes mixed policies in one cache safe, but one
            policy keeps runs comparable).
        store_dir: directory receiving one ``<run_id>.jsonl`` result
            store per submission (created if missing).
        socket_path: serve on a Unix socket at this path...
        host, port: ...or on TCP (``port=0`` picks a free port; the bound
            address is :attr:`address`).  Exactly one transport must be
            chosen.
        cache: shared result cache; defaults to
            :func:`~repro.service.cache.build_cache` with the cache
            persisted under ``store_dir/cache``.  Pass ``None`` explicitly
            to run without a result cache.
        executor: execution backend; defaults to an
            :class:`~repro.service.executor.OverlapExecutor` around a
            persistent-engine :class:`~repro.service.executor.SerialExecutor`,
            so store writes overlap execution and the engine stays warm
            across submissions.
        verify: exhaustively verify witnesses of freshly executed pairs.
        remote_cache: a ``repro-cache/v1`` cache-server address
            (``unix:<path>`` / ``tcp:<host>:<port>``, see
            ``docs/remote-cache.md``) every run's lookups also consult —
            the daemon's local cache fronts the shared remote tier, so a
            fleet of daemons shares one warm-hit pool.  A submit may name
            its own address per run.  The remote connection presents this
            daemon's own ``auth_token`` and degrades to local-only when
            the server is unreachable.
        auth_token: shared secret clients must present via the ``auth``
            op before any stateful request.  Required for a TCP bind on
            a non-loopback address (the daemon refuses to start without
            one unless ``insecure`` is set); optional elsewhere.  Also
            presented to the ``remote_cache`` server (one fleet-wide
            shared secret).
        insecure: allow a non-loopback TCP bind with no auth token — an
            explicit opt-out for trusted networks, never the default.
        max_queued: bound on jobs waiting to run; a submit beyond it is
            rejected with an error frame instead of queueing unboundedly.
        history_limit: how many *finished* runs keep their event history
            replayable.  Per-pair event dicts are the only per-run state
            that grows with corpus size, so older finished runs drop
            theirs (their status, summary and JSONL store all remain) —
            bounding a long-lived daemon's memory.
    """

    def __init__(
        self,
        config: MatchingConfig | None = None,
        *,
        store_dir: str | Path,
        socket_path: str | Path | None = None,
        host: str | None = None,
        port: int | None = None,
        cache: ResultCache | None = _DEFAULT_CACHE,  # type: ignore[assignment]
        executor: Executor | None = None,
        verify: bool = False,
        remote_cache: str | None = None,
        auth_token: str | None = None,
        insecure: bool = False,
        max_queued: int = 16,
        history_limit: int = 64,
    ) -> None:
        if (socket_path is None) == (host is None):
            raise DaemonError(
                "choose exactly one transport: socket_path=... or host=/port="
            )
        if host is not None and port is None:
            raise DaemonError("a TCP daemon needs a port (0 picks one)")
        if max_queued <= 0:
            raise DaemonError(f"max_queued must be positive, got {max_queued}")
        if history_limit <= 0:
            raise DaemonError(
                f"history_limit must be positive, got {history_limit}"
            )
        self._history_limit = history_limit
        self._config = config if config is not None else MatchingConfig()
        self._store_dir = Path(store_dir)
        self._store_dir.mkdir(parents=True, exist_ok=True)
        self._socket_path = Path(socket_path) if socket_path is not None else None
        self._host = host
        self._port = port
        if cache is _DEFAULT_CACHE:
            cache = build_cache(disk_dir=self._store_dir / "cache")
        self._cache = cache
        self._metrics = MetricsRegistry()
        if self._cache is not None:
            self._cache.bind_metrics(self._metrics)
        if executor is None:
            executor = OverlapExecutor(
                SerialExecutor(persistent_engine=True, metrics=self._metrics)
            )
        self._executor = executor
        self._verify = verify
        self._auth_token = auth_token
        self._insecure = insecure
        if remote_cache is not None:
            # Fail fast on a garbled address; reachability is checked
            # lazily (an unreachable server degrades, never refuses).
            DaemonClient.from_address(remote_cache)
        self._remote_cache_default = remote_cache
        # One RemoteCache per distinct address, created lazily by the
        # worker thread (_run_job) and torn down by stop(); the lock
        # covers the dict, not the tiers — each RemoteCache serialises
        # its own traffic under its own cache lock.
        self._remote_caches: dict[str, object] = {}
        self._remote_caches_lock = threading.Lock()
        self._pending: _queue.Queue = _queue.Queue(maxsize=max_queued)
        self._jobs: dict[str, DaemonJob] = {}
        self._jobs_lock = threading.Lock()
        self._run_counter = 0
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._worker_thread: threading.Thread | None = None
        self._connections: set[socket.socket] = set()
        self._connections_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._started_at: float | None = None

    # -- lifecycle -------------------------------------------------------------
    @property
    def address(self) -> str:
        """The bound address: ``unix:<path>`` or ``tcp:<host>:<port>``."""
        if self._socket_path is not None:
            return f"unix:{self._socket_path}"
        return f"tcp:{self._host}:{self._port}"

    @property
    def store_dir(self) -> Path:
        """The directory holding per-run result stores."""
        return self._store_dir

    @property
    def cache(self) -> ResultCache:
        """The shared result cache."""
        return self._cache

    @property
    def metrics(self) -> MetricsRegistry:
        """The daemon-wide metrics registry (the ``metrics`` op's source)."""
        return self._metrics

    def start(self) -> None:
        """Bind the socket and start the accept and worker threads."""
        if self._listener is not None:
            raise DaemonError("daemon already started")
        if (
            self._host is not None
            and not _is_loopback(self._host)
            and self._auth_token is None
            and not self._insecure
        ):
            raise DaemonError(
                f"refusing to serve on non-loopback address {self._host!r} "
                "without an auth token; pass auth_token=... "
                "(repro serve --auth-token-file) or insecure=True "
                "(--insecure) to opt out explicitly"
            )
        if self._socket_path is not None:
            if self._socket_path.exists():
                # Distinguish a *stale* socket file (previous daemon died;
                # safe to unlink and bind over) from a *live* one —
                # silently hijacking a serving daemon's address would
                # strand it and interleave two daemons' stores.
                probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                try:
                    probe.settimeout(1.0)
                    probe.connect(str(self._socket_path))
                except OSError:
                    self._socket_path.unlink()
                else:
                    raise DaemonError(
                        f"a daemon is already serving on {self._socket_path}"
                    )
                finally:
                    probe.close()
            listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            listener.bind(str(self._socket_path))
        else:
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self._host, self._port))
            self._port = listener.getsockname()[1]
        listener.listen()
        listener.settimeout(0.2)
        self._listener = listener
        self._started_at = time.monotonic()
        self._worker_thread = threading.Thread(
            target=self._work_loop, name="repro-daemon-worker", daemon=True
        )
        self._worker_thread.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-daemon-accept", daemon=True
        )
        self._accept_thread.start()

    def serve_forever(self) -> None:
        """Start (if needed) and block until the daemon is stopped."""
        if self._listener is None:
            self.start()
        try:
            self._stopped.wait()
        except KeyboardInterrupt:
            self.stop()

    def stop(self) -> None:
        """Shut down: cancel active and queued runs, close every socket.

        Safe to call from a client-handler thread (the ``shutdown`` op
        does) and idempotent.  Cancelled runs keep every record already
        flushed to their store, so they resume cleanly on a later daemon.
        """
        if self._stopping.is_set():
            self._stopped.wait()
            return
        self._stopping.set()
        with self._jobs_lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            if job.state not in RunState.FINAL:
                job.cancel()
        self._pending.put(_EOS)  # wake the worker
        if self._worker_thread is not None:
            self._worker_thread.join()
        if self._accept_thread is not None:
            self._accept_thread.join()
        if self._listener is not None:
            self._listener.close()
        if self._socket_path is not None and self._socket_path.exists():
            self._socket_path.unlink()
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            connection.close()
        # The worker thread is joined above, so the remote tiers are
        # quiescent; dropping their connections is pure cleanup.
        with self._remote_caches_lock:
            remote_caches = dict(self._remote_caches)
            self._remote_caches.clear()
        for address in sorted(remote_caches):
            remote_caches[address].close()
        self._stopped.set()

    # -- socket plumbing -------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                connection, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._connections_lock:
                self._connections.add(connection)
            threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="repro-daemon-client",
                daemon=True,
            ).start()

    def _serve_connection(self, connection: socket.socket) -> None:
        reader = connection.makefile("r", encoding="utf-8")
        writer = connection.makefile("w", encoding="utf-8")
        # Connections start authenticated only when no token is
        # configured; the `auth` op upgrades the flag for this
        # connection alone (it rides the dispatch return value, so the
        # handler thread owns it without any shared state).
        authenticated = self._auth_token is None
        try:
            while not self._stopping.is_set():
                line = reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    frame = json.loads(line)
                    if not isinstance(frame, dict):
                        raise ValueError("frame must be a JSON object")
                except ValueError as error:
                    self._send(writer, self._error(f"malformed frame: {error}"))
                    continue
                keep_open, authenticated = self._dispatch(
                    frame, writer, authenticated
                )
                if not keep_open:
                    break
        except OSError:
            # Client went away mid-write (or the daemon is closing the
            # socket under us); nothing to clean up beyond the handles.
            pass
        finally:
            with self._connections_lock:
                self._connections.discard(connection)
            for handle in (reader, writer, connection):
                try:
                    handle.close()
                except OSError:
                    pass

    @staticmethod
    def _send(writer, frame: dict) -> None:
        writer.write(json.dumps(frame) + "\n")
        writer.flush()

    @staticmethod
    def _error(message: str) -> dict:
        return {"ok": False, "protocol": PROTOCOL_VERSION, "error": message}

    def _ok(self, **fields) -> dict:
        frame = {"ok": True, "protocol": PROTOCOL_VERSION}
        frame.update(fields)
        return frame

    def _dispatch(
        self, frame: dict, writer, authenticated: bool = True
    ) -> tuple[bool, bool]:
        """Handle one request frame.

        Returns ``(keep_open, authenticated)``: the first element is
        False to close the connection, the second carries the
        connection's (possibly just upgraded) auth state back to the
        read loop.
        """
        op = frame.get("op")
        if op == "ping":
            # Liveness stays unauthenticated: fleet health probes and
            # the version handshake must work before the token exchange.
            self._send(writer, self._ok(op="ping", pid=os.getpid()))
            return True, authenticated
        if op == "auth":
            response, authenticated = self._handle_auth(frame, authenticated)
            self._send(writer, response)
            return True, authenticated
        if not authenticated:
            self._send(
                writer,
                self._error(
                    "authentication required: send "
                    '{"op": "auth", "token": ...} first'
                ),
            )
            return True, authenticated
        if op == "submit":
            self._send(writer, self._handle_submit(frame))
            return True, authenticated
        if op == "status":
            self._send(writer, self._handle_status(frame))
            return True, authenticated
        if op == "stats":
            self._send(writer, self._handle_stats())
            return True, authenticated
        if op == "metrics":
            self._send(
                writer, self._ok(op="metrics", metrics=self._metrics.snapshot())
            )
            return True, authenticated
        if op == "cancel":
            self._send(writer, self._handle_cancel(frame))
            return True, authenticated
        if op == "fetch_store":
            self._send(writer, self._handle_fetch_store(frame))
            return True, authenticated
        if op == "events":
            return self._handle_events(frame, writer), authenticated
        if op == "shutdown":
            self._send(writer, self._ok(op="shutdown", shutting_down=True))
            # Stop from a fresh thread: stop() joins the accept thread and
            # waits on handler sockets, and this handler must first return
            # so its own connection can be torn down.
            threading.Thread(
                target=self.stop, name="repro-daemon-shutdown", daemon=True
            ).start()
            return False, authenticated
        self._send(writer, self._error(f"unknown op {op!r}"))
        return True, authenticated

    def _handle_auth(
        self, frame: dict, authenticated: bool
    ) -> tuple[dict, bool]:
        """The shared-secret handshake; constant-time token comparison."""
        if self._auth_token is None:
            return self._ok(op="auth", authenticated=True), True
        token = frame.get("token")
        if not isinstance(token, str):
            return self._error("auth needs a string 'token'"), authenticated
        if not hmac.compare_digest(
            token.encode("utf-8"), self._auth_token.encode("utf-8")
        ):
            # An error frame, not a hang-up: the protocol promise that
            # errors never close the connection holds for auth too.
            return self._error("auth failed: bad token"), authenticated
        return self._ok(op="auth", authenticated=True), True

    # -- ops -------------------------------------------------------------------
    def _handle_submit(self, frame: dict) -> dict:
        if self._stopping.is_set():
            return self._error("daemon is shutting down")
        manifest = frame.get("manifest")
        pairs = frame.get("pairs")
        if (manifest is None) == (pairs is None):
            return self._error("submit needs exactly one of 'manifest' or 'pairs'")
        if frame.get("resume") and not (
            frame.get("store") or frame.get("records")
        ):
            # Without an explicit store (or records to pre-seed a fresh
            # one) the run gets an empty store, which would make
            # "resume" a silent no-op.
            return self._error(
                "resume requires an explicit 'store' path or 'records'"
            )
        shard = frame.get("shard")
        if shard is not None:
            if manifest is None:
                return self._error("'shard' requires a manifest submission")
            try:
                if isinstance(shard, str):
                    shard = parse_shard(shard)
                elif (
                    isinstance(shard, (list, tuple))
                    and len(shard) == 2
                    and all(isinstance(part, int) for part in shard)
                ):
                    shard = parse_shard(f"{shard[0]}/{shard[1]}")
                else:
                    return self._error(
                        "'shard' must be an 'i/n' string or an [i, n] pair"
                    )
            except ServiceError as error:
                return self._error(str(error))
        records = frame.get("records")
        if records is not None:
            problem = self._validate_records(records)
            if problem is not None:
                return self._error(problem)
        remote_cache = frame.get("remote_cache")
        if remote_cache is not None:
            if not isinstance(remote_cache, str):
                return self._error("'remote_cache' must be an address string")
            try:
                DaemonClient.from_address(remote_cache)
            except DaemonError as error:
                return self._error(str(error))
        if manifest is not None:
            path = Path(manifest)
            if path.is_dir():
                path = path / MANIFEST_NAME
            if not path.exists():
                return self._error(f"manifest not found: {manifest}")
            manifest = str(path)
        else:
            problem = self._validate_pairs(pairs)
            if problem is not None:
                return self._error(problem)
        with self._jobs_lock:
            self._trim_history()
            self._run_counter += 1
            run_id = f"run-{self._run_counter:04d}"
            store = frame.get("store") or str(self._store_dir / f"{run_id}.jsonl")
            job = DaemonJob(
                run_id,
                manifest=manifest,
                pairs=pairs,
                store=store,
                seed=frame.get("seed"),
                resume=bool(frame.get("resume", False)),
                shard=shard,
                records=records,
                remote_cache=remote_cache,
            )
            try:
                self._pending.put_nowait(job)
            except _queue.Full:
                self._run_counter -= 1
                return self._error(
                    f"job queue is full ({self._pending.maxsize} queued); retry later"
                )
            self._jobs[run_id] = job
        return self._ok(
            op="submit", run_id=run_id, state=job.state, store=job.store
        )

    def _trim_history(self) -> None:
        """Drop event histories of all but the newest finished runs.

        Called with :attr:`_jobs_lock` held, on every submit — so
        retained history is bounded by ``history_limit`` runs no matter
        how long the daemon lives.  Jobs iterate in submission order
        (insertion order of ``_jobs``).
        """
        finished = [
            job for job in self._jobs.values() if job.state in RunState.FINAL
        ]
        for job in finished[: -self._history_limit]:
            job.clear_history()

    @staticmethod
    def _validate_pairs(pairs) -> str | None:
        if not isinstance(pairs, list) or not pairs:
            return "'pairs' must be a non-empty list"
        for position, pair in enumerate(pairs):
            if not isinstance(pair, dict):
                return f"pair #{position} must be an object"
            for field in ("circuit1", "circuit2", "equivalence"):
                if field not in pair:
                    return f"pair #{position} is missing {field!r}"
            for field in ("circuit1", "circuit2"):
                if not Path(pair[field]).exists():
                    return f"pair #{position}: circuit not found: {pair[field]}"
            try:
                EquivalenceType.from_label(pair["equivalence"])
            except ValueError as error:
                return f"pair #{position}: {error}"
        return None

    @staticmethod
    def _validate_records(records) -> str | None:
        """Pre-seed records must at least be store-shaped (pair_id keyed)."""
        if not isinstance(records, list) or not records:
            return "'records' must be a non-empty list"
        for position, record in enumerate(records):
            if not isinstance(record, dict):
                return f"record #{position} must be an object"
            if not isinstance(record.get("pair_id"), str):
                return f"record #{position} is missing a string 'pair_id'"
        return None

    def _get_job(self, frame: dict) -> DaemonJob | str:
        run_id = frame.get("run_id")
        if not isinstance(run_id, str):
            return "missing 'run_id'"
        with self._jobs_lock:
            job = self._jobs.get(run_id)
        if job is None:
            return f"unknown run {run_id!r}"
        return job

    def _handle_status(self, frame: dict) -> dict:
        if frame.get("run_id") is not None:
            job = self._get_job(frame)
            if isinstance(job, str):
                return self._error(job)
            return self._ok(op="status", run=job.to_dict())
        with self._jobs_lock:
            # Submission order == insertion order (also correct past
            # run-9999, where lexicographic id order would not be).
            runs = [job.to_dict() for job in self._jobs.values()]
        return self._ok(op="status", runs=runs)

    def _handle_stats(self) -> dict:
        # Counts derive from job states, so stats can never disagree with
        # what a status probe of the individual runs would report.
        with self._jobs_lock:
            states = [job.state for job in self._jobs.values()]
            pairs = {
                "executed": sum(
                    (job.summary or {}).get("executed", 0)
                    for job in self._jobs.values()
                ),
                "done": sum(job.done for job in self._jobs.values()),
                "failed": sum(job.failed for job in self._jobs.values()),
            }
        counts = {
            "submitted": len(states),
            "queued": states.count(RunState.QUEUED),
            "running": states.count(RunState.RUNNING),
            "completed": states.count(RunState.COMPLETED),
            "failed": states.count(RunState.FAILED),
            "cancelled": states.count(RunState.CANCELLED),
        }
        if self._cache is not None:
            # CacheStats.as_dict is the one shape both `stats` and the
            # `metrics` snapshot reconcile against; scheme_hits attribute
            # hits to the fingerprint scheme(s) of the hitting key — the
            # wire-visible evidence that warm wide traffic is served by
            # probe identities, not re-execution.
            cache_stats = {
                **self._cache.stats.as_dict(),
                "size": len(self._cache),
            }
        else:
            cache_stats = None
        return self._ok(
            op="stats",
            uptime=time.monotonic() - self._started_at,
            executor=self._executor.name,
            store_dir=str(self._store_dir),
            runs=counts,
            pairs=pairs,
            cache=cache_stats,
        )

    def _handle_cancel(self, frame: dict) -> dict:
        job = self._get_job(frame)
        if isinstance(job, str):
            return self._error(job)
        if job.state not in RunState.FINAL:
            job.cancel()
        return self._ok(op="cancel", run_id=job.run_id, state=job.state)

    def _handle_fetch_store(self, frame: dict) -> dict:
        """Ship a run's JSONL store to the client, record by record.

        Records come back in file order (the store is append-only, so
        that is completion order); torn lines are skipped and counted,
        exactly like :meth:`ResultStore.load` would on resume.  The op
        works in any run state — a cancelled or failed run's partial
        store is precisely what the fleet coordinator needs to reassign
        its shard without re-querying settled pairs.
        """
        job = self._get_job(frame)
        if isinstance(job, str):
            return self._error(job)
        records: list[dict] = []
        torn_lines = 0
        path = Path(job.store)
        if path.exists():
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        torn_lines += 1
                        continue
                    if isinstance(record, dict):
                        records.append(record)
                    else:
                        torn_lines += 1
        return self._ok(
            op="fetch_store",
            run_id=job.run_id,
            state=job.state,
            store=job.store,
            records=records,
            torn_lines=torn_lines,
        )

    def _handle_events(self, frame: dict, writer) -> bool:
        job = self._get_job(frame)
        if isinstance(job, str):
            self._send(writer, self._error(job))
            return True
        replay = bool(frame.get("replay", True))
        subscription = job.subscribe(replay=replay)
        self._send(writer, self._ok(op="events", run_id=job.run_id, state=job.state))
        try:
            while True:
                event = subscription.get()
                if event is _EOS:
                    break
                if event is _DROPPED:
                    self._send(
                        writer,
                        self._error(
                            "events subscription dropped: client fell more "
                            f"than {SUBSCRIBER_BUFFER_LIMIT} events behind"
                        ),
                    )
                    return True
                self._send(writer, event)
            self._send(
                writer,
                self._ok(op="events", done=True, run_id=job.run_id, state=job.state),
            )
        finally:
            job.unsubscribe(subscription)
        return True

    # -- the worker ------------------------------------------------------------
    def _work_loop(self) -> None:
        while True:
            job = self._pending.get()
            if job is _EOS:
                break
            if self._stopping.is_set():
                job.cancel()
                continue
            if not job.start_running():
                # A canceller settled the job while it was queued.
                continue
            self._run_job(job)

    def _events_for(self, job: DaemonJob, service: MatchingService) -> Iterator:
        if job.manifest is not None:
            return service.stream(
                job.manifest,
                store_path=job.store,
                resume=job.resume,
                seed=job.seed,
                shard=job.shard,
            )
        pairs = [
            (
                load_circuit(pair["circuit1"]),
                load_circuit(pair["circuit2"]),
                pair["equivalence"],
            )
            for pair in job.pairs
        ]
        return service.stream_pairs(
            pairs, seed=job.seed, store_path=job.store, resume=job.resume
        )

    def _remote_for(self, address: str):
        """The shared :class:`~repro.cachenet.remote.RemoteCache` for an address.

        Called from the worker thread.  A tier that degraded during an
        earlier run is dropped and rebuilt, so the next submission gets
        one fresh reconnect attempt instead of inheriting a dead
        connection forever.  The connection presents this daemon's own
        auth token — never one taken from the wire.
        """
        from repro.cachenet.remote import RemoteCache

        with self._remote_caches_lock:
            remote = self._remote_caches.get(address)
            if remote is not None and remote.degraded:
                remote.close()
                del self._remote_caches[address]
                remote = None
            if remote is None:
                remote = RemoteCache.from_address(
                    address, auth_token=self._auth_token
                )
                remote.bind_metrics(self._metrics)
                self._remote_caches[address] = remote
            return remote

    def _cache_for(self, job: DaemonJob) -> ResultCache | None:
        """The effective cache for one run: local, remote-tiered, or None."""
        address = job.remote_cache or self._remote_cache_default
        if address is None:
            return self._cache
        remote = self._remote_for(address)
        if self._cache is None:
            return remote
        # A per-run wrapper; member tiers keep their own metrics
        # bindings, and the wrapper's throwaway stats stay unbound so
        # nothing double-counts.  Local tier in front: remote hits are
        # promoted locally, local misses written through to the pool.
        return TieredCache(self._cache, remote)

    def _run_job(self, job: DaemonJob) -> None:
        service = MatchingService(
            self._config,
            executor=self._executor,
            cache=self._cache_for(job),
            verify=self._verify,
            metrics=self._metrics,
        )
        outcome = RunState.COMPLETED
        error: str | None = None
        try:
            if job.records:
                self._preseed_store(job)
            events = self._events_for(job, service)
            for event in events:
                job.publish(event.to_dict())
                if job.cancel_requested:
                    events.close()
                    outcome = RunState.CANCELLED
                    break
        except Exception as failure:  # noqa: BLE001 - one bad run must not
            # take the worker thread (and with it the daemon) down.
            outcome = RunState.FAILED
            error = f"{type(failure).__name__}: {failure}"
        job.finish(outcome, error)
        self._metrics.counter("repro_daemon_jobs_total").inc(state=job.state)

    @staticmethod
    def _preseed_store(job: DaemonJob) -> None:
        """Append a submit's ``records`` to the run store before it runs.

        This is how a fleet coordinator moves a dead worker's settled
        pairs to the reassigned peer: seeded into the store, a
        ``resume`` run replays them as cache hits and spends zero oracle
        queries on them.  Records whose pair is already in the store are
        skipped, so re-seeding an existing store never duplicates lines.
        """
        store = ResultStore(job.store)
        existing = store.load()
        for record in job.records:
            if record["pair_id"] not in existing:
                store.append(record)


class DaemonClient:
    """A blocking client for the ``repro-daemon/v1`` wire protocol.

    One client wraps one connection; requests and responses are
    line-delimited JSON frames.  Response frames with ``"ok": false``
    raise :class:`~repro.exceptions.DaemonError` carrying the server's
    message.  Usable as a context manager.

    Args:
        socket_path: connect to a Unix-socket daemon...
        host, port: ...or a TCP one.
        timeout: socket timeout in seconds (``None`` blocks forever —
            fine for :meth:`events`, which has no frame cadence).
        auth_token: shared secret for a token-protected daemon; sent as
            an ``auth`` handshake on every (re)connect.
    """

    def __init__(
        self,
        socket_path: str | Path | None = None,
        host: str | None = None,
        port: int | None = None,
        timeout: float | None = None,
        auth_token: str | None = None,
    ) -> None:
        if (socket_path is None) == (host is None):
            raise DaemonError(
                "choose exactly one transport: socket_path=... or host=/port="
            )
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._timeout = timeout
        self._auth_token = auth_token
        self._connection: socket.socket | None = None
        self._reader = None
        self._writer = None

    @classmethod
    def from_address(
        cls,
        address: str,
        timeout: float | None = None,
        auth_token: str | None = None,
    ) -> "DaemonClient":
        """Build a client from an ``unix:<path>`` / ``tcp:<host>:<port>`` string."""
        kind, _, rest = address.partition(":")
        if kind == "unix" and rest:
            return cls(socket_path=rest, timeout=timeout, auth_token=auth_token)
        if kind == "tcp" and rest:
            host, _, port = rest.rpartition(":")
            if host and port.isdigit():
                return cls(
                    host=host,
                    port=int(port),
                    timeout=timeout,
                    auth_token=auth_token,
                )
        raise DaemonError(
            f"not a daemon address: {address!r} "
            "(expected unix:<path> or tcp:<host>:<port>)"
        )

    @property
    def address(self) -> str:
        """The target address: ``unix:<path>`` or ``tcp:<host>:<port>``."""
        if self._socket_path is not None:
            return f"unix:{self._socket_path}"
        return f"tcp:{self._host}:{self._port}"

    # -- connection ------------------------------------------------------------
    def connect(self) -> "DaemonClient":
        """Open the connection (idempotent); returns self for chaining."""
        if self._connection is not None:
            return self
        try:
            if self._socket_path is not None:
                connection = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                connection.settimeout(self._timeout)
                connection.connect(str(self._socket_path))
            else:
                connection = socket.create_connection(
                    (self._host, self._port), timeout=self._timeout
                )
        except OSError as error:
            raise DaemonConnectionError(
                f"cannot reach daemon: {error}"
            ) from None
        self._connection = connection
        self._reader = connection.makefile("r", encoding="utf-8")
        self._writer = connection.makefile("w", encoding="utf-8")
        if self._auth_token is not None:
            self._handshake()
        return self

    def _handshake(self) -> None:
        """Present the shared secret; raises (and closes) on refusal."""
        try:
            self._writer.write(
                json.dumps({"op": "auth", "token": self._auth_token}) + "\n"
            )
            self._writer.flush()
        except OSError as error:
            self.close()
            raise DaemonConnectionError(
                f"daemon connection lost: {error}"
            ) from None
        try:
            response = self._read_frame()
        except DaemonError:
            self.close()
            raise
        if response.get("ok") is not True:
            self.close()
            raise DaemonError(
                response.get("error", "daemon refused the auth handshake")
            )

    def close(self) -> None:
        """Close the connection (idempotent)."""
        for handle in (self._reader, self._writer, self._connection):
            if handle is not None:
                try:
                    handle.close()
                except OSError:
                    pass
        self._reader = self._writer = self._connection = None

    def __enter__(self) -> "DaemonClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- framing ---------------------------------------------------------------
    def _read_frame(self) -> dict:
        try:
            line = self._reader.readline()
        except TimeoutError:
            # The connection is up but quiet — distinct from a loss, so
            # heartbeat-style callers (the fleet coordinator) can probe
            # instead of reconnecting.
            raise DaemonTimeoutError(
                f"no frame within {self._timeout}s"
            ) from None
        except OSError as error:
            raise DaemonConnectionError(
                f"daemon connection lost: {error}"
            ) from None
        if not line:
            raise DaemonConnectionError("daemon closed the connection")
        try:
            frame = json.loads(line)
        except json.JSONDecodeError as error:
            raise DaemonError(f"daemon sent a malformed frame: {error}") from None
        if not isinstance(frame, dict):
            raise DaemonError("daemon sent a non-object frame")
        return frame

    def request(self, frame: dict) -> dict:
        """Send one request frame, return the (checked) response frame."""
        self.connect()
        try:
            self._writer.write(json.dumps(frame) + "\n")
            self._writer.flush()
        except OSError as error:
            raise DaemonConnectionError(
                f"daemon connection lost: {error}"
            ) from None
        response = self._read_frame()
        if response.get("ok") is not True:
            raise DaemonError(response.get("error", "daemon refused the request"))
        return response

    # -- ops -------------------------------------------------------------------
    def ping(self) -> dict:
        """Round-trip a ``ping``; returns the response frame."""
        return self.request({"op": "ping"})

    def submit(
        self,
        manifest: str | Path | None = None,
        *,
        pairs: Sequence[dict] | None = None,
        seed: int | None = None,
        resume: bool = False,
        store: str | Path | None = None,
        shard: tuple[int, int] | str | None = None,
        records: Sequence[dict] | None = None,
        remote_cache: str | None = None,
    ) -> dict:
        """Submit a run (a manifest path or a pair list); returns the ack.

        ``shard`` restricts a manifest run to one deterministic
        ``i/n`` partition; ``records`` pre-seed the run's store before
        it starts (with ``resume`` they are replayed without re-running
        — the fleet coordinator's shard-reassignment path).
        ``remote_cache`` points this run's lookups at a shared
        ``repro-cache/v1`` server (``docs/remote-cache.md``).
        """
        frame: dict = {"op": "submit", "seed": seed, "resume": resume}
        if manifest is not None:
            frame["manifest"] = str(manifest)
        if pairs is not None:
            frame["pairs"] = list(pairs)
        if store is not None:
            frame["store"] = str(store)
        if shard is not None:
            frame["shard"] = shard if isinstance(shard, str) else list(shard)
        if records is not None:
            frame["records"] = list(records)
        if remote_cache is not None:
            frame["remote_cache"] = remote_cache
        return self.request(frame)

    def status(self, run_id: str | None = None) -> dict:
        """One run's status record, or all of them."""
        frame: dict = {"op": "status"}
        if run_id is not None:
            frame["run_id"] = run_id
        return self.request(frame)

    def stats(self) -> dict:
        """Daemon-wide counters: runs, pairs, cache hits, uptime."""
        return self.request({"op": "stats"})

    def metrics(self) -> dict:
        """The daemon's full ``repro-metrics/v1`` snapshot."""
        return self.request({"op": "metrics"})

    def cancel(self, run_id: str) -> dict:
        """Cancel a queued or running run."""
        return self.request({"op": "cancel", "run_id": run_id})

    def fetch_store(self, run_id: str) -> dict:
        """A run's JSONL store records, in file order (any run state)."""
        return self.request({"op": "fetch_store", "run_id": run_id})

    def shutdown(self) -> dict:
        """Ask the daemon to stop (cancelling anything in flight)."""
        response = self.request({"op": "shutdown"})
        self.close()
        return response

    def events(
        self,
        run_id: str,
        *,
        replay: bool = True,
        reconnects: int = 1,
    ) -> Iterator[dict]:
        """Subscribe to a run's event stream; yields raw event dicts.

        The generator ends when the run reaches a final state; the
        server's terminator frame is consumed, and its ``state`` is
        available afterwards as the generator's return value (via
        ``StopIteration.value`` — or just use :meth:`watch`).

        A *transient disconnect* (connection reset or daemon hang-up
        mid-stream — :class:`~repro.exceptions.DaemonConnectionError`,
        never a server error frame or a timeout) is survived up to
        ``reconnects`` times: the client backs off briefly, reconnects,
        re-subscribes with replay, and silently skips the events it
        already yielded — the run is unaffected, the subscriber sees an
        uninterrupted stream.  Only available when subscribing with
        ``replay`` (without the initial replay the client cannot know
        which re-replayed events predate its subscription).
        """
        self.request({"op": "events", "run_id": run_id, "replay": replay})
        attempts = 0
        yielded = 0
        skip = 0
        while True:
            try:
                frame = self._read_frame()
            except DaemonTimeoutError:
                raise
            except DaemonConnectionError:
                if attempts >= reconnects or not replay:
                    raise
                attempts += 1
                self.close()
                time.sleep(min(
                    EVENTS_RECONNECT_BACKOFF_S * attempts,
                    EVENTS_RECONNECT_BACKOFF_MAX_S,
                ))
                # Replay is append-only and in publish order, so the
                # first `yielded` event frames of the fresh subscription
                # are exactly the ones already delivered.
                self.request({"op": "events", "run_id": run_id, "replay": True})
                skip = yielded
                continue
            if "event" in frame:
                if skip > 0:
                    skip -= 1
                    continue
                yielded += 1
                yield frame
                continue
            if frame.get("ok") is not True:
                raise DaemonError(frame.get("error", "event stream broke"))
            return frame.get("state")

    def watch(
        self,
        run_id: str,
        observers: Sequence[Observer] = (),
        *,
        replay: bool = True,
    ) -> str:
        """Forward a run's events to observers; returns the final state.

        Frames are rebuilt into typed :mod:`repro.service.events` objects
        via :func:`~repro.service.events.event_from_dict`, so the stock
        observers (``ProgressObserver``, ``EventLogObserver``,
        ``StatsObserver``) behave exactly as they do in-process.
        """
        stream = self.events(run_id, replay=replay)
        while True:
            try:
                frame = next(stream)
            except StopIteration as stop:
                return stop.value
            event = event_from_dict(frame)
            for observer in observers:
                observer.notify(event)
