"""Execution backends: stream pair tasks through workers, as completed.

Executors take an iterable of :class:`PairTask` and a
:class:`~repro.core.engine.MatchingConfig` and yield one
:class:`TaskOutcome` per task from :meth:`Executor.stream` in
*as-completed* order — the streaming contract the service pipeline
consumes so store writes and observer notifications overlap execution
instead of waiting for the whole batch.  Two invariants make the
backends interchangeable:

* **Determinism** — each task carries its own RNG seed, derived from the
  run seed and the task index by :func:`derive_seed` (a SHA-256 mix, so
  nearby indices get unrelated streams).  No state is shared between
  tasks, so executing them serially, in shuffled order, or on four
  processes yields identical per-task outcomes; only the *arrival order*
  of the stream may differ between backends.
* **Serialised results** — outcomes carry results as JSON dicts (the
  :mod:`repro.service.serialize` format) rather than live objects, so
  crossing a process or thread boundary is not observable downstream.

:class:`SerialExecutor` runs in-process and consumes its task iterable
lazily (task in, outcome out, one at a time); :class:`ParallelExecutor`
shards the batch into contiguous chunks over a ``ProcessPoolExecutor``
(fork start method where the platform offers it — the matcher registry is
populated at import time and forked workers inherit it for free) and
yields chunks as they finish; :class:`OverlapExecutor` runs any inner
executor on a background thread behind a bounded queue, so a consumer
doing I/O (JSONL store appends) overlaps with oracle execution.

The pre-streaming batch API, :meth:`Executor.execute`, survives as a
deprecated wrapper that drains the stream and sorts by task index.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import queue as _queue
import threading
import time
import warnings
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from repro.core.engine import MatchingConfig, MatchingEngine
from repro.service import serialize

__all__ = [
    "PairTask",
    "TaskOutcome",
    "derive_seed",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "OverlapExecutor",
]


@dataclass(frozen=True)
class PairTask:
    """One pair to match, self-contained and picklable.

    Attributes:
        index: position in the batch (stable across backends; streams may
            deliver outcomes out of index order).
        circuit1, circuit2: the pair — circuits or permutations (picklable;
            live oracles are not shipped across processes).
        equivalence: the promised class, as its "X-Y" label.
        seed: per-task RNG seed (``None`` = fresh randomness, which
            forfeits serial/parallel reproducibility for this task).
        pair_id: optional stable identifier carried through to the outcome
            (corpus entries use it for resume bookkeeping).
    """

    index: int
    circuit1: object
    circuit2: object
    equivalence: str
    seed: int | None = None
    pair_id: str | None = None


@dataclass(frozen=True)
class TaskOutcome:
    """The executed counterpart of one :class:`PairTask`.

    Attributes:
        index: the task's batch position.
        pair_id: the task's identifier, if any.
        equivalence: the promised class label.
        result: the serialised :class:`~repro.core.problem.MatchingResult`
            (:func:`repro.service.serialize.result_to_dict`), or ``None``
            when the matcher failed.
        error: ``"ExceptionName: message"`` on failure.
        matcher: name of the registry entry that ran.
        duration_s: wall clock of the engine dispatch, measured where the
            task ran (the worker process for pooled backends).  Excluded
            from equality — a replayed outcome with a different timing is
            still the *same* outcome, which is what keeps serial and
            batch comparisons (and byte-identical records) meaningful.
    """

    index: int
    pair_id: str | None
    equivalence: str
    result: dict | None = None
    error: str | None = None
    matcher: str | None = None
    duration_s: float | None = field(default=None, compare=False)

    @property
    def matched(self) -> bool:
        """Whether the task produced witnesses."""
        return self.result is not None


def derive_seed(base_seed: int | None, index: int) -> int | None:
    """A per-task seed decorrelated from neighbours but fully determined.

    Hashing ``base_seed:index`` (rather than e.g. adding them) keeps task
    streams statistically independent while remaining identical no matter
    which worker, chunk or process order executes the task.
    """
    if base_seed is None:
        return None
    digest = hashlib.sha256(f"{base_seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


def _execute_task(engine: MatchingEngine, task: PairTask) -> TaskOutcome:
    """Run one task through the engine's batch path (shared error format)."""
    started = time.perf_counter()
    report = engine.match_many(
        [(task.circuit1, task.circuit2, task.equivalence)], rng=task.seed
    )
    duration_s = time.perf_counter() - started
    entry = report.entries[0]
    return TaskOutcome(
        index=task.index,
        pair_id=task.pair_id,
        equivalence=task.equivalence,
        result=serialize.result_to_dict(entry.result) if entry.result else None,
        error=entry.error,
        matcher=entry.matcher,
        duration_s=duration_s,
    )


def _execute_chunk(
    tasks: list[PairTask], config: MatchingConfig
) -> list[TaskOutcome]:
    """Process-pool worker entry point: one engine per chunk, tasks in order."""
    engine = MatchingEngine(config)
    return [_execute_task(engine, task) for task in tasks]


class Executor(ABC):
    """Strategy interface for running a stream of pair tasks."""

    #: Human-readable backend name for reports.
    name: str = "executor"

    @abstractmethod
    def stream(
        self, tasks: Iterable[PairTask], config: MatchingConfig
    ) -> Iterator[TaskOutcome]:
        """Yield one outcome per task, as completed.

        Arrival order is backend-specific (serial backends preserve task
        order; pooled backends yield whichever chunk finishes first); the
        per-task outcomes themselves are deterministic either way because
        every task carries its own seed.
        """

    def execute(
        self, tasks: Iterable[PairTask], config: MatchingConfig
    ) -> list[TaskOutcome]:
        """Deprecated batch form: drain :meth:`stream`, sort by task index.

        .. deprecated::
            Iterate :meth:`stream` instead; the list form buffers the
            whole run and cannot overlap downstream work with execution.
        """
        warnings.warn(
            f"{type(self).__name__}.execute() is deprecated; iterate "
            f"{type(self).__name__}.stream() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return sorted(self.stream(tasks, config), key=lambda outcome: outcome.index)


class SerialExecutor(Executor):
    """Run tasks one after another in the calling process.

    The task iterable is consumed lazily: each task is pulled, executed
    and its outcome yielded before the next task is even looked at, so a
    generator of tasks interleaves perfectly with the outcome stream.

    Args:
        persistent_engine: keep one :class:`MatchingEngine` per
            :class:`MatchingConfig` alive across :meth:`stream` calls
            instead of building a fresh one per run.  What a long-lived
            process (the matching daemon) wants: the engine — registry
            resolution and all — stays warm between submissions.  Off by
            default so one-shot runs keep their no-shared-state property.
        metrics: optional metrics registry (duck-typed
            :class:`repro.obs.metrics.MetricsRegistry`) handed to every
            engine this executor builds, so engine-level counters
            (``repro_engine_pairs_total`` and friends) land in-process.
            Pooled backends cannot offer this — their engines live in
            worker processes — which is why the knob sits here and not on
            :class:`Executor`.
    """

    name = "serial"

    def __init__(self, *, persistent_engine: bool = False, metrics=None) -> None:
        self._persistent = persistent_engine
        self._metrics = metrics
        self._engines: dict[MatchingConfig, MatchingEngine] = {}

    def _engine(self, config: MatchingConfig) -> MatchingEngine:
        if not self._persistent:
            return MatchingEngine(config, metrics=self._metrics)
        engine = self._engines.get(config)
        if engine is None:
            engine = self._engines[config] = MatchingEngine(
                config, metrics=self._metrics
            )
        return engine

    def stream(
        self, tasks: Iterable[PairTask], config: MatchingConfig
    ) -> Iterator[TaskOutcome]:
        engine = self._engine(config)
        for task in tasks:
            yield _execute_task(engine, task)


class ParallelExecutor(Executor):
    """Shard tasks into chunks across a process pool, yield as completed.

    Args:
        workers: pool size; defaults to the CPU count.
        chunk_size: tasks per submitted chunk; defaults to spreading the
            batch over ``4 * workers`` chunks so an unlucky chunk of slow
            pairs cannot serialise the run.
    """

    name = "parallel"

    def __init__(self, workers: int | None = None, chunk_size: int | None = None) -> None:
        if workers is not None and workers <= 0:
            raise ValueError(f"worker count must be positive, got {workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk size must be positive, got {chunk_size}")
        self._workers = workers if workers is not None else (os.cpu_count() or 2)
        self._chunk_size = chunk_size

    @property
    def workers(self) -> int:
        """The configured pool size."""
        return self._workers

    def stream(
        self, tasks: Iterable[PairTask], config: MatchingConfig
    ) -> Iterator[TaskOutcome]:
        tasks = list(tasks)
        if self._workers == 1 or len(tasks) <= 1:
            yield from _execute_chunk(tasks, config)
            return
        chunk_size = self._chunk_size
        if chunk_size is None:
            chunk_size = max(1, -(-len(tasks) // (4 * self._workers)))
        chunks = [
            tasks[start : start + chunk_size]
            for start in range(0, len(tasks), chunk_size)
        ]
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        with ProcessPoolExecutor(
            max_workers=min(self._workers, len(chunks)), mp_context=context
        ) as pool:
            futures = [pool.submit(_execute_chunk, chunk, config) for chunk in chunks]
            for future in as_completed(futures):
                yield from future.result()


#: Queue sentinel marking the end of an overlap stream.
_DONE = object()


class OverlapExecutor(Executor):
    """Pipeline an inner executor with the consumer over a bounded queue.

    A background thread drains ``inner.stream`` into a queue while the
    caller consumes outcomes from this stream — so the consumer's blocking
    work (JSONL store appends, observer I/O) overlaps with oracle
    execution instead of alternating with it.  The queue is bounded, so a
    slow consumer back-pressures the producer instead of buffering the
    whole run.

    Outcome order is exactly the inner executor's order; an exception on
    the producer side (not a matcher failure, which is an outcome — a
    genuinely broken task) is re-raised in the consumer.

    Args:
        inner: the executor doing the actual matching; defaults to a
            :class:`SerialExecutor`.
        buffer_size: maximum outcomes in flight between the threads.
    """

    def __init__(self, inner: Executor | None = None, buffer_size: int = 64) -> None:
        if buffer_size <= 0:
            raise ValueError(f"buffer size must be positive, got {buffer_size}")
        self._inner = inner if inner is not None else SerialExecutor()
        self._buffer_size = buffer_size
        self.name = f"overlap[{self._inner.name}]"

    @property
    def inner(self) -> Executor:
        """The wrapped executor."""
        return self._inner

    def stream(
        self, tasks: Iterable[PairTask], config: MatchingConfig
    ) -> Iterator[TaskOutcome]:
        outcomes: _queue.Queue = _queue.Queue(maxsize=self._buffer_size)
        cancelled = threading.Event()
        failure: list[BaseException] = []

        def produce() -> None:
            try:
                for outcome in self._inner.stream(tasks, config):
                    outcomes.put(outcome)
                    if cancelled.is_set():
                        break
            except BaseException as error:  # noqa: BLE001 - re-raised in consumer
                failure.append(error)
            finally:
                outcomes.put(_DONE)

        producer = threading.Thread(
            target=produce, name="repro-overlap-producer", daemon=True
        )
        producer.start()
        finished = False
        try:
            while True:
                outcome = outcomes.get()
                if outcome is _DONE:
                    finished = True
                    break
                yield outcome
        finally:
            # A consumer that abandons the stream early (break, observer
            # exception, GeneratorExit) leaves the producer blocked on a
            # full queue; cancel it and drain to the sentinel so join()
            # cannot deadlock.  At most one more outcome is computed.
            cancelled.set()
            while not finished:
                if outcomes.get() is _DONE:
                    finished = True
            producer.join()
        if failure:
            raise failure[0]
