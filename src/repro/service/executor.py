"""Execution backends: shard a batch of pair tasks over workers.

Executors take a sequence of :class:`PairTask` and a
:class:`~repro.core.engine.MatchingConfig` and return one
:class:`TaskOutcome` per task, in task order.  Two invariants make the
backends interchangeable:

* **Determinism** — each task carries its own RNG seed, derived from the
  run seed and the task index by :func:`derive_seed` (a SHA-256 mix, so
  nearby indices get unrelated streams).  No state is shared between
  tasks, so executing them serially, in shuffled order, or on four
  processes yields byte-identical outcomes.
* **Serialised results** — outcomes carry results as JSON dicts (the
  :mod:`repro.service.serialize` format) rather than live objects, so
  crossing a process boundary is not observable downstream.

:class:`SerialExecutor` runs in-process; :class:`ParallelExecutor` shards
the batch into contiguous chunks over a ``ProcessPoolExecutor`` (fork
start method where the platform offers it — the matcher registry is
populated at import time and forked workers inherit it for free).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from abc import ABC, abstractmethod
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.core.engine import MatchingConfig, MatchingEngine
from repro.service import serialize

__all__ = [
    "PairTask",
    "TaskOutcome",
    "derive_seed",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
]


@dataclass(frozen=True)
class PairTask:
    """One pair to match, self-contained and picklable.

    Attributes:
        index: position in the batch (outcomes are returned in this order).
        circuit1, circuit2: the pair — circuits or permutations (picklable;
            live oracles are not shipped across processes).
        equivalence: the promised class, as its "X-Y" label.
        seed: per-task RNG seed (``None`` = fresh randomness, which
            forfeits serial/parallel reproducibility for this task).
        pair_id: optional stable identifier carried through to the outcome
            (corpus entries use it for resume bookkeeping).
    """

    index: int
    circuit1: object
    circuit2: object
    equivalence: str
    seed: int | None = None
    pair_id: str | None = None


@dataclass(frozen=True)
class TaskOutcome:
    """The executed counterpart of one :class:`PairTask`.

    Attributes:
        index: the task's batch position.
        pair_id: the task's identifier, if any.
        equivalence: the promised class label.
        result: the serialised :class:`~repro.core.problem.MatchingResult`
            (:func:`repro.service.serialize.result_to_dict`), or ``None``
            when the matcher failed.
        error: ``"ExceptionName: message"`` on failure.
        matcher: name of the registry entry that ran.
    """

    index: int
    pair_id: str | None
    equivalence: str
    result: dict | None = None
    error: str | None = None
    matcher: str | None = None

    @property
    def matched(self) -> bool:
        """Whether the task produced witnesses."""
        return self.result is not None


def derive_seed(base_seed: int | None, index: int) -> int | None:
    """A per-task seed decorrelated from neighbours but fully determined.

    Hashing ``base_seed:index`` (rather than e.g. adding them) keeps task
    streams statistically independent while remaining identical no matter
    which worker, chunk or process order executes the task.
    """
    if base_seed is None:
        return None
    digest = hashlib.sha256(f"{base_seed}:{index}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big")


def _execute_task(engine: MatchingEngine, task: PairTask) -> TaskOutcome:
    """Run one task through the engine's batch path (shared error format)."""
    report = engine.match_many(
        [(task.circuit1, task.circuit2, task.equivalence)], rng=task.seed
    )
    entry = report.entries[0]
    return TaskOutcome(
        index=task.index,
        pair_id=task.pair_id,
        equivalence=task.equivalence,
        result=serialize.result_to_dict(entry.result) if entry.result else None,
        error=entry.error,
        matcher=entry.matcher,
    )


def _execute_chunk(
    tasks: Sequence[PairTask], config: MatchingConfig
) -> list[TaskOutcome]:
    """Worker entry point: one engine per chunk, tasks in order."""
    engine = MatchingEngine(config)
    return [_execute_task(engine, task) for task in tasks]


class Executor(ABC):
    """Strategy interface for running a batch of pair tasks."""

    #: Human-readable backend name for reports.
    name: str = "executor"

    @abstractmethod
    def execute(
        self, tasks: Sequence[PairTask], config: MatchingConfig
    ) -> list[TaskOutcome]:
        """Run every task under ``config``; outcomes sorted by task index."""


class SerialExecutor(Executor):
    """Run tasks one after another in the calling process."""

    name = "serial"

    def execute(
        self, tasks: Sequence[PairTask], config: MatchingConfig
    ) -> list[TaskOutcome]:
        return _execute_chunk(tasks, config)


class ParallelExecutor(Executor):
    """Shard tasks into chunks across a process pool.

    Args:
        workers: pool size; defaults to the CPU count.
        chunk_size: tasks per submitted chunk; defaults to spreading the
            batch over ``4 * workers`` chunks so an unlucky chunk of slow
            pairs cannot serialise the run.
    """

    name = "parallel"

    def __init__(self, workers: int | None = None, chunk_size: int | None = None) -> None:
        if workers is not None and workers <= 0:
            raise ValueError(f"worker count must be positive, got {workers}")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError(f"chunk size must be positive, got {chunk_size}")
        self._workers = workers if workers is not None else (os.cpu_count() or 2)
        self._chunk_size = chunk_size

    @property
    def workers(self) -> int:
        """The configured pool size."""
        return self._workers

    def execute(
        self, tasks: Sequence[PairTask], config: MatchingConfig
    ) -> list[TaskOutcome]:
        if self._workers == 1 or len(tasks) <= 1:
            return _execute_chunk(tasks, config)
        chunk_size = self._chunk_size
        if chunk_size is None:
            chunk_size = max(1, -(-len(tasks) // (4 * self._workers)))
        chunks = [
            tasks[start : start + chunk_size]
            for start in range(0, len(tasks), chunk_size)
        ]
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        outcomes: list[TaskOutcome] = []
        with ProcessPoolExecutor(
            max_workers=min(self._workers, len(chunks)), mp_context=context
        ) as pool:
            futures = [pool.submit(_execute_chunk, chunk, config) for chunk in chunks]
            for future in futures:
                outcomes.extend(future.result())
        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes
