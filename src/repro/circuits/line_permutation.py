"""Line permutations — the ``pi`` objects of the paper.

Problem 1 of the paper asks for permutation functions
``pi : {1, ..., n} -> {1, ..., n}`` where ``pi(i) = j`` means "the i-th bit
is permuted to the j-th bit".  :class:`LinePermutation` is that object with
0-based indices: ``pi[i] = j`` moves line ``i``'s value to line ``j``.

A line permutation acts on bit vectors (output bit ``pi[i]`` = input bit
``i``), lifts to a :class:`~repro.circuits.permutation.Permutation` on
``range(2**n)``, and can be realised as a swap-gate circuit ``C_pi`` via
:func:`repro.circuits.transforms.permutation_circuit`.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.circuits.permutation import Permutation
from repro.exceptions import PermutationError

__all__ = ["LinePermutation"]


class LinePermutation:
    """A permutation of the ``n`` circuit lines.

    Args:
        mapping: sequence of length ``n`` with ``mapping[i] = j`` meaning
            line ``i`` is sent to line ``j`` (paper notation ``pi(i) = j``).
    """

    def __init__(self, mapping: Sequence[int]) -> None:
        mapping = list(mapping)
        if sorted(mapping) != list(range(len(mapping))):
            raise PermutationError(
                f"{mapping!r} is not a permutation of range({len(mapping)})"
            )
        self._mapping = mapping

    # -- constructors --------------------------------------------------------
    @classmethod
    def identity(cls, num_lines: int) -> "LinePermutation":
        """The identity line permutation on ``num_lines`` lines."""
        return cls(list(range(num_lines)))

    @classmethod
    def from_cycles(cls, num_lines: int, *cycles: Sequence[int]) -> "LinePermutation":
        """Build a line permutation from disjoint cycles.

        Example: ``LinePermutation.from_cycles(4, (0, 2, 1))`` sends line 0
        to line 2, line 2 to line 1 and line 1 to line 0, leaving line 3
        fixed.
        """
        mapping = list(range(num_lines))
        seen: set[int] = set()
        for cycle in cycles:
            for line in cycle:
                if line in seen:
                    raise PermutationError(f"line {line} appears in two cycles")
                if not 0 <= line < num_lines:
                    raise PermutationError(
                        f"line {line} out of range for {num_lines} lines"
                    )
                seen.add(line)
            for index, line in enumerate(cycle):
                mapping[line] = cycle[(index + 1) % len(cycle)]
        return cls(mapping)

    # -- structure -----------------------------------------------------------
    @property
    def num_lines(self) -> int:
        """Number of circuit lines ``n``."""
        return len(self._mapping)

    @property
    def mapping(self) -> tuple[int, ...]:
        """The raw mapping as an immutable tuple (``mapping[i] = pi(i)``)."""
        return tuple(self._mapping)

    def __getitem__(self, line: int) -> int:
        return self._mapping[line]

    def __iter__(self) -> Iterator[int]:
        return iter(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    # -- semantics -----------------------------------------------------------
    def apply_to_vector(self, value: int) -> int:
        """Apply to an integer bit vector: output bit ``pi[i]`` = input bit ``i``."""
        result = 0
        for source, destination in enumerate(self._mapping):
            if (value >> source) & 1:
                result |= 1 << destination
        return result

    def apply_to_bits(self, bits: Sequence[int]) -> list[int]:
        """Apply to a bit list (index = line)."""
        if len(bits) != len(self._mapping):
            raise PermutationError(
                f"expected {len(self._mapping)} bits, got {len(bits)}"
            )
        result = [0] * len(bits)
        for source, destination in enumerate(self._mapping):
            result[destination] = bits[source]
        return result

    def inverse(self) -> "LinePermutation":
        """The inverse line permutation."""
        inverse = [0] * len(self._mapping)
        for source, destination in enumerate(self._mapping):
            inverse[destination] = source
        return LinePermutation(inverse)

    def compose(self, inner: "LinePermutation") -> "LinePermutation":
        """The composition ``self o inner`` (``inner`` applied first).

        ``(self.compose(inner))[i] == self[inner[i]]`` — first move line
        ``i`` to ``inner[i]``, then to ``self[inner[i]]``.
        """
        if inner.num_lines != self.num_lines:
            raise PermutationError(
                "cannot compose line permutations of different sizes "
                f"({self.num_lines} vs {inner.num_lines})"
            )
        return LinePermutation([self._mapping[j] for j in inner._mapping])

    def __matmul__(self, inner: "LinePermutation") -> "LinePermutation":
        return self.compose(inner)

    def is_identity(self) -> bool:
        """Whether this is the identity permutation."""
        return all(destination == line for line, destination in enumerate(self._mapping))

    def to_permutation(self) -> Permutation:
        """Lift to a permutation on ``range(2**n)`` acting on bit vectors."""
        return Permutation.from_function(self.apply_to_vector, self.num_lines)

    def cycles(self) -> list[tuple[int, ...]]:
        """Cycle decomposition on lines, fixed lines omitted."""
        seen = [False] * self.num_lines
        cycles: list[tuple[int, ...]] = []
        for start in range(self.num_lines):
            if seen[start]:
                continue
            cycle = [start]
            seen[start] = True
            current = self._mapping[start]
            while current != start:
                cycle.append(current)
                seen[current] = True
                current = self._mapping[current]
            if len(cycle) > 1:
                cycles.append(tuple(cycle))
        return cycles

    # -- dunder plumbing -----------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, LinePermutation):
            return self._mapping == other._mapping
        if isinstance(other, (list, tuple)):
            return self._mapping == list(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self._mapping))

    def __repr__(self) -> str:
        return f"LinePermutation({self._mapping!r})"
