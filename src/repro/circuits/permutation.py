"""Permutations over ``range(2**n)`` — the functional view of a circuit.

Every ``n``-bit reversible circuit implements a bijection
``f : B^n -> B^n``, i.e. a permutation of ``range(2**n)`` once bit vectors
are packed into integers.  :class:`Permutation` is that functional view:
it can be extracted from a circuit, composed, inverted, compared, and (via
:mod:`repro.synthesis`) turned back into a circuit.

The class is also the workhorse of the white-box equivalence checker used by
tests and by the brute-force baselines.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence

from repro.bits import int_to_bits
from repro.exceptions import PermutationError

__all__ = ["Permutation"]


class Permutation:
    """A permutation of ``range(2**num_bits)``.

    Args:
        mapping: sequence of length ``2**num_bits`` where ``mapping[x]`` is
            the image of ``x``.
        num_bits: number of bits ``n``.  If omitted it is inferred from the
            mapping length (which must then be a power of two).
    """

    def __init__(self, mapping: Sequence[int], num_bits: int | None = None) -> None:
        mapping = list(mapping)
        size = len(mapping)
        if num_bits is None:
            num_bits = size.bit_length() - 1
        if size != 1 << num_bits:
            raise PermutationError(
                f"mapping length {size} is not 2**{num_bits}"
            )
        if sorted(mapping) != list(range(size)):
            raise PermutationError("mapping is not a permutation of range(2**n)")
        self._mapping = mapping
        self._num_bits = num_bits

    # -- constructors --------------------------------------------------------
    @classmethod
    def identity(cls, num_bits: int) -> "Permutation":
        """The identity permutation on ``num_bits`` bits."""
        return cls(list(range(1 << num_bits)), num_bits)

    @classmethod
    def from_circuit(cls, circuit) -> "Permutation":
        """Exhaustively simulate ``circuit`` into its permutation.

        Exponential in the line count; intended for white-box analysis of
        small circuits.
        """
        return cls(circuit.truth_table(), circuit.num_lines)

    @classmethod
    def from_function(cls, function: Callable[[int], int], num_bits: int) -> "Permutation":
        """Tabulate ``function`` over all ``2**num_bits`` inputs."""
        return cls([function(value) for value in range(1 << num_bits)], num_bits)

    # -- structure -----------------------------------------------------------
    @property
    def num_bits(self) -> int:
        """Number of bits ``n``."""
        return self._num_bits

    @property
    def size(self) -> int:
        """Domain size ``2**n``."""
        return len(self._mapping)

    @property
    def mapping(self) -> tuple[int, ...]:
        """The raw mapping table as an immutable tuple."""
        return tuple(self._mapping)

    # -- semantics -----------------------------------------------------------
    def __call__(self, value: int) -> int:
        """Apply the permutation to ``value``."""
        return self._mapping[value]

    def apply_bits(self, bits: Sequence[int]) -> list[int]:
        """Apply the permutation to a bit-list input, returning a bit list."""
        packed = 0
        for index, bit in enumerate(bits):
            if bit:
                packed |= 1 << index
        return int_to_bits(self._mapping[packed], self._num_bits)

    def inverse(self) -> "Permutation":
        """The inverse permutation."""
        inverse = [0] * len(self._mapping)
        for source, image in enumerate(self._mapping):
            inverse[image] = source
        return Permutation(inverse, self._num_bits)

    def compose(self, inner: "Permutation") -> "Permutation":
        """The composition ``self o inner`` (``inner`` applied first)."""
        if inner._num_bits != self._num_bits:
            raise PermutationError(
                "cannot compose permutations on different bit counts "
                f"({self._num_bits} vs {inner._num_bits})"
            )
        return Permutation(
            [self._mapping[inner._mapping[value]] for value in range(self.size)],
            self._num_bits,
        )

    def __matmul__(self, inner: "Permutation") -> "Permutation":
        return self.compose(inner)

    def is_identity(self) -> bool:
        """Whether this is the identity permutation."""
        return all(image == value for value, image in enumerate(self._mapping))

    # -- analysis ------------------------------------------------------------
    def cycles(self) -> list[tuple[int, ...]]:
        """The cycle decomposition, fixed points omitted."""
        seen = [False] * self.size
        cycles: list[tuple[int, ...]] = []
        for start in range(self.size):
            if seen[start]:
                continue
            cycle = [start]
            seen[start] = True
            current = self._mapping[start]
            while current != start:
                cycle.append(current)
                seen[current] = True
                current = self._mapping[current]
            if len(cycle) > 1:
                cycles.append(tuple(cycle))
        return cycles

    def fixed_points(self) -> list[int]:
        """All ``x`` with ``self(x) == x``."""
        return [value for value, image in enumerate(self._mapping) if image == value]

    def order(self) -> int:
        """The multiplicative order (lcm of cycle lengths)."""
        from math import lcm

        lengths = [len(cycle) for cycle in self.cycles()]
        return lcm(*lengths) if lengths else 1

    def parity(self) -> int:
        """0 for an even permutation, 1 for an odd one."""
        swaps = sum(len(cycle) - 1 for cycle in self.cycles())
        return swaps & 1

    def hamming_weight_profile(self) -> dict[int, int]:
        """Histogram of Hamming distances between ``x`` and ``self(x)``."""
        profile: dict[int, int] = {}
        for value, image in enumerate(self._mapping):
            distance = bin(value ^ image).count("1")
            profile[distance] = profile.get(distance, 0) + 1
        return profile

    # -- dunder plumbing -----------------------------------------------------
    def __iter__(self) -> Iterator[int]:
        return iter(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return self._num_bits == other._num_bits and self._mapping == other._mapping

    def __hash__(self) -> int:
        return hash((self._num_bits, tuple(self._mapping)))

    def __repr__(self) -> str:
        return f"<Permutation bits={self._num_bits} mapping={self._mapping}>"
