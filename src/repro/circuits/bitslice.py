"""Bit-parallel ("bitsliced") evaluation of reversible circuits.

Fingerprinting and matching both reduce to "apply a reversible circuit to
many inputs", and the scalar path walks Python gate objects one input at a
time.  This module transposes the problem: up to :data:`LANE_WIDTH` input
values are packed *per wire* into one Python int used as a vector of
single-bit lanes (bit ``j`` of the word for line ``i`` is bit ``i`` of input
``j``), and every gate of the cascade is then applied to all lanes at once
with a handful of bitwise operations:

* **NOT** — XOR the target's word with the lane mask;
* **CNOT / MCT** — AND together the control words (complementing against
  the lane mask for negative controls) and XOR the resulting activity word
  into the target's word;
* **SWAP** — exchange the two line words.

One pass over the gate list therefore evaluates a whole batch of probes
simultaneously, which is what makes probe digests and the exact matchers'
query loops cheap (see ``docs/architecture.md``, "Bit-parallel
evaluation").

The scalar path (:meth:`~repro.circuits.circuit.ReversibleCircuit.simulate`,
gate-object ``apply``) is deliberately left untouched: it is the reference
implementation this module is held byte-identical to by the differential
harness in ``tests/properties/test_bitslice_differential.py``.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import Gate, MCTGate, SwapGate
from repro.exceptions import CircuitError

__all__ = [
    "LANE_WIDTH",
    "supports",
    "pack_lanes",
    "unpack_lanes",
    "compile_gates",
    "apply_compiled",
    "evaluate_compiled",
    "simulate_many",
]

#: Lanes per machine word.  Python ints are arbitrary precision, but 64
#: keeps each word inside one CPython "digit chunk" regime and matches the
#: uint64 framing the ROADMAP describes; longer batches are chunked.
LANE_WIDTH = 64

#: Compiled-op tags (see :func:`compile_gates`).
_OP_MCT = 0
_OP_SWAP = 1


def supports(gates: Iterable[Gate]) -> bool:
    """Whether every gate in ``gates`` has a bitsliced implementation.

    MCT (any control count / polarity) and SWAP cover everything the
    substrate produces; user-defined :class:`~repro.circuits.gates.Gate`
    subclasses fall back to the scalar path at the call sites.
    """
    return all(isinstance(gate, (MCTGate, SwapGate)) for gate in gates)


def _transpose_steps() -> tuple[tuple[int, int], ...]:
    """Shift/mask constants for the 64x64 bit-matrix transpose.

    Step ``k`` swaps, inside every ``2k x 2k`` tile, the upper-right
    ``k x k`` block (rows ``i`` with ``i mod 2k < k``, columns ``j`` with
    ``j mod 2k >= k``) with the lower-left one; the paired bits sit
    ``63 * k`` positions apart in the row-major layout.  Applying the six
    steps transposes the whole matrix in O(log) big-int operations.
    """
    steps = []
    k = LANE_WIDTH // 2
    while k:
        period = 2 * k
        col_pattern = 0
        for col in range(LANE_WIDTH):
            if col % period >= k:
                col_pattern |= 1 << col
        mask = 0
        for row in range(LANE_WIDTH):
            if row % period < k:
                mask |= col_pattern << (LANE_WIDTH * row)
        steps.append(((LANE_WIDTH - 1) * k, mask))
        k //= 2
    return tuple(steps)


_TRANSPOSE_STEPS = _transpose_steps()
_TILE_BYTES = LANE_WIDTH * (LANE_WIDTH // 8)


def _transpose_tile(x: int) -> int:
    """Transpose one 64x64 bit matrix held row-major in a single int."""
    for shift, mask in _TRANSPOSE_STEPS:
        t = ((x >> shift) ^ x) & mask
        x ^= t ^ (t << shift)
    return x


def pack_lanes(values: Sequence[int], num_lines: int) -> list[int]:
    """Transpose a batch of input values into per-line lane words.

    ``result[line]`` holds bit ``line`` of ``values[j]`` at bit position
    ``j``.  The batch must not exceed :data:`LANE_WIDTH` values; inputs are
    assumed to be validated (non-negative, fitting in ``num_lines`` bits).
    Widths up to 64 lines ride the O(log) big-int transpose; wider
    circuits transpose 64 lines per tile.
    """
    if len(values) > LANE_WIDTH:
        raise CircuitError(
            f"batch of {len(values)} values exceeds the {LANE_WIDTH}-lane "
            "word width; chunk it (simulate_many does)"
        )
    row_bytes = (num_lines + 63) // 64 * 8
    data = b"".join(value.to_bytes(row_bytes, "little") for value in values)
    words: list[int] = []
    for tile_start in range(0, row_bytes, 8):
        tile = _transpose_tile(
            int.from_bytes(
                b"".join(
                    data[offset + tile_start : offset + tile_start + 8]
                    for offset in range(0, len(data), row_bytes)
                ),
                "little",
            )
        )
        raw = tile.to_bytes(_TILE_BYTES, "little")
        lines_in_tile = min(num_lines - 8 * tile_start, LANE_WIDTH)
        words.extend(
            int.from_bytes(raw[8 * line : 8 * line + 8], "little")
            for line in range(lines_in_tile)
        )
    return words


def unpack_lanes(words: Sequence[int], num_lines: int, count: int) -> list[int]:
    """Transpose per-line lane words back into ``count`` output values."""
    values = [0] * count
    for tile_index in range(0, num_lines, LANE_WIDTH):
        tile = _transpose_tile(
            int.from_bytes(
                b"".join(
                    word.to_bytes(8, "little")
                    for word in words[tile_index : tile_index + LANE_WIDTH]
                ),
                "little",
            )
        )
        raw = tile.to_bytes(_TILE_BYTES, "little")
        shift = tile_index
        for lane in range(count):
            chunk = int.from_bytes(raw[8 * lane : 8 * lane + 8], "little")
            if chunk:
                values[lane] |= chunk << shift
    return values


def compile_gates(gates: Iterable[Gate]) -> list[tuple]:
    """Lower a gate cascade to flat bitwise-op descriptors.

    Each MCT gate becomes ``(_OP_MCT, positive_lines, negative_lines,
    target)`` and each swap ``(_OP_SWAP, line_a, line_b, None)``, so the
    hot loop touches no gate objects, controls or method dispatch.

    Raises:
        CircuitError: for gate kinds without a bitsliced implementation
            (use :func:`supports` to detect and fall back).
    """
    ops: list[tuple] = []
    for gate in gates:
        if isinstance(gate, MCTGate):
            positive = tuple(c.line for c in gate.controls if c.positive)
            negative = tuple(c.line for c in gate.controls if not c.positive)
            ops.append((_OP_MCT, positive, negative, gate.target))
        elif isinstance(gate, SwapGate):
            ops.append((_OP_SWAP, gate.line_a, gate.line_b, None))
        else:
            raise CircuitError(
                f"no bitsliced implementation for {type(gate).__name__}"
            )
    return ops


def apply_compiled(
    ops: Sequence[tuple], words: list[int], lane_mask: int
) -> list[int]:
    """Apply compiled ops to lane words in place (and return them).

    ``lane_mask`` has one bit set per occupied lane; it is both the
    "all controls satisfied" seed and the complement mask for negative
    controls, so ragged batches never leak activity into empty lanes.
    """
    for tag, first, second, target in ops:
        if tag == _OP_MCT:
            active = lane_mask
            for line in first:
                active &= words[line]
            for line in second:
                active &= words[line] ^ lane_mask
            words[target] ^= active
        else:
            words[first], words[second] = words[second], words[first]
    return words


def evaluate_compiled(
    ops: Sequence[tuple], num_lines: int, values: Sequence[int]
) -> list[int]:
    """Run pre-compiled ops over a batch of already-validated inputs.

    The chunk/pack/apply/unpack pipeline of :func:`simulate_many` without
    the validation and compilation steps, for callers (``CircuitOracle``)
    that validate upstream and cache the compiled ops across calls.
    """
    outputs: list[int] = []
    for start in range(0, len(values), LANE_WIDTH):
        chunk = values[start : start + LANE_WIDTH]
        lane_mask = (1 << len(chunk)) - 1
        words = pack_lanes(chunk, num_lines)
        apply_compiled(ops, words, lane_mask)
        outputs.extend(unpack_lanes(words, num_lines, len(chunk)))
    return outputs


def simulate_many(
    circuit: ReversibleCircuit, values: Sequence[int]
) -> list[int]:
    """Evaluate ``circuit`` on every value of a batch, 64 lanes at a time.

    Exactly equivalent to ``[circuit.simulate(v) for v in values]`` —
    the differential property harness holds the two paths byte-identical —
    but one pass over the gate list serves up to :data:`LANE_WIDTH`
    inputs.  Inputs are validated with the same error as the scalar path.

    Raises:
        CircuitError: on out-of-range inputs, or when the cascade contains
            a gate kind without a bitsliced implementation.
    """
    num_lines = circuit.num_lines
    values = list(values)
    for value in values:
        if value < 0 or value >> num_lines:
            raise CircuitError(
                f"input {value} does not fit in {num_lines} lines"
            )
    ops = compile_gates(circuit.gates)
    return evaluate_compiled(ops, num_lines, values)
