"""The :class:`ReversibleCircuit` container.

A reversible circuit is an ordered cascade of reversible gates over a fixed
number of lines.  Gates are applied left to right: ``circuit.simulate(x)``
feeds the bit vector ``x`` into the first gate of the list.  In the paper's
matrix notation a circuit drawn as ``C_A`` followed by ``C_B`` corresponds to
the operator product ``C_B C_A``; :meth:`ReversibleCircuit.then` follows the
drawing order (``a.then(b)`` applies ``a`` first), which keeps example code
readable.

The class deliberately stays a plain container: simulation and structural
editing live here, while the functional (truth-table) view lives in
:class:`repro.circuits.permutation.Permutation` and synthesis back from a
permutation lives in :mod:`repro.synthesis`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import Union

from repro.bits import bits_to_int, int_to_bits
from repro.circuits.gates import Gate, MCTGate, SwapGate
from repro.exceptions import CircuitError

__all__ = ["ReversibleCircuit"]

BitVector = Union[int, Sequence[int]]


class ReversibleCircuit:
    """An ``n``-line reversible circuit as an ordered list of gates.

    Args:
        num_lines: number of circuit lines ``n`` (inputs == outputs == ``n``).
        gates: optional initial gate cascade, applied left to right.
        name: optional human-readable name (used by I/O and reports).

    The circuit is mutable through :meth:`append` / :meth:`extend`; every
    transforming method (:meth:`inverse`, :meth:`then`, :meth:`remapped`, ...)
    returns a new circuit and leaves the receiver untouched.
    """

    def __init__(
        self,
        num_lines: int,
        gates: Iterable[Gate] = (),
        name: str | None = None,
    ) -> None:
        if num_lines <= 0:
            raise CircuitError(f"a circuit needs at least one line, got {num_lines}")
        self._num_lines = num_lines
        self._gates: list[Gate] = []
        self.name = name
        for gate in gates:
            self.append(gate)

    # -- structure ----------------------------------------------------------
    @property
    def num_lines(self) -> int:
        """Number of circuit lines ``n``."""
        return self._num_lines

    @property
    def gates(self) -> tuple[Gate, ...]:
        """The gate cascade as an immutable tuple (left = applied first)."""
        return tuple(self._gates)

    @property
    def num_gates(self) -> int:
        """Total number of gates in the cascade."""
        return len(self._gates)

    @property
    def size(self) -> int:
        """Alias for :attr:`num_gates` (common EDA terminology)."""
        return self.num_gates

    def gate_counts(self) -> dict[str, int]:
        """Histogram of gate kinds, keyed by a short mnemonic.

        MCT gates are keyed by their control count (``"NOT"``, ``"CNOT"``,
        ``"TOFFOLI"``, ``"MCT3"``, ``"MCT4"``, ...), swaps by ``"SWAP"``.
        """
        counts: dict[str, int] = {}
        for gate in self._gates:
            if isinstance(gate, SwapGate):
                key = "SWAP"
            elif isinstance(gate, MCTGate):
                key = {0: "NOT", 1: "CNOT", 2: "TOFFOLI"}.get(
                    gate.num_controls, f"MCT{gate.num_controls}"
                )
            else:  # pragma: no cover - only reachable with user-defined gates
                key = type(gate).__name__
            counts[key] = counts.get(key, 0) + 1
        return counts

    def append(self, gate: Gate) -> "ReversibleCircuit":
        """Append ``gate`` to the cascade (returns ``self`` for chaining)."""
        if gate.max_line >= self._num_lines:
            raise CircuitError(
                f"gate {gate} uses line {gate.max_line} but the circuit has "
                f"only {self._num_lines} lines"
            )
        self._gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "ReversibleCircuit":
        """Append every gate in ``gates`` (returns ``self`` for chaining)."""
        for gate in gates:
            self.append(gate)
        return self

    def copy(self, name: str | None = None) -> "ReversibleCircuit":
        """A shallow copy (gates are immutable, so sharing them is safe)."""
        return ReversibleCircuit(self._num_lines, self._gates, name or self.name)

    # -- semantics ----------------------------------------------------------
    def _coerce_input(self, value: BitVector) -> int:
        if isinstance(value, int):
            if value < 0 or value >> self._num_lines:
                raise CircuitError(
                    f"input {value} does not fit in {self._num_lines} lines"
                )
            return value
        bits = list(value)
        if len(bits) != self._num_lines:
            raise CircuitError(
                f"expected {self._num_lines} input bits, got {len(bits)}"
            )
        return bits_to_int(bits)

    def simulate(self, value: BitVector) -> int:
        """Run the circuit on a classical input and return the output as int.

        ``value`` may be an integer bit vector or a sequence of bits
        (index ``i`` = line ``i``).
        """
        state = self._coerce_input(value)
        for gate in self._gates:
            state = gate.apply(state)
        return state

    def simulate_bits(self, value: BitVector) -> list[int]:
        """Like :meth:`simulate` but returns the output as a bit list."""
        return int_to_bits(self.simulate(value), self._num_lines)

    def truth_table(self) -> list[int]:
        """The full truth table: entry ``x`` holds ``simulate(x)``.

        Exponential in ``num_lines``; intended for small circuits, tests and
        the white-box helpers.
        """
        return [self.simulate(value) for value in range(1 << self._num_lines)]

    def is_identity(self) -> bool:
        """Whether the circuit computes the identity function (exhaustive)."""
        return all(
            self.simulate(value) == value for value in range(1 << self._num_lines)
        )

    def functionally_equal(self, other: "ReversibleCircuit") -> bool:
        """Exhaustive functional comparison with another circuit."""
        if self._num_lines != other._num_lines:
            return False
        return all(
            self.simulate(value) == other.simulate(value)
            for value in range(1 << self._num_lines)
        )

    # -- composition and transformation --------------------------------------
    def inverse(self) -> "ReversibleCircuit":
        """The inverse circuit: gates reversed, each gate inverted."""
        gates = [gate.inverse() for gate in reversed(self._gates)]
        name = f"{self.name}^-1" if self.name else None
        return ReversibleCircuit(self._num_lines, gates, name)

    def then(self, other: "ReversibleCircuit") -> "ReversibleCircuit":
        """The cascade "``self`` followed by ``other``".

        In the paper's operator notation this is the product
        ``other @ self``; the method name follows the drawing order.
        """
        if other._num_lines != self._num_lines:
            raise CircuitError(
                "cannot compose circuits with different line counts "
                f"({self._num_lines} vs {other._num_lines})"
            )
        return ReversibleCircuit(
            self._num_lines, list(self._gates) + list(other._gates)
        )

    def __matmul__(self, other: "ReversibleCircuit") -> "ReversibleCircuit":
        """Operator-order composition: ``(A @ B)(x) == A(B(x))``."""
        return other.then(self)

    def remapped(self, line_map: Sequence[int]) -> "ReversibleCircuit":
        """Relabel every line ``i`` to ``line_map[i]``.

        ``line_map`` must be a permutation of ``range(num_lines)``.
        """
        if sorted(line_map) != list(range(self._num_lines)):
            raise CircuitError(
                "line_map must be a permutation of the circuit's lines"
            )
        gates = [gate.remapped(line_map) for gate in self._gates]
        return ReversibleCircuit(self._num_lines, gates, self.name)

    def with_lines(self, num_lines: int) -> "ReversibleCircuit":
        """The same cascade embedded into a circuit with more lines."""
        if num_lines < self._num_lines:
            raise CircuitError(
                f"cannot shrink a {self._num_lines}-line circuit to {num_lines} lines"
            )
        return ReversibleCircuit(num_lines, self._gates, self.name)

    def decomposed_swaps(self) -> "ReversibleCircuit":
        """A functionally identical circuit with every swap expanded to CNOTs."""
        gates: list[Gate] = []
        for gate in self._gates:
            if isinstance(gate, SwapGate):
                gates.extend(gate.to_cnots())
            else:
                gates.append(gate)
        return ReversibleCircuit(self._num_lines, gates, self.name)

    # -- dunder plumbing -----------------------------------------------------
    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __eq__(self, other: object) -> bool:
        """Structural equality (same lines, same gate cascade)."""
        if not isinstance(other, ReversibleCircuit):
            return NotImplemented
        return (
            self._num_lines == other._num_lines and self._gates == other._gates
        )

    def __hash__(self) -> int:
        return hash((self._num_lines, tuple(self._gates)))

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<ReversibleCircuit{label} lines={self._num_lines} "
            f"gates={len(self._gates)}>"
        )

    def __str__(self) -> str:
        header = self.name or "circuit"
        lines = [f"{header} ({self._num_lines} lines, {len(self._gates)} gates)"]
        lines.extend(f"  {index}: {gate}" for index, gate in enumerate(self._gates))
        return "\n".join(lines)
