"""Reversible-circuit substrate.

This package provides everything the matching algorithms need from the
"circuit side" of the paper:

* :mod:`repro.circuits.gates` — multiple-controlled Toffoli (MCT) gates with
  positive/negative controls, plus NOT/CNOT/Toffoli/SWAP/Fredkin helpers.
* :mod:`repro.circuits.circuit` — :class:`ReversibleCircuit`: a gate list
  with classical simulation, inversion, composition and truth-table export.
* :mod:`repro.circuits.bitslice` — bit-parallel (64-lane) batch
  evaluation of MCT/SWAP cascades: the vectorized counterpart of
  ``simulate``, held byte-identical to it by a differential test harness.
* :mod:`repro.circuits.permutation` — :class:`Permutation` over
  ``range(2**n)``: the functional view of a reversible circuit.
* :mod:`repro.circuits.line_permutation` — :class:`LinePermutation` over the
  ``n`` circuit lines: the ``pi`` objects of the paper.
* :mod:`repro.circuits.transforms` — negation circuits ``C_nu``, line
  permutation circuits ``C_pi``, the Fig. 4 commuting identity, and helpers
  that build promised X-Y equivalent circuit pairs for experiments.
* :mod:`repro.circuits.random` — random circuits, permutations, negations.
* :mod:`repro.circuits.library` — generators for standard benchmark
  functions (hidden-weighted-bit, adders, gray code, modular counters, ...).
* :mod:`repro.circuits.io` — RevLib ``.real`` and OpenQASM 2.0 readers and
  writers.
"""

from __future__ import annotations

from repro.circuits import (
    bitslice,
    drawing,
    io,
    library,
    metrics,
    random,
    transforms,
)
from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import (
    Control,
    Gate,
    MCTGate,
    SwapGate,
    cnot,
    fredkin,
    mct,
    not_gate,
    toffoli,
)
from repro.circuits.line_permutation import LinePermutation
from repro.circuits.permutation import Permutation

__all__ = [
    "Control",
    "Gate",
    "MCTGate",
    "SwapGate",
    "cnot",
    "fredkin",
    "mct",
    "not_gate",
    "toffoli",
    "ReversibleCircuit",
    "Permutation",
    "LinePermutation",
    "bitslice",
    "transforms",
    "random",
    "library",
    "io",
    "drawing",
    "metrics",
]
