"""Circuit readers and writers.

* :mod:`repro.circuits.io.real` — the RevLib ``.real`` format (the de-facto
  standard interchange format for reversible benchmark circuits).
* :mod:`repro.circuits.io.qasm` — a minimal OpenQASM 2.0 exporter/importer
  covering the gate set reversible circuits use (``x``, ``cx``, ``ccx``,
  ``swap`` and multi-controlled ``x`` via comment-annotated decomposition).
"""

from __future__ import annotations

from repro.circuits.io.qasm import circuit_to_qasm, qasm_to_circuit
from repro.circuits.io.real import (
    circuit_to_real,
    parse_real,
    read_real,
    write_real,
)

__all__ = [
    "parse_real",
    "read_real",
    "write_real",
    "circuit_to_real",
    "circuit_to_qasm",
    "qasm_to_circuit",
]
