"""Circuit readers and writers.

* :mod:`repro.circuits.io.real` — the RevLib ``.real`` format (the de-facto
  standard interchange format for reversible benchmark circuits).
* :mod:`repro.circuits.io.qasm` — a minimal OpenQASM 2.0 exporter/importer
  covering the gate set reversible circuits use (``x``, ``cx``, ``ccx``,
  ``swap`` and multi-controlled ``x`` via comment-annotated decomposition).

:func:`load_circuit` / :func:`save_circuit` pick the format from the file
extension (``.qasm`` → OpenQASM, anything else → ``.real``) — the one rule
every file-accepting surface (CLI, daemon submissions) shares.
"""

from __future__ import annotations

import os

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.io.qasm import circuit_to_qasm, qasm_to_circuit
from repro.circuits.io.real import (
    circuit_to_real,
    parse_real,
    read_real,
    write_real,
)

__all__ = [
    "parse_real",
    "read_real",
    "write_real",
    "circuit_to_real",
    "circuit_to_qasm",
    "qasm_to_circuit",
    "load_circuit",
    "save_circuit",
]


def load_circuit(path: str | os.PathLike) -> ReversibleCircuit:
    """Read a circuit file, picking the parser from the extension."""
    path = os.fspath(path)
    if path.endswith(".qasm"):
        with open(path, "r", encoding="utf-8") as handle:
            return qasm_to_circuit(handle.read(), name=path)
    return read_real(path)


def save_circuit(circuit: ReversibleCircuit, path: str | os.PathLike) -> None:
    """Write a circuit file, picking the writer from the extension."""
    path = os.fspath(path)
    if path.endswith(".qasm"):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(circuit_to_qasm(circuit))
    else:
        write_real(circuit, path)
