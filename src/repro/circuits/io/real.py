"""RevLib ``.real`` reader and writer.

The ``.real`` format is the interchange format of the RevLib benchmark suite
and of most reversible-logic tools (RevKit, ABC extensions, ...).  The subset
supported here covers everything the benchmark circuits in this repository
need:

* header directives ``.version``, ``.numvars``, ``.variables``, ``.inputs``,
  ``.outputs``, ``.constants``, ``.garbage`` (the last four are parsed and
  preserved but not semantically interpreted — the matching problem treats
  all lines alike);
* multiple-controlled Toffoli gates ``t<k>`` with optional negative controls
  written as a ``-`` prefix on the control variable;
* Fredkin/swap gates ``f<k>`` — ``f2`` maps to a plain swap, larger ``f``
  gates to a controlled swap expanded into MCT gates.

Example::

    .version 2.0
    .numvars 3
    .variables a b c
    .begin
    t3 a b c
    t1 a
    f2 b c
    .end
"""

from __future__ import annotations

import os
from collections.abc import Sequence

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import Control, MCTGate, SwapGate, fredkin
from repro.exceptions import ParseError

__all__ = ["parse_real", "read_real", "write_real", "circuit_to_real"]


def parse_real(text: str, name: str | None = None) -> ReversibleCircuit:
    """Parse the contents of a ``.real`` file into a circuit.

    Args:
        text: the file contents.
        name: optional circuit name; defaults to the ``.version`` header or
            ``"real"``.

    Raises:
        ParseError: on any syntactic problem (unknown directives are ignored,
            unknown gate types are not).
    """
    variables: list[str] = []
    num_vars: int | None = None
    circuit: ReversibleCircuit | None = None
    in_body = False
    gates = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            directive, _, rest = line.partition(" ")
            directive = directive.lower()
            rest = rest.strip()
            if directive == ".numvars":
                try:
                    num_vars = int(rest)
                except ValueError as error:
                    raise ParseError(
                        f"line {line_number}: invalid .numvars value {rest!r}"
                    ) from error
            elif directive == ".variables":
                variables = rest.split()
            elif directive == ".begin":
                in_body = True
            elif directive == ".end":
                in_body = False
            # .version, .inputs, .outputs, .constants, .garbage and any other
            # directive are accepted and ignored: they do not affect matching.
            continue
        if not in_body:
            raise ParseError(
                f"line {line_number}: gate line {line!r} outside .begin/.end"
            )
        gates.append((line_number, line))

    if num_vars is None:
        if not variables:
            raise ParseError("missing .numvars and .variables headers")
        num_vars = len(variables)
    if not variables:
        variables = [f"x{index}" for index in range(num_vars)]
    if len(variables) != num_vars:
        raise ParseError(
            f".numvars says {num_vars} but .variables lists {len(variables)} names"
        )

    index_of = {variable: index for index, variable in enumerate(variables)}
    circuit = ReversibleCircuit(num_vars, name=name or "real")

    for line_number, line in gates:
        tokens = line.split()
        mnemonic, operands = tokens[0].lower(), tokens[1:]
        _append_gate(circuit, mnemonic, operands, index_of, line_number)
    return circuit


def _resolve(
    operand: str, index_of: dict[str, int], line_number: int
) -> tuple[int, bool]:
    """Resolve an operand name to (line index, positive polarity)."""
    positive = True
    if operand.startswith("-"):
        positive = False
        operand = operand[1:]
    if operand not in index_of:
        raise ParseError(f"line {line_number}: unknown variable {operand!r}")
    return index_of[operand], positive


def _append_gate(
    circuit: ReversibleCircuit,
    mnemonic: str,
    operands: Sequence[str],
    index_of: dict[str, int],
    line_number: int,
) -> None:
    if not mnemonic or mnemonic[0] not in "tf":
        raise ParseError(f"line {line_number}: unsupported gate type {mnemonic!r}")
    try:
        arity = int(mnemonic[1:])
    except ValueError as error:
        raise ParseError(
            f"line {line_number}: malformed gate mnemonic {mnemonic!r}"
        ) from error
    if len(operands) != arity:
        raise ParseError(
            f"line {line_number}: gate {mnemonic} expects {arity} operands, "
            f"got {len(operands)}"
        )

    if mnemonic[0] == "t":
        *control_names, target_name = operands
        target, target_positive = _resolve(target_name, index_of, line_number)
        if not target_positive:
            raise ParseError(f"line {line_number}: target cannot be negated")
        controls = tuple(
            Control(*_resolve(operand, index_of, line_number))
            for operand in control_names
        )
        circuit.append(MCTGate(controls, target))
        return

    # Fredkin family: the last two operands are swapped, the rest control.
    if arity < 2:
        raise ParseError(f"line {line_number}: f gates need at least 2 operands")
    *control_names, name_a, name_b = operands
    line_a, positive_a = _resolve(name_a, index_of, line_number)
    line_b, positive_b = _resolve(name_b, index_of, line_number)
    if not (positive_a and positive_b):
        raise ParseError(f"line {line_number}: swapped lines cannot be negated")
    if not control_names:
        circuit.append(SwapGate(line_a, line_b))
        return
    if len(control_names) == 1:
        control, positive = _resolve(control_names[0], index_of, line_number)
        if not positive:
            raise ParseError(
                f"line {line_number}: negative Fredkin controls are unsupported"
            )
        circuit.extend(fredkin(control, line_a, line_b))
        return
    raise ParseError(
        f"line {line_number}: Fredkin gates with more than one control are "
        "not supported"
    )


def read_real(path: str | os.PathLike) -> ReversibleCircuit:
    """Read a ``.real`` file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    name = os.path.splitext(os.path.basename(path))[0]
    return parse_real(text, name=name)


def circuit_to_real(circuit: ReversibleCircuit) -> str:
    """Serialise a circuit to ``.real`` text.

    Swap gates are written as ``f2`` gates; MCT gates as ``t<k>`` with ``-``
    prefixes marking negative controls.
    """
    variables = [f"x{index}" for index in range(circuit.num_lines)]
    lines = [
        "# written by repro.circuits.io.real",
        ".version 2.0",
        f".numvars {circuit.num_lines}",
        ".variables " + " ".join(variables),
        ".inputs " + " ".join(variables),
        ".outputs " + " ".join(variables),
        ".constants " + "-" * circuit.num_lines,
        ".garbage " + "-" * circuit.num_lines,
        ".begin",
    ]
    for gate in circuit:
        if isinstance(gate, SwapGate):
            lines.append(f"f2 {variables[gate.line_a]} {variables[gate.line_b]}")
        elif isinstance(gate, MCTGate):
            operands = [
                ("" if control.positive else "-") + variables[control.line]
                for control in gate.controls
            ]
            operands.append(variables[gate.target])
            lines.append(f"t{len(operands)} " + " ".join(operands))
        else:  # pragma: no cover - defensive: only reachable with custom gates
            raise ParseError(f"cannot serialise gate {gate!r} to .real")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_real(circuit: ReversibleCircuit, path: str | os.PathLike) -> None:
    """Write a circuit to a ``.real`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(circuit_to_real(circuit))
