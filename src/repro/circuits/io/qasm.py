"""Minimal OpenQASM 2.0 export/import for reversible circuits.

Oracle circuits destined for quantum toolchains (Qiskit, tket, ...) are most
conveniently exchanged as OpenQASM.  Reversible circuits only need the
classical-permutation gate set, so the dialect handled here is deliberately
small:

* ``x q[i];`` — NOT
* ``cx q[a], q[b];`` — CNOT (positive control)
* ``ccx q[a], q[b], q[c];`` — Toffoli (positive controls)
* ``swap q[a], q[b];`` — swap
* larger or negatively controlled MCT gates are exported by surrounding the
  positive-control core with explicit ``x`` gates and decomposing the control
  count down to ``ccx``/``cx`` is *not* attempted — instead they are emitted
  as a ``// mct`` comment plus the polarity-adjusting ``x`` gates and a
  ``ccx``-expressible core when possible; on import such comments round-trip.

The exporter guarantees ``qasm_to_circuit(circuit_to_qasm(c))`` is
functionally identical to ``c`` for every circuit this package produces.
"""

from __future__ import annotations

import re

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import Control, MCTGate, SwapGate
from repro.exceptions import ParseError

__all__ = ["circuit_to_qasm", "qasm_to_circuit"]

_QUBIT = re.compile(r"q\[(\d+)\]")


def _emit_mct(gate: MCTGate, lines: list[str]) -> None:
    """Emit an MCT gate, wrapping negative controls in X conjugation."""
    negative = [control.line for control in gate.controls if not control.positive]
    for line in negative:
        lines.append(f"x q[{line}];")
    controls = sorted(control.line for control in gate.controls)
    operands = ", ".join(f"q[{line}]" for line in controls + [gate.target])
    if len(controls) == 0:
        lines.append(f"x q[{gate.target}];")
    elif len(controls) == 1:
        lines.append(f"cx {operands};")
    elif len(controls) == 2:
        lines.append(f"ccx {operands};")
    else:
        # OpenQASM 2.0 has no native multi-controlled X; emit the extended
        # "mcx" mnemonic (accepted by our importer and by Qiskit >= 0.45 via
        # its own parser extensions) so the file stays loss-free.
        lines.append(f"mcx {operands};")
    for line in negative:
        lines.append(f"x q[{line}];")


def circuit_to_qasm(circuit: ReversibleCircuit) -> str:
    """Serialise ``circuit`` to OpenQASM 2.0 text."""
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_lines}];",
    ]
    for gate in circuit:
        if isinstance(gate, SwapGate):
            lines.append(f"swap q[{gate.line_a}], q[{gate.line_b}];")
        elif isinstance(gate, MCTGate):
            _emit_mct(gate, lines)
        else:  # pragma: no cover - defensive: only reachable with custom gates
            raise ParseError(f"cannot serialise gate {gate!r} to OpenQASM")
    return "\n".join(lines) + "\n"


def qasm_to_circuit(text: str, name: str | None = None) -> ReversibleCircuit:
    """Parse the OpenQASM dialect produced by :func:`circuit_to_qasm`."""
    num_qubits: int | None = None
    body: list[tuple[str, list[int]]] = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("//", 1)[0].strip()
        if not line:
            continue
        if line.startswith("OPENQASM") or line.startswith("include"):
            continue
        if not line.endswith(";"):
            raise ParseError(f"line {line_number}: missing semicolon in {line!r}")
        line = line[:-1].strip()
        if line.startswith("qreg"):
            match = _QUBIT.search(line)
            if not match:
                raise ParseError(f"line {line_number}: malformed qreg declaration")
            num_qubits = int(match.group(1))
            continue
        mnemonic, _, operand_text = line.partition(" ")
        qubits = [int(index) for index in _QUBIT.findall(operand_text)]
        body.append((mnemonic.lower(), qubits))

    if num_qubits is None:
        raise ParseError("missing qreg declaration")

    circuit = ReversibleCircuit(num_qubits, name=name or "qasm")
    for mnemonic, qubits in body:
        if mnemonic == "x" and len(qubits) == 1:
            circuit.append(MCTGate((), qubits[0]))
        elif mnemonic == "cx" and len(qubits) == 2:
            circuit.append(MCTGate((Control(qubits[0]),), qubits[1]))
        elif mnemonic == "ccx" and len(qubits) == 3:
            circuit.append(
                MCTGate((Control(qubits[0]), Control(qubits[1])), qubits[2])
            )
        elif mnemonic == "mcx" and len(qubits) >= 2:
            controls = tuple(Control(qubit) for qubit in qubits[:-1])
            circuit.append(MCTGate(controls, qubits[-1]))
        elif mnemonic == "swap" and len(qubits) == 2:
            circuit.append(SwapGate(qubits[0], qubits[1]))
        else:
            raise ParseError(
                f"unsupported OpenQASM statement {mnemonic!r} with {len(qubits)} "
                "operands"
            )
    return circuit
