"""A library of benchmark reversible functions.

RevLib-style benchmark circuits are not shipped with this repository (no
network access), so the standard functions used throughout the paper's
experimental tradition are re-implemented here as generators.  Every
generator returns a :class:`~repro.circuits.circuit.ReversibleCircuit`;
functions that are easiest to define through their permutation (e.g. the
hidden-weighted-bit function) are synthesised on the fly with the
transformation-based synthesiser from :mod:`repro.synthesis`.

The :func:`catalogue` registry maps short names to generator callables and is
what the benchmark harness iterates over when it needs "a realistic mix of
circuits".
"""

from __future__ import annotations

from collections.abc import Callable

from repro.bits import popcount
from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import Control, MCTGate, SwapGate, cnot, not_gate, toffoli
from repro.circuits.permutation import Permutation
from repro.exceptions import CircuitError

__all__ = [
    "figure2_example",
    "toffoli_chain",
    "cnot_ladder",
    "gray_code",
    "inverse_gray_code",
    "increment",
    "decrement",
    "ripple_adder",
    "multiplier",
    "parity_accumulator",
    "fredkin_stage",
    "bit_reversal",
    "cyclic_line_shift",
    "hidden_shift",
    "hidden_weighted_bit",
    "from_permutation",
    "catalogue",
]


def figure2_example() -> ReversibleCircuit:
    """The three-line example circuit of Fig. 2 (a single Toffoli gate).

    ``o0 = i0``, ``o1 = i1``, ``o2 = i2 XOR (i0 AND i1)``.
    """
    circuit = ReversibleCircuit(3, name="figure2")
    circuit.append(toffoli(0, 1, 2))
    return circuit


def toffoli_chain(num_lines: int) -> ReversibleCircuit:
    """A cascade of Toffoli gates marching down the lines.

    Gate ``i`` has controls on lines ``i`` and ``i + 1`` and target
    ``i + 2``; requires at least three lines.
    """
    if num_lines < 3:
        raise CircuitError("a Toffoli chain needs at least 3 lines")
    circuit = ReversibleCircuit(num_lines, name=f"toffoli_chain_{num_lines}")
    for line in range(num_lines - 2):
        circuit.append(toffoli(line, line + 1, line + 2))
    return circuit


def cnot_ladder(num_lines: int) -> ReversibleCircuit:
    """A ladder of CNOTs: line ``i`` controls line ``i + 1``."""
    if num_lines < 2:
        raise CircuitError("a CNOT ladder needs at least 2 lines")
    circuit = ReversibleCircuit(num_lines, name=f"cnot_ladder_{num_lines}")
    for line in range(num_lines - 1):
        circuit.append(cnot(line, line + 1))
    return circuit


def gray_code(num_lines: int) -> ReversibleCircuit:
    """The binary-to-Gray-code converter: ``out_i = in_i XOR in_{i+1}``."""
    if num_lines < 1:
        raise CircuitError("gray_code needs at least 1 line")
    circuit = ReversibleCircuit(num_lines, name=f"gray_{num_lines}")
    for line in range(num_lines - 1):
        circuit.append(cnot(line + 1, line))
    return circuit


def inverse_gray_code(num_lines: int) -> ReversibleCircuit:
    """The Gray-code-to-binary converter (inverse of :func:`gray_code`)."""
    circuit = gray_code(num_lines).inverse()
    circuit.name = f"gray_inv_{num_lines}"
    return circuit


def _increment_gates(lines: list[int], extra_controls: tuple[Control, ...] = ()):
    """Gates that add 1 to the register formed by ``lines`` (LSB first).

    Each produced MCT gate carries ``extra_controls`` in addition to the
    register's own carry controls, which turns the block into a controlled
    increment.
    """
    gates = []
    for position in range(len(lines) - 1, 0, -1):
        controls = tuple(Control(lines[lower]) for lower in range(position))
        gates.append(MCTGate(controls + extra_controls, lines[position]))
    gates.append(MCTGate(extra_controls, lines[0]))
    return gates


def increment(num_lines: int) -> ReversibleCircuit:
    """The modular increment ``x -> x + 1 (mod 2**n)``."""
    if num_lines < 1:
        raise CircuitError("increment needs at least 1 line")
    circuit = ReversibleCircuit(num_lines, name=f"increment_{num_lines}")
    circuit.extend(_increment_gates(list(range(num_lines))))
    return circuit


def decrement(num_lines: int) -> ReversibleCircuit:
    """The modular decrement ``x -> x - 1 (mod 2**n)`` (inverse of increment)."""
    circuit = increment(num_lines).inverse()
    circuit.name = f"decrement_{num_lines}"
    return circuit


def ripple_adder(register_bits: int) -> ReversibleCircuit:
    """An in-place modular adder ``(a, b) -> (a, a + b mod 2**k)``.

    Lines ``0 .. k-1`` hold ``a`` (unchanged), lines ``k .. 2k-1`` hold ``b``
    which is overwritten by the sum.  The construction adds ``a_i * 2**i``
    to ``b`` with a controlled increment per bit of ``a``; it uses only MCT
    gates and no ancilla lines.
    """
    if register_bits < 1:
        raise CircuitError("ripple_adder needs registers of at least 1 bit")
    num_lines = 2 * register_bits
    circuit = ReversibleCircuit(num_lines, name=f"adder_{register_bits}")
    b_lines = list(range(register_bits, num_lines))
    for bit in range(register_bits):
        control = (Control(bit),)
        circuit.extend(_increment_gates(b_lines[bit:], control))
    return circuit


def multiplier(register_bits: int) -> ReversibleCircuit:
    """An accumulating multiplier ``(a, b, p) -> (a, b, p + a*b mod 2**(2k))``.

    Lines ``0 .. k-1`` hold ``a``, ``k .. 2k-1`` hold ``b`` (both unchanged)
    and lines ``2k .. 4k-1`` hold the product accumulator ``p``.  Each
    partial product ``a_i * b_j * 2**(i+j)`` is added with a
    doubly-controlled increment, so the construction needs no ancilla lines.
    """
    if register_bits < 1:
        raise CircuitError("multiplier needs registers of at least 1 bit")
    num_lines = 4 * register_bits
    circuit = ReversibleCircuit(num_lines, name=f"multiplier_{register_bits}")
    product_lines = list(range(2 * register_bits, num_lines))
    for i in range(register_bits):
        for j in range(register_bits):
            controls = (Control(i), Control(register_bits + j))
            circuit.extend(_increment_gates(product_lines[i + j :], controls))
    return circuit


def parity_accumulator(num_lines: int) -> ReversibleCircuit:
    """XOR all other lines into line 0: ``out_0 = x_0 XOR ... XOR x_{n-1}``."""
    if num_lines < 1:
        raise CircuitError("parity_accumulator needs at least 1 line")
    circuit = ReversibleCircuit(num_lines, name=f"parity_{num_lines}")
    for line in range(1, num_lines):
        circuit.append(cnot(line, 0))
    return circuit


def fredkin_stage(num_lines: int) -> ReversibleCircuit:
    """A conditional-swap stage: line 0 controls swaps of pairs (1,2), (3,4), ...

    The building block of reversible sorting/permutation networks; expressed
    with MCT gates via the standard Fredkin decomposition.
    """
    if num_lines < 3:
        raise CircuitError("fredkin_stage needs at least 3 lines")
    from repro.circuits.gates import fredkin

    circuit = ReversibleCircuit(num_lines, name=f"fredkin_stage_{num_lines}")
    line = 1
    while line + 1 < num_lines:
        circuit.extend(fredkin(0, line, line + 1))
        line += 2
    return circuit


def bit_reversal(num_lines: int) -> ReversibleCircuit:
    """Reverse the order of the lines with swap gates."""
    circuit = ReversibleCircuit(num_lines, name=f"bit_reversal_{num_lines}")
    for line in range(num_lines // 2):
        circuit.append(SwapGate(line, num_lines - 1 - line))
    return circuit


def cyclic_line_shift(num_lines: int, shift: int = 1) -> ReversibleCircuit:
    """Rotate the lines: input line ``i`` appears on output line ``i + shift``."""
    from repro.circuits.line_permutation import LinePermutation
    from repro.circuits.transforms import permutation_circuit

    mapping = [(line + shift) % num_lines for line in range(num_lines)]
    circuit = permutation_circuit(LinePermutation(mapping))
    circuit.name = f"shift_{num_lines}_{shift % num_lines}"
    return circuit


def hidden_shift(shift_mask: int, num_lines: int) -> ReversibleCircuit:
    """The XOR-shift oracle ``x -> x XOR s`` used by hidden-shift problems."""
    if shift_mask >> num_lines:
        raise CircuitError(
            f"shift mask {shift_mask:#x} does not fit in {num_lines} lines"
        )
    circuit = ReversibleCircuit(num_lines, name=f"hidden_shift_{shift_mask}")
    for line in range(num_lines):
        if (shift_mask >> line) & 1:
            circuit.append(not_gate(line))
    return circuit


def _rotate_left(value: int, amount: int, width: int) -> int:
    amount %= width
    mask = (1 << width) - 1
    return ((value << amount) | (value >> (width - amount))) & mask


def hidden_weighted_bit(num_lines: int) -> ReversibleCircuit:
    """The hidden-weighted-bit benchmark function ``hwb_n``.

    The output is the input rotated left by its Hamming weight — the classic
    RevLib benchmark.  The circuit is synthesised from its permutation with
    the transformation-based synthesiser, so this generator is intended for
    small ``n`` (the truth table is exponential).
    """
    permutation = Permutation.from_function(
        lambda value: _rotate_left(value, popcount(value), num_lines), num_lines
    )
    circuit = from_permutation(permutation)
    circuit.name = f"hwb_{num_lines}"
    return circuit


def from_permutation(permutation: Permutation) -> ReversibleCircuit:
    """Synthesise an MCT circuit realising ``permutation``.

    Thin wrapper over
    :func:`repro.synthesis.transformation_based.synthesize` kept here so the
    library module is self-contained for callers.
    """
    from repro.synthesis.transformation_based import synthesize

    return synthesize(permutation)


def catalogue(num_lines: int) -> dict[str, Callable[[], ReversibleCircuit]]:
    """Named circuit generators available at the given line count.

    Only generators whose structural requirements are met by ``num_lines``
    are included.  The benchmark harness iterates this mapping to obtain a
    representative workload mix.
    """
    entries: dict[str, Callable[[], ReversibleCircuit]] = {}
    if num_lines >= 1:
        entries["increment"] = lambda: increment(num_lines)
        entries["gray"] = lambda: gray_code(num_lines)
    if num_lines >= 2:
        entries["cnot_ladder"] = lambda: cnot_ladder(num_lines)
        entries["bit_reversal"] = lambda: bit_reversal(num_lines)
        entries["shift"] = lambda: cyclic_line_shift(num_lines)
    if num_lines >= 2:
        entries["parity"] = lambda: parity_accumulator(num_lines)
    if num_lines >= 3:
        entries["toffoli_chain"] = lambda: toffoli_chain(num_lines)
        entries["fredkin_stage"] = lambda: fredkin_stage(num_lines)
    if num_lines >= 2 and num_lines % 2 == 0:
        entries["adder"] = lambda: ripple_adder(num_lines // 2)
    if num_lines >= 4 and num_lines % 4 == 0:
        entries["multiplier"] = lambda: multiplier(num_lines // 4)
    if 1 <= num_lines <= 8:
        entries["hwb"] = lambda: hidden_weighted_bit(num_lines)
    return entries
