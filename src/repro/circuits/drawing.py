"""ASCII rendering of reversible circuits (Fig. 2 style).

Circuits are drawn one text row per line, gates left to right in application
order, using the conventional glyphs:

* ``●`` positive control, ``○`` negative control,
* ``⊕`` MCT target, ``✕`` the two ends of a swap,
* ``│`` the vertical connector through lines a gate spans,
* ``─`` idle wire.

An ``ascii_only`` mode replaces the glyphs with ``*``, ``o``, ``+``, ``x``
and ``|`` for environments without Unicode.  The renderer is intentionally
simple — one column per gate — because its purpose is debuggability and
documentation, not typesetting.
"""

from __future__ import annotations

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import MCTGate, SwapGate

__all__ = ["draw"]

_GLYPHS = {
    "positive": "●",
    "negative": "○",
    "target": "⊕",
    "swap": "✕",
    "wire": "─",
    "bridge": "│",
}
_ASCII_GLYPHS = {
    "positive": "*",
    "negative": "o",
    "target": "+",
    "swap": "x",
    "wire": "-",
    "bridge": "|",
}


def _gate_column(gate, num_lines: int, glyphs: dict[str, str]) -> list[str]:
    """The per-line glyphs of one gate column."""
    column = [glyphs["wire"]] * num_lines
    if isinstance(gate, SwapGate):
        marks = {gate.line_a: glyphs["swap"], gate.line_b: glyphs["swap"]}
    elif isinstance(gate, MCTGate):
        marks = {
            control.line: glyphs["positive" if control.positive else "negative"]
            for control in gate.controls
        }
        marks[gate.target] = glyphs["target"]
    else:  # pragma: no cover - custom gates are rendered as plain bridges
        marks = {line: glyphs["bridge"] for line in gate.lines}
    span = sorted(marks)
    for line in range(span[0], span[-1] + 1):
        if line in marks:
            column[line] = marks[line]
        else:
            column[line] = glyphs["bridge"]
    return column


def draw(
    circuit: ReversibleCircuit,
    line_labels: list[str] | None = None,
    ascii_only: bool = False,
    column_spacing: int = 2,
) -> str:
    """Render ``circuit`` as multi-line ASCII art.

    Args:
        circuit: the circuit to draw.
        line_labels: optional per-line labels (defaults to ``x0``, ``x1``, ...).
        ascii_only: use pure-ASCII glyphs.
        column_spacing: number of wire characters between gate columns.

    Returns:
        The drawing as a single string (no trailing newline).
    """
    glyphs = _ASCII_GLYPHS if ascii_only else _GLYPHS
    num_lines = circuit.num_lines
    if line_labels is None:
        line_labels = [f"x{line}" for line in range(num_lines)]
    if len(line_labels) != num_lines:
        raise ValueError(
            f"expected {num_lines} line labels, got {len(line_labels)}"
        )
    label_width = max(len(label) for label in line_labels)

    columns = [_gate_column(gate, num_lines, glyphs) for gate in circuit]
    spacer = glyphs["wire"] * column_spacing
    rows = []
    for line in range(num_lines):
        label = line_labels[line].rjust(label_width)
        body = spacer + spacer.join(column[line] for column in columns) + spacer
        if not columns:
            body = spacer * 2
        rows.append(f"{label} {body}")
    return "\n".join(rows)
