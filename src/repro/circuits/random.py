"""Random generators for circuits, permutations and matching witnesses.

Every generator takes an optional ``rng`` (a :class:`random.Random` instance
or an integer seed) so experiments and property-based tests are repeatable.
The benchmark harness uses these generators to manufacture the promised
X-Y-equivalent circuit pairs on which query counts are measured.
"""

from __future__ import annotations

import random as _random
from collections.abc import Sequence

from repro.circuits.circuit import ReversibleCircuit
from repro.circuits.gates import Control, MCTGate
from repro.circuits.line_permutation import LinePermutation
from repro.circuits.permutation import Permutation

__all__ = [
    "coerce_rng",
    "random_negation",
    "random_line_permutation",
    "random_permutation",
    "random_mct_gate",
    "random_circuit",
    "random_non_identity_negation",
    "random_non_identity_line_permutation",
]


def coerce_rng(rng: _random.Random | int | None) -> _random.Random:
    """Turn ``rng`` into a :class:`random.Random`.

    ``None`` produces a fresh unseeded generator, an integer seeds a new
    generator, and an existing generator is passed through unchanged.
    """
    if rng is None:
        return _random.Random()
    if isinstance(rng, int):
        return _random.Random(rng)
    return rng


def random_negation(
    num_lines: int, rng: _random.Random | int | None = None
) -> list[bool]:
    """A uniformly random negation function over ``num_lines`` lines."""
    rng = coerce_rng(rng)
    return [bool(rng.getrandbits(1)) for _ in range(num_lines)]


def random_non_identity_negation(
    num_lines: int, rng: _random.Random | int | None = None
) -> list[bool]:
    """A random negation function guaranteed to negate at least one line."""
    rng = coerce_rng(rng)
    while True:
        nu = random_negation(num_lines, rng)
        if any(nu):
            return nu


def random_line_permutation(
    num_lines: int, rng: _random.Random | int | None = None
) -> LinePermutation:
    """A uniformly random permutation of the circuit lines."""
    rng = coerce_rng(rng)
    mapping = list(range(num_lines))
    rng.shuffle(mapping)
    return LinePermutation(mapping)


def random_non_identity_line_permutation(
    num_lines: int, rng: _random.Random | int | None = None
) -> LinePermutation:
    """A random line permutation guaranteed to move at least one line.

    Requires ``num_lines >= 2``.
    """
    rng = coerce_rng(rng)
    while True:
        pi = random_line_permutation(num_lines, rng)
        if not pi.is_identity():
            return pi


def random_permutation(
    num_bits: int, rng: _random.Random | int | None = None
) -> Permutation:
    """A uniformly random permutation of ``range(2**num_bits)``."""
    rng = coerce_rng(rng)
    mapping = list(range(1 << num_bits))
    rng.shuffle(mapping)
    return Permutation(mapping, num_bits)


def random_mct_gate(
    num_lines: int,
    rng: _random.Random | int | None = None,
    max_controls: int | None = None,
    allow_negative_controls: bool = True,
) -> MCTGate:
    """A random MCT gate on ``num_lines`` lines.

    The control count is chosen uniformly between 0 and
    ``min(max_controls, num_lines - 1)``.
    """
    rng = coerce_rng(rng)
    if max_controls is None:
        max_controls = num_lines - 1
    max_controls = min(max_controls, num_lines - 1)
    target = rng.randrange(num_lines)
    num_controls = rng.randint(0, max_controls)
    candidates = [line for line in range(num_lines) if line != target]
    control_lines = rng.sample(candidates, num_controls)
    controls = tuple(
        Control(line, bool(rng.getrandbits(1)) if allow_negative_controls else True)
        for line in control_lines
    )
    return MCTGate(controls, target)


def random_circuit(
    num_lines: int,
    num_gates: int,
    rng: _random.Random | int | None = None,
    max_controls: int | None = None,
    allow_negative_controls: bool = True,
    name: str | None = None,
) -> ReversibleCircuit:
    """A random MCT cascade with ``num_gates`` gates.

    Random MCT cascades are the standard way to produce "generic" reversible
    functions for query-count experiments: they have no structure a matcher
    could exploit beyond the oracle interface.
    """
    rng = coerce_rng(rng)
    circuit = ReversibleCircuit(num_lines, name=name or "random")
    for _ in range(num_gates):
        circuit.append(
            random_mct_gate(
                num_lines,
                rng,
                max_controls=max_controls,
                allow_negative_controls=allow_negative_controls,
            )
        )
    return circuit
